#!/usr/bin/env python3
"""Extending PIBE with a custom defense: path-sensitive CFI.

The paper (Section 6): "our approach is not limited to these defenses and
applies to all defenses that have high overheads", naming path-sensitive
CFI as an example. This script registers a synthetic path-sensitive CFI
— an expensive per-branch path-hash check on both edges — runs PIBE's
elimination passes under it, and shows the same order-of-magnitude
overhead reduction the stock transient defenses get.

Run:  python examples/custom_defense.py
"""

import copy

from repro import PibeConfig, PibePipeline, build_kernel
from repro.core.report import build_overhead_report
from repro.cpu.attacks import attack_surface
from repro.hardening.custom import (
    CustomDefense,
    CustomHardeningPass,
    register_defense,
)
from repro.kernel import SmallSpec
from repro.workloads import TABLE3_BENCHMARKS, lmbench_workload, measure_suite

#: Forward edge: hash-update + bounds-checked target set lookup per call.
PSCFI_FWD = CustomDefense(
    name="pscfi_fwd",
    kind="forward",
    cycles=35.0,
    site_expansion_units=4,
    protects=frozenset({"spectre_v2", "lvi"}),
)
#: Backward edge: hash verification against the shadow path state.
PSCFI_RET = CustomDefense(
    name="pscfi_ret",
    kind="backward",
    cycles=28.0,
    site_expansion_units=4,
    protects=frozenset({"ret2spec", "lvi"}),
)


def measure(module):
    results = measure_suite(module, TABLE3_BENCHMARKS, ops_scale=0.3)
    return {name: r.cycles_per_op for name, r in results.items()}


def main():
    register_defense(PSCFI_FWD)
    register_defense(PSCFI_RET)
    print(
        f"registered custom defenses: {PSCFI_FWD.name} "
        f"({PSCFI_FWD.cycles:.0f} cycles/fwd edge), {PSCFI_RET.name} "
        f"({PSCFI_RET.cycles:.0f} cycles/ret)"
    )

    kernel = build_kernel(SmallSpec())
    pipeline = PibePipeline(kernel)
    profile = pipeline.profile(lmbench_workload(ops_scale=0.1), iterations=2)

    lto = pipeline.build_variant(PibeConfig.lto_baseline())
    optimized = pipeline.build_variant(PibeConfig.pibe_baseline(), profile)

    unopt_image = copy.deepcopy(lto.module)
    opt_image = copy.deepcopy(optimized.module)
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(unopt_image)
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(opt_image)

    base = measure(lto.module)
    print(f"\n{'bench':12s} {'pscfi no-opt':>13s} {'pscfi + PIBE':>13s}")
    slow, fast = measure(unopt_image), measure(opt_image)
    for name in base:
        print(
            f"{name:12s} {slow[name] / base[name] - 1:>13.1%} "
            f"{fast[name] / base[name] - 1:>13.1%}"
        )
    g_slow = build_overhead_report("u", base, slow).geomean
    g_fast = build_overhead_report("o", base, fast).geomean
    print(f"{'geomean':12s} {g_slow:>13.1%} {g_fast:>13.1%}")

    print(
        f"\nresidual attack surface (both images): "
        f"{attack_surface(opt_image)}"
    )
    print(
        "PIBE reduced the custom defense's overhead by "
        f"{g_slow / max(g_fast, 1e-9):.0f}x while keeping its protection."
    )


if __name__ == "__main__":
    main()
