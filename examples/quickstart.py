#!/usr/bin/env python3
"""Quickstart: harden a kernel with PIBE in five steps.

1. Build the synthetic kernel (the linked LTO module).
2. Profile it under a representative workload (LMBench).
3. Build the unoptimized hardened kernel — comprehensive transient
   protection, impractical overhead.
4. Build the PIBE kernel — same protection after profile-guided indirect
   branch elimination.
5. Compare latencies.

Run:  python examples/quickstart.py
"""

from repro import (
    DefenseConfig,
    PibeConfig,
    PibePipeline,
    build_kernel,
    kernel_stats,
    lmbench_workload,
    measure_benchmark,
)
from repro.workloads import BY_NAME

BENCHES = ("null", "read", "write", "open", "pipe", "select_tcp")


def measure(module, label):
    print(f"\n  {label}")
    results = {}
    for name in BENCHES:
        bench = BY_NAME[name]
        result = measure_benchmark(module, bench, ops=bench.default_ops // 2)
        results[name] = result.cycles_per_op
        print(f"    {name:12s} {result.latency_us:8.3f} us/op")
    return results


def main():
    print("== 1. build the kernel ==")
    kernel = build_kernel()
    stats = kernel_stats(kernel)
    print(
        f"  {stats.functions} functions, {stats.icall_sites} indirect call "
        f"sites, {stats.return_sites} returns, {stats.syscalls} syscalls"
    )

    print("\n== 2. profile under LMBench ==")
    pipeline = PibePipeline(kernel)
    profile = pipeline.profile(lmbench_workload(), iterations=3)
    print(
        f"  observed {len(profile.direct)} direct and "
        f"{len(profile.indirect)} indirect hot call sites "
        f"({profile.total_weight():,} edge executions)"
    )

    print("\n== 3. comprehensive defenses, no optimization ==")
    unopt = pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.all_defenses())
    )
    report = unopt.reports["hardening"]
    print(
        f"  protected {report.protected_icalls} indirect calls and "
        f"{report.protected_rets} returns"
    )

    print("\n== 4. the same defenses behind PIBE ==")
    pibe = pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), profile
    )
    icp = pibe.reports["indirect-call-promotion"]
    inl = pibe.reports["pibe-inliner"]
    print(
        f"  promoted {icp.promoted_targets} targets on "
        f"{icp.promoted_sites} sites "
        f"({icp.weight_fraction:.1%} of indirect weight); "
        f"inlined {inl.inlined_sites} call sites "
        f"({inl.elided_weight_fraction:.1%} of return weight elided)"
    )

    print("\n== 5. latency comparison ==")
    lto = pipeline.build_variant(PibeConfig.lto_baseline())
    base = measure(lto.module, "vanilla LTO baseline")
    slow = measure(unopt.module, "all defenses, no optimization")
    fast = measure(pibe.module, "all defenses + PIBE")

    print("\n  overhead vs baseline:")
    print(f"    {'bench':12s} {'no opt':>10s} {'PIBE':>10s}")
    for name in BENCHES:
        unopt_ovh = slow[name] / base[name] - 1
        pibe_ovh = fast[name] / base[name] - 1
        print(f"    {name:12s} {unopt_ovh:+10.1%} {pibe_ovh:+10.1%}")


if __name__ == "__main__":
    main()
