#!/usr/bin/env python3
"""Workload robustness (paper Section 8.4): what happens when the kernel
is optimized for the *wrong* workload?

Trains PIBE once on LMBench and once on an ApacheBench-style workload,
then measures LMBench latency overhead (all defenses enabled) on both,
alongside the unoptimized kernel and the default-LLVM-inliner baseline.
Also reports how much optimization-candidate weight the two workloads
share at a 99% budget (paper: 58% icp / 67% inlining).

Run:  python examples/workload_robustness.py
"""

from repro import (
    DefenseConfig,
    PibeConfig,
    PibePipeline,
    build_kernel,
    geomean_overhead,
)
from repro.analysis.robustness import workload_overlap
from repro.core.report import build_overhead_report
from repro.workloads import (
    LMBENCH_BENCHMARKS,
    apachebench_workload,
    lmbench_workload,
    measure_suite,
)


def measure(module):
    results = measure_suite(module, LMBENCH_BENCHMARKS, ops_scale=0.4)
    return {name: r.cycles_per_op for name, r in results.items()}


def main():
    kernel = build_kernel()
    pipeline = PibePipeline(kernel)
    all_def = DefenseConfig.all_defenses()

    print("profiling with both workloads...")
    lmbench_profile = pipeline.profile(lmbench_workload(), iterations=3)
    apache_profile = pipeline.profile(apachebench_workload(), iterations=3)

    overlap = workload_overlap(lmbench_profile, apache_profile, budget=0.99)
    print(
        f"candidate-weight overlap at 99% budget: "
        f"icp {overlap.icp_shared_weight_fraction:.0%}, "
        f"inlining {overlap.inline_shared_weight_fraction:.0%} "
        f"(paper: 58% / 67%)"
    )

    print("\nbuilding variants...")
    base = measure(
        pipeline.build_variant(PibeConfig.lto_baseline()).module
    )
    rows = [
        ("unoptimized", PibeConfig.hardened(all_def), None),
        ("LMBench-trained", PibeConfig.lax(all_def), lmbench_profile),
        ("Apache-trained", PibeConfig.lax(all_def), apache_profile),
        (
            "default LLVM inliner",
            PibeConfig(
                defenses=all_def,
                icp_budget=0.999999,
                inline_budget=0.999999,
                use_default_inliner=True,
            ),
            lmbench_profile,
        ),
    ]

    print(f"\n{'configuration':24s} {'LMBench geomean overhead':>26s}")
    for label, config, profile in rows:
        build = pipeline.build_variant(config, profile)
        geomean = build_overhead_report(
            label, base, measure(build.module)
        ).geomean
        print(f"{label:24s} {geomean:>25.1%}")
    print(
        "\npaper: 149.1% unoptimized, 10.6% matched, 22.5% Apache-trained,"
        "\n       100.2% default inliner — PGO-based hardening survives a"
        "\n       workload mismatch, and the gain is not 'just inlining'."
    )


if __name__ == "__main__":
    main()
