#!/usr/bin/env python3
"""Transient control-flow hijacking, attack by attack.

Walks the three attack vectors of the paper against a vanilla kernel and
a PIBE-hardened one, driving the microarchitectural models end-to-end:

- **Spectre V2** — poison the BTB entry of a hot VFS indirect call;
- **Ret2spec** — plant an attacker return address in the RSB;
- **LVI** — inject a branch target through the memory order buffer.

Also demonstrates why RSB *refilling* is not enough (Section 6.4) and why
LVI-CFI alone leaves a BTB-predicted indirect jump (Section 6.3).

Run:  python examples/attack_demo.py
"""

from repro import DefenseConfig, PibeConfig, PibePipeline, build_kernel
from repro.baselines.rsb_refill import (
    RSBAttackScenario,
    SCENARIO_MATRIX,
    simulate_refill_scenario,
)
from repro.cpu.attacks import LVIAttack, Ret2specAttack, SpectreV2Attack
from repro.kernel import SmallSpec
from repro.workloads import lmbench_workload


def banner(text):
    print(f"\n=== {text} ===")


def show(outcome):
    verdict = "HIJACKED" if outcome.success else "defended"
    target = f" -> {outcome.speculative_target}" if outcome.success else ""
    print(f"  [{verdict:8s}] @{outcome.function}{target}")
    print(f"             {outcome.detail}")


def main():
    kernel = build_kernel(SmallSpec())
    pipeline = PibePipeline(kernel)
    profile = pipeline.profile(lmbench_workload(ops_scale=0.05), iterations=1)

    vanilla = pipeline.build_variant(PibeConfig.lto_baseline()).module
    hardened = pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), profile
    ).module
    lvi_only = pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.lvi_only())
    ).module

    def find_defended(module, opcode):
        """First hardened instruction of the given kind in the image
        (PIBE may have fully inlined specific functions away)."""
        for func in module:
            for inst in func.instructions():
                if inst.opcode.value == opcode and inst.defense is not None:
                    return func.name, inst
        raise LookupError(f"no defended {opcode} found")

    banner("Spectre V2: BTB poisoning of an indirect call")
    attack = SpectreV2Attack()
    func, inst = next(
        (f, i) for f, i in attack.hijackable_sites(vanilla) if f == "vfs_read"
    )
    show(attack.attempt(vanilla, func, inst))
    fn_name, hardened_icall = find_defended(hardened, "icall")
    show(attack.attempt(hardened, fn_name, hardened_icall))

    banner("LVI-CFI alone: the thunk's indirect jump is still BTB-predicted")
    lvi_fn, lvi_icall = find_defended(lvi_only, "icall")
    show(attack.attempt(lvi_only, lvi_fn, lvi_icall))

    banner("Ret2spec: RSB poisoning of a return")
    ret_attack = Ret2specAttack()
    func, inst = ret_attack.hijackable_sites(vanilla)[0]
    show(ret_attack.attempt(vanilla, func, inst))
    ret_fn, hard_ret = find_defended(hardened, "ret")
    show(ret_attack.attempt(hardened, ret_fn, hard_ret))

    banner("RSB refilling: which scenarios does it actually stop?")
    for scenario in RSBAttackScenario:
        lands = simulate_refill_scenario(scenario)
        matrix = SCENARIO_MATRIX[scenario]
        print(
            f"  {scenario.value:28s} refill: "
            f"{'BYPASSED' if lands else 'defends '}   "
            f"return retpolines: "
            f"{'defend' if matrix.defended_by_return_retpoline else 'FAIL'}"
        )

    banner("LVI: injecting a branch target through the MOB")
    lvi = LVIAttack()
    func, inst = lvi.hijackable_sites(vanilla)[0]
    show(lvi.attempt(vanilla, func, inst))
    show(lvi.attempt(hardened, ret_fn, hard_ret))

    banner("Residual attack surface census")
    from repro.cpu.attacks import attack_surface

    print(f"  vanilla : {attack_surface(vanilla)}")
    print(f"  hardened: {attack_surface(hardened)}")
    print(
        "  (the hardened residue is the inline-assembly paravirt layer "
        "the compiler cannot rewrite — Table 11)"
    )


if __name__ == "__main__":
    main()
