#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Equivalent of the artifact's ``run_artifact.sh`` + ``generate_tables.sh``:
runs the whole experiment matrix and prints each table with the paper's
reference numbers in the footnotes.

Run:  python examples/full_evaluation.py [--fast] [--jobs N]

``--fast`` uses the reduced kernel and scales (minutes -> seconds);
``--jobs N`` fans the independent measurement cells out over N worker
processes before the tables render. Profiles and measurements persist in
``.repro-cache/`` so a repeat run skips them; ``--no-cache`` disables
that (``--engine reference`` forces the slow oracle interpreter — results
are identical, only wall time changes).
"""

import argparse
import sys
import time

from repro.core.config import PibeConfig
from repro.engine.compiled import DEFAULT_ENGINE, ENGINES
from repro.evaluation import tables
from repro.evaluation.cache import CACHE_DIR_NAME
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import TABLE3_BENCHMARKS


def _measured_configs():
    """The (config, benches, workload) cells the tables below will ask
    for, grouped for :meth:`EvalContext.measure_many` prefetching."""
    all_def = DefenseConfig.all_defenses()
    retp = DefenseConfig.retpolines_only()
    lmbench = [
        PibeConfig.lto_baseline(),
        PibeConfig.pibe_baseline(),
        PibeConfig.hardened(retp),
        PibeConfig.hardened(retp, icp_budget=0.99999),
        PibeConfig.hardened(DefenseConfig.ret_retpolines_only()),
        PibeConfig.lax(DefenseConfig.ret_retpolines_only()),
        PibeConfig.hardened(DefenseConfig.lvi_only()),
        PibeConfig.lax(DefenseConfig.lvi_only()),
        PibeConfig.hardened(all_def),
        PibeConfig.hardened(all_def, icp_budget=0.99999),
        PibeConfig.hardened(all_def, icp_budget=0.99999, inline_budget=0.99),
        PibeConfig.hardened(all_def, icp_budget=0.99999, inline_budget=0.999),
        PibeConfig.hardened(
            all_def, icp_budget=0.99999, inline_budget=0.999999
        ),
        PibeConfig.lax(all_def),
        PibeConfig(
            defenses=all_def,
            icp_budget=0.999999,
            inline_budget=0.999999,
            use_default_inliner=True,
        ),
    ]
    table3 = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(retp),
        PibeConfig.hardened(retp, icp_budget=0.99),
        PibeConfig.hardened(retp, icp_budget=0.99999),
    ]
    apache = [PibeConfig.lax(all_def)]
    return [
        (lmbench, None, "lmbench"),
        (table3, TABLE3_BENCHMARKS, "lmbench"),
        (apache, None, "apache"),
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced kernel and scales"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel measurement (default: 1)",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=DEFAULT_ENGINE,
        help="execution engine (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"don't persist results under {CACHE_DIR_NAME}/",
    )
    args = parser.parse_args(argv)

    common = dict(
        engine=args.engine,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else CACHE_DIR_NAME,
    )
    if args.fast:
        settings = EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
            **common,
        )
    else:
        settings = EvalSettings(**common)
    ctx = EvalContext(settings)

    total_start = time.perf_counter()
    if args.jobs > 1:
        # Fan the measurement cells out across workers up front; the
        # table generators below then hit the warm in-memory caches.
        for configs, benches, workload in _measured_configs():
            if benches is None:
                ctx.measure_many(configs, workload_name=workload)
            else:
                ctx.measure_many(configs, benches, workload_name=workload)
        elapsed = time.perf_counter() - total_start
        print(f"[measurements prefetched with {args.jobs} jobs in {elapsed:.1f}s]\n")

    experiments = [
        ("Figure 1", lambda: tables.figure1()),
        ("Table 1", lambda: tables.table1()),
        ("Table 2", lambda: tables.table2(ctx)),
        ("Table 3", lambda: tables.table3(ctx)),
        ("Table 4", lambda: tables.table4(ctx)),
        ("Table 5", lambda: tables.table5(ctx)),
        ("Table 6", lambda: tables.table6(ctx)),
        ("Table 7", lambda: tables.table7(ctx)),
        ("Table 8", lambda: tables.table8(ctx)),
        ("Table 9", lambda: tables.table9(ctx)),
        ("Table 10", lambda: tables.table10(ctx)),
        ("Table 11", lambda: tables.table11(ctx)),
        ("Table 12", lambda: tables.table12(ctx)),
        ("Section 8.4", lambda: tables.robustness(ctx)),
    ]

    for label, run in experiments:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        print(result.table.to_text())
        print(f"[{label} regenerated in {elapsed:.1f}s]\n")
    if ctx.cache is not None:
        stats = ctx.cache.stats()
        print(
            f"disk cache: {stats['hits']} hits, {stats['misses']} misses "
            f"({ctx.cache.root}/)"
        )
    print(
        f"full evaluation complete in "
        f"{time.perf_counter() - total_start:.1f}s"
    )


if __name__ == "__main__":
    sys.exit(main())
