#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Equivalent of the artifact's ``run_artifact.sh`` + ``generate_tables.sh``:
runs the whole experiment matrix and prints each table with the paper's
reference numbers in the footnotes.

Run:  python examples/full_evaluation.py [--fast]

``--fast`` uses the reduced kernel and scales (minutes -> seconds); the
full run takes a few minutes.
"""

import argparse
import sys
import time

from repro.evaluation import tables
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.kernel.spec import SmallSpec


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced kernel and scales"
    )
    args = parser.parse_args(argv)

    if args.fast:
        settings = EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
        )
    else:
        settings = EvalSettings()
    ctx = EvalContext(settings)

    experiments = [
        ("Figure 1", lambda: tables.figure1()),
        ("Table 1", lambda: tables.table1()),
        ("Table 2", lambda: tables.table2(ctx)),
        ("Table 3", lambda: tables.table3(ctx)),
        ("Table 4", lambda: tables.table4(ctx)),
        ("Table 5", lambda: tables.table5(ctx)),
        ("Table 6", lambda: tables.table6(ctx)),
        ("Table 7", lambda: tables.table7(ctx)),
        ("Table 8", lambda: tables.table8(ctx)),
        ("Table 9", lambda: tables.table9(ctx)),
        ("Table 10", lambda: tables.table10(ctx)),
        ("Table 11", lambda: tables.table11(ctx)),
        ("Table 12", lambda: tables.table12(ctx)),
        ("Section 8.4", lambda: tables.robustness(ctx)),
    ]

    total_start = time.perf_counter()
    for label, run in experiments:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        print(result.table.to_text())
        print(f"[{label} regenerated in {elapsed:.1f}s]\n")
    print(
        f"full evaluation complete in "
        f"{time.perf_counter() - total_start:.1f}s"
    )


if __name__ == "__main__":
    sys.exit(main())
