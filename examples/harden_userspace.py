#!/usr/bin/env python3
"""PIBE beyond the kernel: hardening a userspace program.

The paper notes the approach "applies equally to other code: hypervisors,
SGX(-like) enclaves, and user programs" (Section 1). This example runs
the full profile -> promote -> inline -> harden pipeline on the SPEC-like
userspace suite and compares per-component slowdowns with and without
PIBE's elimination passes.

Run:  python examples/harden_userspace.py
"""

import copy
import dataclasses

from repro import DefenseConfig, PibeConfig
from repro.core.pipeline import PibePipeline
from repro.cpu.costs import DEFAULT_COSTS
from repro.cpu.timing import TimingModel
from repro.engine.interpreter import Interpreter
from repro.profiling.profiler import KernelProfiler
from repro.workloads.spec import SPEC_COMPONENTS, build_spec_module

USERSPACE_COSTS = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)
ITERATIONS = 60


def run_component(module, name, sink):
    Interpreter(module, [sink], seed=7).run_function(
        f"run_{name}", times=ITERATIONS
    )
    return sink


def cycles(module, name):
    timing = TimingModel(module, costs=USERSPACE_COSTS, model_icache=False)
    run_component(module, name, timing)
    return timing.cycles


def main():
    program = build_spec_module()
    pipeline = PibePipeline(program)

    # Phase 1: profile every component (userspace PGO run).
    profiling_build = copy.deepcopy(program)
    profiler = KernelProfiler(workload="spec")
    for comp in SPEC_COMPONENTS:
        run_component(profiling_build, comp.name, profiler)
    profile = profiler.finish()
    print(
        f"profiled {len(profile.direct)} direct / "
        f"{len(profile.indirect)} indirect sites"
    )

    # Phase 2: two hardened builds of the program.
    all_def = DefenseConfig.all_defenses()
    unopt = pipeline.build_variant(PibeConfig.hardened(all_def))
    pibe = pipeline.build_variant(
        PibeConfig.lax(all_def), profile
    )
    baseline = pipeline.build_variant(PibeConfig.lto_baseline())

    print(f"\n{'component':12s} {'no opt':>10s} {'PIBE':>10s}")
    for comp in SPEC_COMPONENTS:
        base = cycles(baseline.module, comp.name)
        slow = cycles(unopt.module, comp.name) / base - 1
        fast = cycles(pibe.module, comp.name) / base - 1
        print(f"{comp.name:12s} {slow:>10.1%} {fast:>10.1%}")

    icp = pibe.reports["indirect-call-promotion"]
    inl = pibe.reports["pibe-inliner"]
    print(
        f"\nPIBE promoted {icp.promoted_targets} targets and inlined "
        f"{inl.inlined_sites} call sites in the userspace program —\n"
        "the same algorithms, no kernel involved."
    )


if __name__ == "__main__":
    main()
