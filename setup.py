"""Setuptools shim for environments without PEP 660 editable-install
support (no `wheel` package available offline)."""

from setuptools import setup

setup()
