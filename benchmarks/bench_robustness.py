"""Section 8.4 — performance robustness to workload profiles.

Optimize the kernel with the ApacheBench training workload, measure
LMBench. Paper: 22.5% geomean (vs 10.6% matched, 149.1% unoptimized) —
and 100.2% with the default LLVM inliner, proving the speedup comes from
the workload-aware algorithms, not from inlining per se. Candidate-weight
overlap between workloads at a 99% budget: 58% (icp) / 67% (inlining).
"""

from conftest import emit

from repro.evaluation.tables import robustness


def test_robustness(benchmark, eval_ctx):
    result = benchmark.pedantic(
        robustness, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    # matched training is best; mismatched still a huge win vs unoptimized
    assert result.matched_geomean < result.mismatched_geomean
    assert result.mismatched_geomean < 1.0
    # the default inliner is clearly worse than PIBE's algorithm, even
    # when PIBE trains on the wrong workload
    assert result.default_inliner_geomean > result.mismatched_geomean
    # substantial candidate overlap between very different workloads
    assert result.icp_overlap > 0.3
    assert result.inline_overlap > 0.3
