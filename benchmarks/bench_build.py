"""Staged variant-build benchmark: monolithic vs prefix-cached sweeps.

The staged build engine exists for exactly one workload shape: a
*defense sweep* — N hardening configurations at one shared optimization
budget. The monolithic engine re-runs ICP + inlining for every variant;
the staged engine runs them once per distinct optimization prefix and
stamps each defense onto a copy-on-write clone. This benchmark measures
the 5-defense sweep three ways and records the results (plus the
pipeline and disk-cache counters) to ``BENCH_build.json`` at the repo
root:

- ``monolithic``: 5 full builds from the baseline;
- ``staged_cold``: empty disk cache — the 2 distinct prefixes (the
  jump-table legality split) are built and persisted, 5 variants stamped;
- ``staged_warm``: a fresh pipeline against the populated cache — both
  prefixes load from disk, nothing is rebuilt.

Runs as a pytest benchmark (``pytest benchmarks/bench_build.py``,
``REPRO_BENCH_FAST=1`` for the small kernel) or as a script
(``python benchmarks/bench_build.py [--fast] [--strict-git] [-o PATH]``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

if __package__ in (None, ""):  # script mode: make `from _meta import` work
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from _meta import stamp, write_record

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.evaluation.cache import DiskCache
from repro.hardening.defenses import DefenseConfig
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, SmallSpec
from repro.workloads.lmbench import lmbench_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_build.json"

#: The sweep: every defense selection of Table 12 at one lax budget.
DEFENSES = (
    DefenseConfig.none(),
    DefenseConfig.retpolines_only(),
    DefenseConfig.ret_retpolines_only(),
    DefenseConfig.lvi_only(),
    DefenseConfig.all_defenses(),
)

#: Acceptance bar: a cold staged sweep (prefix builds + disk writes +
#: stamps) must beat the monolithic sweep by at least this factor.
MIN_COLD_SPEEDUP = 1.5

#: Timing repetitions; each mode reports its fastest run.
REPS = 2


def _sweep(pipeline: PibePipeline, configs, profile, staged: bool) -> float:
    start = time.perf_counter()
    for config in configs:
        pipeline.build_variant(config, profile, staged=staged)
    return time.perf_counter() - start


def run_build_bench(fast: bool) -> Dict[str, Any]:
    """Measure the three sweep modes; returns the benchmark record."""
    spec = SmallSpec() if fast else DEFAULT_SPEC
    ops_scale = 0.05 if fast else 0.02
    kernel = build_kernel(spec)
    profile = PibePipeline(kernel).profile(
        lmbench_workload(ops_scale=ops_scale), iterations=1
    )
    configs = [PibeConfig.lax(d) for d in DEFENSES]

    mono = min(
        _sweep(PibePipeline(kernel), configs, profile, staged=False)
        for _ in range(REPS)
    )

    cold = None
    warm = None
    warm_pipeline = None
    warm_cache = None
    for _ in range(REPS):
        with tempfile.TemporaryDirectory(prefix="bench-build-") as tmp:
            cache = DiskCache(Path(tmp))
            cold_pipeline = PibePipeline(kernel, cache=cache)
            t = _sweep(cold_pipeline, configs, profile, staged=True)
            cold = t if cold is None else min(cold, t)
            assert cold_pipeline.stats["prefix_builds"] > 0

            warm_cache = DiskCache(Path(tmp))
            warm_pipeline = PibePipeline(kernel, cache=warm_cache)
            t = _sweep(warm_pipeline, configs, profile, staged=True)
            warm = t if warm is None else min(warm, t)

    # The warm sweep must be served from the persisted prefixes: disk
    # hits on the "prefix" kind, zero prefix rebuilds.
    prefix_stats = warm_cache.stats()["by_kind"].get("prefix", {})
    assert prefix_stats.get("hits", 0) > 0, warm_cache.stats()
    assert warm_pipeline.stats["prefix_disk_hits"] > 0, warm_pipeline.stats
    assert warm_pipeline.stats["prefix_builds"] == 0, warm_pipeline.stats

    record = {
        "benchmark": "staged_variant_build",
        "kernel": type(spec).__name__,
        "defenses": [d.label() for d in DEFENSES],
        "budget": {"icp": configs[0].icp_budget, "inline": configs[0].inline_budget},
        "reps": REPS,
        "monolithic_seconds": round(mono, 4),
        "staged_cold_seconds": round(cold, 4),
        "staged_warm_seconds": round(warm, 4),
        "cold_speedup": round(mono / cold, 2),
        "warm_speedup": round(mono / warm, 2),
        "min_cold_speedup": MIN_COLD_SPEEDUP,
        "pipeline_stats": dict(warm_pipeline.stats),
        "prefix_cache": prefix_stats,
    }
    return record


def _check_and_write(record: Dict[str, Any], strict: bool = None) -> None:
    stamp(record, strict=strict)
    write_record(RECORD_PATH, record)
    print(f"\nstaged-build benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))
    assert record["cold_speedup"] >= MIN_COLD_SPEEDUP, (
        f"cold staged sweep only {record['cold_speedup']}x the monolithic "
        f"sweep, bar {MIN_COLD_SPEEDUP}x"
    )


def test_staged_build_sweep():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_build_bench(fast))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="small kernel, reduced profile"
    )
    parser.add_argument(
        "--strict-git",
        action="store_true",
        help="refuse to record results from a dirty working tree",
    )
    args = parser.parse_args(argv)
    record = run_build_bench(args.fast)
    _check_and_write(record, strict=args.strict_git or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
