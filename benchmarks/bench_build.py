"""Build-engine benchmarks: staged sweeps, delta ladders, prewarmed grids.

Three benchmarks, all recording to ``BENCH_build.json`` at the repo root:

- ``staged_variant_build``: the defense sweep the staged engine exists
  for — N hardening configurations at one shared optimization budget.
  The monolithic engine re-runs ICP + inlining per variant; the staged
  engine runs them once per distinct optimization prefix and stamps each
  defense onto a copy-on-write clone. Measured three ways (monolithic,
  staged against an empty cache, staged against the populated cache).
- ``prefix_delta_ladder``: the budget ladder the incremental engine
  exists for — one profile, many budgets in the fine-grained tuning
  regime. The cold arm builds every prefix through the full pass stack;
  the delta arm derives each budget from the shared decision basis,
  re-transforming only touched functions. Timed over ``warm_prefix``
  (prefix derivation only — the hardening stamp is identical in both
  arms), with the bar on the *added* budgets (everything after the
  first, which pays basis construction in both arms' place).
- ``prefix_prewarm_sweep``: a cold fast-grid sweep with this engine's
  full machinery — parallel prefix prewarming over delta-derived
  budget slices, then a parallel measurement fan-out over the warmed
  cache — versus the pre-incremental serial sweep that builds every
  prefix cold inside the measurement loop.

Runs as a pytest benchmark (``pytest benchmarks/bench_build.py``,
``REPRO_BENCH_FAST=1`` for the small kernel) or as a script
(``python benchmarks/bench_build.py [--fast] [--strict-git]``), which
records all three.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

if __package__ in (None, ""):  # script mode: make `from _meta import` work
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from _meta import stamp, write_record

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.evaluation.cache import DiskCache
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.sweepengine import SweepGrid, llvm_cfi_only, run_sweep
from repro.hardening.defenses import DefenseConfig
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, SmallSpec
from repro.workloads.lmbench import BY_NAME, lmbench_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_build.json"

#: The sweep: every defense selection of Table 12 at one lax budget.
DEFENSES = (
    DefenseConfig.none(),
    DefenseConfig.retpolines_only(),
    DefenseConfig.ret_retpolines_only(),
    DefenseConfig.lvi_only(),
    DefenseConfig.all_defenses(),
)

#: Acceptance bar: a cold staged sweep (prefix builds + disk writes +
#: stamps) must beat the monolithic sweep by at least this factor.
MIN_COLD_SPEEDUP = 1.5

#: Timing repetitions; each mode reports its fastest run.
REPS = 2

#: Budget ladder for the delta benchmark: one profile, many budgets, in
#: the fine-grained tuning regime the delta engine targets — decisions
#: touch a bounded slice of the module, so the apply phase stays small.
#: (Near budget 1.0 the decisions touch almost every function and the
#: apply phase is irreducible in both arms; the staged/prewarm benchmarks
#: cover that end of the range.)
DELTA_BUDGETS = (0.3, 0.4, 0.5, 0.6, 0.7)

#: Acceptance bar: deriving an *added* budget from the shared decision
#: basis must be at least this much cheaper than a cold build of it.
MIN_DELTA_SPEEDUP = 3.0

#: Acceptance bar: the cold fast-grid sweep with parallel prefix prewarm
#: (and the incremental engine) vs the same sweep with neither.
MIN_PREWARM_SPEEDUP = 2.0

#: Worker processes for the prewarm sweep's feature arm (the serial arm
#: is, by definition, one). Capped so CI runners aren't oversubscribed.
PREWARM_JOBS = max(2, min(8, os.cpu_count() or 4))


def _sweep(pipeline: PibePipeline, configs, profile, staged: bool) -> float:
    start = time.perf_counter()
    for config in configs:
        pipeline.build_variant(config, profile, staged=staged)
    return time.perf_counter() - start


def run_build_bench(fast: bool) -> Dict[str, Any]:
    """Measure the three sweep modes; returns the benchmark record."""
    spec = SmallSpec() if fast else DEFAULT_SPEC
    ops_scale = 0.05 if fast else 0.02
    kernel = build_kernel(spec)
    profile = PibePipeline(kernel).profile(
        lmbench_workload(ops_scale=ops_scale), iterations=1
    )
    configs = [PibeConfig.lax(d) for d in DEFENSES]

    mono = min(
        _sweep(PibePipeline(kernel), configs, profile, staged=False)
        for _ in range(REPS)
    )

    # incremental=False: this benchmark isolates the staged engine
    # (prefix reuse + defense stamping); the delta engine's decision
    # basis only pays for itself over a budget ladder, which
    # ``prefix_delta_ladder`` measures on its own.
    cold = None
    warm = None
    warm_pipeline = None
    warm_cache = None
    for _ in range(REPS):
        with tempfile.TemporaryDirectory(prefix="bench-build-") as tmp:
            cache = DiskCache(Path(tmp))
            cold_pipeline = PibePipeline(kernel, cache=cache, incremental=False)
            t = _sweep(cold_pipeline, configs, profile, staged=True)
            cold = t if cold is None else min(cold, t)
            assert cold_pipeline.stats["prefix_builds"] > 0

            warm_cache = DiskCache(Path(tmp))
            warm_pipeline = PibePipeline(
                kernel, cache=warm_cache, incremental=False
            )
            t = _sweep(warm_pipeline, configs, profile, staged=True)
            warm = t if warm is None else min(warm, t)

    # The warm sweep must be served from the persisted prefixes: disk
    # hits on the "prefix" kind, zero prefix rebuilds.
    prefix_stats = warm_cache.stats()["by_kind"].get("prefix", {})
    assert prefix_stats.get("hits", 0) > 0, warm_cache.stats()
    assert warm_pipeline.stats["prefix_disk_hits"] > 0, warm_pipeline.stats
    assert warm_pipeline.stats["prefix_builds"] == 0, warm_pipeline.stats

    record = {
        "benchmark": "staged_variant_build",
        "kernel": type(spec).__name__,
        "defenses": [d.label() for d in DEFENSES],
        "budget": {"icp": configs[0].icp_budget, "inline": configs[0].inline_budget},
        "reps": REPS,
        "monolithic_seconds": round(mono, 4),
        "staged_cold_seconds": round(cold, 4),
        "staged_warm_seconds": round(warm, 4),
        "cold_speedup": round(mono / cold, 2),
        "warm_speedup": round(mono / warm, 2),
        "min_cold_speedup": MIN_COLD_SPEEDUP,
        "pipeline_stats": dict(warm_pipeline.stats),
        "prefix_cache": prefix_stats,
    }
    return record


def run_delta_bench(fast: bool) -> Dict[str, Any]:
    """Budget ladder: cold pass-stack prefixes vs delta derivation."""
    spec = SmallSpec() if fast else DEFAULT_SPEC
    ops_scale = 0.05 if fast else 0.02
    kernel = build_kernel(spec)
    profile = PibePipeline(kernel).profile(
        lmbench_workload(ops_scale=ops_scale), iterations=1
    )
    configs = [
        PibeConfig(
            defenses=DefenseConfig.all_defenses(),
            icp_budget=budget,
            inline_budget=budget,
            lax_heuristics=True,
        )
        for budget in DELTA_BUDGETS
    ]

    # Timed via warm_prefix: the prefix derivation is what the delta
    # engine accelerates — the hardening stamp downstream is identical
    # in both arms and would only dilute the measurement.
    def ladder(incremental: bool):
        best = None
        pipeline = None
        for _ in range(REPS):
            pipeline = PibePipeline(kernel, incremental=incremental)
            times = []
            for config in configs:
                start = time.perf_counter()
                pipeline.warm_prefix(config, profile)
                times.append(time.perf_counter() - start)
            if best is None or sum(times) < sum(best):
                best = times
        return best, pipeline

    cold_times, cold_pipeline = ladder(incremental=False)
    delta_times, delta_pipeline = ladder(incremental=True)
    assert cold_pipeline.stats["prefix_delta_builds"] == 0
    assert delta_pipeline.stats["prefix_delta_builds"] == len(configs)

    # The first budget pays decision-basis construction (delta arm) or a
    # plain cold build (cold arm); the engine's claim is about every
    # budget *added* after it.
    added = len(configs) - 1
    cold_added = sum(cold_times[1:]) / added
    delta_added = sum(delta_times[1:]) / added
    return {
        "benchmark": "prefix_delta_ladder",
        "kernel": type(spec).__name__,
        "budgets": list(DELTA_BUDGETS),
        "reps": REPS,
        "cold_ladder_seconds": [round(t, 4) for t in cold_times],
        "delta_ladder_seconds": [round(t, 4) for t in delta_times],
        "cold_added_budget_seconds": round(cold_added, 4),
        "delta_added_budget_seconds": round(delta_added, 4),
        "delta_speedup": round(cold_added / delta_added, 2),
        "min_delta_speedup": MIN_DELTA_SPEEDUP,
        "pipeline_stats": dict(delta_pipeline.stats),
    }


def run_prewarm_bench(fast: bool) -> Dict[str, Any]:
    """Cold fast-grid sweep: this PR's build machinery vs the serial engine.

    The serial arm is the pre-incremental sweep — one worker, every
    optimized prefix built cold through the full pass stack inside the
    measurement loop. The feature arm runs the same grid with the
    machinery this engine adds: parallel prefix prewarming across the
    worker pool, each slice deriving its budgets from a shared decision
    basis, with measurement fanned out over the warmed disk cache. The
    workload profile is seeded into both arms' cache directories up
    front and the (arm-identical) security attachment is skipped, so
    everything timed is build-and-measure work the sweep actually
    changes. Both arms must emit bit-identical CSVs.
    """
    budgets = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999999)
    grid = SweepGrid(
        budgets=budgets,
        defenses=(
            DefenseConfig.retpolines_only(),
            llvm_cfi_only(),
            DefenseConfig.all_defenses(),
        ),
        workloads=("lmbench",),
        scales=("default",),
        seeds=1,
    )
    benches = [BY_NAME["read"]]
    kernel = build_kernel(DEFAULT_SPEC)
    reps = 1 if fast else REPS

    with tempfile.TemporaryDirectory(prefix="bench-prewarm-") as seed_dir:
        # Profile once and copy the cache entries into each arm: the
        # profile is input to both engines, not work either one changes.
        seed_settings = EvalSettings(
            profile_iterations=1,
            profile_ops_scale=0.02,
            measure_ops_scale=0.02,
            jobs=1,
            cache_dir=seed_dir,
        )
        with EvalContext(seed_settings, kernel=kernel) as ctx:
            ctx.profile("lmbench")

        def arm(jobs: int, prewarm: bool, incremental: bool):
            with tempfile.TemporaryDirectory(prefix="bench-prewarm-") as tmp:
                shutil.copytree(
                    Path(seed_dir) / "profile", Path(tmp) / "profile"
                )
                settings = EvalSettings(
                    profile_iterations=1,
                    profile_ops_scale=0.02,
                    measure_ops_scale=0.02,
                    jobs=jobs,
                    cache_dir=tmp,
                    incremental_prefixes=incremental,
                )
                start = time.perf_counter()
                result = run_sweep(
                    grid,
                    settings,
                    benches=benches,
                    jobs=jobs,
                    kernels={"default": kernel},
                    prewarm=prewarm,
                    security=False,
                )
                return time.perf_counter() - start, result

        serial_seconds = None
        feature_seconds = None
        serial = feature = None
        for _ in range(reps):
            t, serial = arm(1, prewarm=False, incremental=False)
            serial_seconds = t if serial_seconds is None else min(serial_seconds, t)
            t, feature = arm(PREWARM_JOBS, prewarm=True, incremental=True)
            feature_seconds = (
                t if feature_seconds is None else min(feature_seconds, t)
            )
    assert feature.to_csv() == serial.to_csv(), "prewarm CSV diverged"

    return {
        "benchmark": "prefix_prewarm_sweep",
        "fast": fast,
        "budgets": list(budgets),
        "defenses": [d.label() for d in grid.defenses],
        "cells": grid.cell_count,
        "jobs": PREWARM_JOBS,
        "reps": reps,
        "serial_cold_seconds": round(serial_seconds, 4),
        "prewarm_seconds": round(feature_seconds, 4),
        "prewarm_speedup": round(serial_seconds / feature_seconds, 2),
        "min_prewarm_speedup": MIN_PREWARM_SPEEDUP,
        "pipeline_stats": feature.stats["pipeline"],
        "baseline_pipeline_stats": serial.stats["pipeline"],
    }


def _check_staged(record: Dict[str, Any]) -> None:
    assert record["cold_speedup"] >= MIN_COLD_SPEEDUP, (
        f"cold staged sweep only {record['cold_speedup']}x the monolithic "
        f"sweep, bar {MIN_COLD_SPEEDUP}x"
    )


def _check_delta(record: Dict[str, Any]) -> None:
    assert record["delta_speedup"] >= MIN_DELTA_SPEEDUP, (
        f"delta-derived added budget only {record['delta_speedup']}x "
        f"cheaper than a cold build, bar {MIN_DELTA_SPEEDUP}x"
    )


def _check_prewarm(record: Dict[str, Any]) -> None:
    assert record["prewarm_speedup"] >= MIN_PREWARM_SPEEDUP, (
        f"prewarmed cold sweep only {record['prewarm_speedup']}x the "
        f"no-prewarm sweep, bar {MIN_PREWARM_SPEEDUP}x"
    )


def _check_and_write(record, check, strict: bool = None) -> None:
    stamp(record, strict=strict)
    write_record(RECORD_PATH, record)
    print(f"\n{record['benchmark']} benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))
    check(record)


def test_staged_build_sweep():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_build_bench(fast), _check_staged)


def test_prefix_delta_ladder():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_delta_bench(fast), _check_delta)


def test_prefix_prewarm_sweep():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_prewarm_bench(fast), _check_prewarm)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="small kernel, reduced profile"
    )
    parser.add_argument(
        "--strict-git",
        action="store_true",
        help="refuse to record results from a dirty working tree",
    )
    args = parser.parse_args(argv)
    strict = args.strict_git or None
    _check_and_write(run_build_bench(args.fast), _check_staged, strict=strict)
    _check_and_write(run_delta_bench(args.fast), _check_delta, strict=strict)
    _check_and_write(
        run_prewarm_bench(args.fast), _check_prewarm, strict=strict
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
