"""Figure 1 — the inlining example motivating Rule 3.

``bar`` calls ``foo_1`` (count 1000, InlineCost 12000), ``foo_2`` (500,
300) and ``foo_3`` (500, 200). The greedy inliner without Rule 3 picks
the hottest call first and depletes bar's whole Rule 2 budget on foo_1;
with Rule 3, foo_1 is rejected for its size and foo_2+foo_3 are inlined —
the same eliminated execution count with budget to spare.
"""

from conftest import emit

from repro.evaluation.tables import figure1


def test_figure01(benchmark):
    result = benchmark.pedantic(figure1, rounds=1, iterations=1)
    emit(result.table)

    assert result.inlined_without_rule3 == ["foo_1"]
    assert result.inlined_with_rule3 == ["foo_2", "foo_3"]
