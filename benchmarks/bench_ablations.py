"""Ablations of PIBE's design choices (beyond the paper's own tables).

1. **Unlimited promotion targets** (Section 5.3): PIBE promotes every
   profiled target of a site, unlike stock LLVM's small per-site cap —
   because a ~2-cycle compare is far cheaper than a ~21-cycle retpoline
   fallback. Measured: capping promotion at 1 target per site leaves
   multi-target sites paying the fallback.
2. **eIBRS vs software mitigation** (Section 6.4): the hardware
   mitigation is cheaper than unoptimized retpolines here, but PIBE'd
   retpolines beat it — while eIBRS additionally fails to stop in-kernel
   training.
3. **Generality** (Section 6): registering a synthetic path-sensitive
   CFI as a custom defense, PIBE's elimination reduces its overhead by a
   large factor too.
4. **Profile fidelity** (Section 1's AutoFDO motivation): an
   AutoFDO-style sampled profile steers the optimizations almost as well
   as exact LBR counting.
"""

from conftest import emit

from repro.baselines.eibrs import (
    BTBPoisoningOrigin,
    EIBRSTimingModel,
    simulate_eibrs_poisoning,
)
from repro.core.config import PibeConfig
from repro.core.report import build_overhead_report, geomean_overhead
from repro.engine.interpreter import Interpreter
from repro.evaluation.formatting import Table, pct
from repro.hardening.custom import (
    CustomDefense,
    CustomHardeningPass,
    register_defense,
    registered_defense,
)
from repro.hardening.defenses import DefenseConfig
from repro.workloads.lmbench import TABLE3_BENCHMARKS
from repro.workloads.base import measure_benchmark


def _measure(ctx, config, benches=TABLE3_BENCHMARKS):
    return ctx.measure(config, benches)


def test_ablation_unlimited_promotion_targets(benchmark, eval_ctx):
    def run():
        lto = eval_ctx.lto_measurements(TABLE3_BENCHMARKS)
        unlimited = _measure(
            eval_ctx,
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=0.99999
            ),
        )
        # stock-LLVM-style cap: 1 promoted target per site — built
        # manually, the pipeline has no knob for the cap
        import copy

        from repro.hardening.harden import HardeningPass
        from repro.passes.icp import IndirectCallPromotion
        from repro.passes.jumptables import LowerSwitches
        from repro.profiling.lifting import lift_profile

        module = copy.deepcopy(eval_ctx.kernel)
        LowerSwitches(allow_jump_tables=False).run(module)
        lift_profile(module, eval_ctx.profile("lmbench"))
        IndirectCallPromotion(
            budget=0.99999, max_targets_per_site=1
        ).run(module)
        HardeningPass(DefenseConfig.retpolines_only()).run(module)
        capped = {
            b.name: measure_benchmark(
                module,
                b,
                ops=max(
                    1,
                    int(b.default_ops * eval_ctx.settings.measure_ops_scale),
                ),
                seed=eval_ctx.settings.seed,
            ).cycles_per_op
            for b in TABLE3_BENCHMARKS
        }
        return lto, unlimited, capped

    lto, unlimited, capped = benchmark.pedantic(run, rounds=1, iterations=1)
    g_unlimited = build_overhead_report("u", lto, unlimited).geomean
    g_capped = build_overhead_report("c", lto, capped).geomean

    table = Table(
        "Ablation: promoted targets per indirect call site",
        ["configuration", "retpolines geomean overhead"],
        notes=[
            "PIBE promotes unlimited targets per site (Section 5.3); "
            "stock LLVM caps promotion, leaving multi-target sites on "
            "the retpoline fallback",
        ],
    )
    table.add_row("unlimited (PIBE)", pct(g_unlimited))
    table.add_row("capped at 1 (stock-LLVM-style)", pct(g_capped))
    emit(table)

    assert g_unlimited < g_capped  # unlimited promotion wins
    assert g_capped < 0.5 * build_overhead_report(
        "r",
        lto,
        _measure(eval_ctx, PibeConfig.hardened(DefenseConfig.retpolines_only())),
    ).geomean + 0.5  # sanity: capped still much better than nothing


def test_ablation_eibrs_vs_software(benchmark, eval_ctx):
    def run():
        benches = TABLE3_BENCHMARKS
        lto = eval_ctx.lto_measurements(benches)
        retp_unopt = _measure(
            eval_ctx, PibeConfig.hardened(DefenseConfig.retpolines_only())
        )
        retp_pibe = _measure(
            eval_ctx,
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=0.99999
            ),
        )
        # eIBRS: vanilla image, hardware predictor tax
        vanilla = eval_ctx.variant(PibeConfig.lto_baseline()).module
        eibrs = {}
        for bench in benches:
            model = EIBRSTimingModel(vanilla)
            interp = Interpreter(
                vanilla, [model], seed=eval_ctx.settings.seed
            )
            ops = max(
                1, int(bench.default_ops * eval_ctx.settings.measure_ops_scale)
            )
            bench.run(interp, ops=ops)
            eibrs[bench.name] = model.cycles / ops
        return lto, retp_unopt, retp_pibe, eibrs

    lto, retp_unopt, retp_pibe, eibrs = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    g_retp = build_overhead_report("r", lto, retp_unopt).geomean
    g_pibe = build_overhead_report("p", lto, retp_pibe).geomean
    g_eibrs = build_overhead_report("e", lto, eibrs).geomean

    table = Table(
        "Ablation: eIBRS vs software Spectre V2 mitigation",
        ["mitigation", "geomean overhead", "stops in-kernel training?"],
        notes=[
            "Section 6.4: eIBRS has limitations and does not prevent "
            "attacks that train on kernel execution",
        ],
    )
    table.add_row("retpolines (no opt)", pct(g_retp), "yes")
    table.add_row("retpolines + PIBE icp", pct(g_pibe), "yes")
    table.add_row("eIBRS (hardware)", pct(g_eibrs), "NO")
    emit(table)

    # hardware beats unoptimized software, PIBE beats both
    assert g_pibe < g_eibrs < g_retp
    # ...and eIBRS leaves the same-mode training hole open
    assert simulate_eibrs_poisoning(BTBPoisoningOrigin.KERNEL_EXECUTION)


def test_ablation_custom_path_sensitive_cfi(benchmark, eval_ctx):
    """PIBE generalizes to research defenses (path-sensitive CFI)."""
    fwd = registered_defense("pscfi_fwd") or register_defense(
        CustomDefense(
            "pscfi_fwd",
            kind="forward",
            cycles=35.0,
            site_expansion_units=4,
            protects=frozenset({"spectre_v2", "lvi"}),
        )
    )
    bwd = registered_defense("pscfi_ret") or register_defense(
        CustomDefense(
            "pscfi_ret",
            kind="backward",
            cycles=28.0,
            site_expansion_units=4,
            protects=frozenset({"ret2spec", "lvi"}),
        )
    )

    def run():
        import copy

        benches = TABLE3_BENCHMARKS
        lto_build = eval_ctx.variant(PibeConfig.lto_baseline())
        pibe_build = eval_ctx.variant(PibeConfig.pibe_baseline())
        unopt = copy.deepcopy(lto_build.module)
        opt = copy.deepcopy(pibe_build.module)
        CustomHardeningPass(forward=fwd, backward=bwd).run(unopt)
        CustomHardeningPass(forward=fwd, backward=bwd).run(opt)
        lto = eval_ctx.lto_measurements(benches)

        def measure(module):
            return {
                b.name: measure_benchmark(
                    module,
                    b,
                    ops=max(
                        1,
                        int(
                            b.default_ops
                            * eval_ctx.settings.measure_ops_scale
                        ),
                    ),
                    seed=eval_ctx.settings.seed,
                ).cycles_per_op
                for b in benches
            }

        return lto, measure(unopt), measure(opt)

    lto, unopt, opt = benchmark.pedantic(run, rounds=1, iterations=1)
    g_unopt = build_overhead_report("u", lto, unopt).geomean
    g_opt = build_overhead_report("o", lto, opt).geomean

    table = Table(
        "Ablation: PIBE applied to a custom path-sensitive CFI",
        ["configuration", "geomean overhead"],
        notes=[
            "Section 6: the approach applies to all high-overhead "
            "defenses, e.g. path-sensitive CFI",
        ],
    )
    table.add_row("pscfi, no optimization", pct(g_unopt))
    table.add_row("pscfi + PIBE", pct(g_opt))
    emit(table)

    assert g_unopt > 0.8
    assert g_opt < g_unopt / 4


def test_ablation_sampled_profile_fidelity(benchmark, eval_ctx):
    """Optimizing with a 1/32-sampled profile recovers most of the win."""

    def run():
        import copy

        from repro.core.pipeline import PibePipeline
        from repro.engine.interpreter import Interpreter
        from repro.profiling.sampling import SamplingProfiler
        from repro.workloads.lmbench import lmbench_workload

        benches = TABLE3_BENCHMARKS
        lto = eval_ctx.lto_measurements(benches)
        all_def = DefenseConfig.all_defenses()
        unopt = build_overhead_report(
            "u", lto, eval_ctx.measure(PibeConfig.hardened(all_def), benches)
        ).geomean
        exact = build_overhead_report(
            "e", lto, eval_ctx.measure(PibeConfig.lax(all_def), benches)
        ).geomean

        # collect a sampled profile and build a variant from it by hand;
        # the rate scales with the profiling workload so sampling stays
        # meaningful at the reduced test scale
        rate = 32 if eval_ctx.settings.profile_ops_scale >= 0.5 else 8
        profiling_copy = copy.deepcopy(eval_ctx.kernel)
        sampler = SamplingProfiler(rate=rate)
        interp = Interpreter(
            profiling_copy, [sampler], seed=eval_ctx.settings.seed
        )
        workload = lmbench_workload(
            ops_scale=eval_ctx.settings.profile_ops_scale
        )
        for bench, ops in workload.components:
            bench.run(interp, ops=ops)
        sampled_profile = sampler.finish()

        pipeline = PibePipeline(eval_ctx.kernel)
        build = pipeline.build_variant(
            PibeConfig.lax(all_def), sampled_profile
        )
        sampled = build_overhead_report(
            "s",
            lto,
            {
                b.name: measure_benchmark(
                    build.module,
                    b,
                    ops=max(
                        1,
                        int(
                            b.default_ops
                            * eval_ctx.settings.measure_ops_scale
                        ),
                    ),
                    seed=eval_ctx.settings.seed,
                ).cycles_per_op
                for b in benches
            },
        ).geomean
        return unopt, exact, sampled

    unopt, exact, sampled = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation: profile fidelity (exact LBR vs AutoFDO-style sampling)",
        ["profile", "all-defenses geomean overhead"],
        notes=[
            "PIBE needs only relative hot-site weights, so sampled "
            "profiles steer it almost as well (the paper's AutoFDO/"
            "production-profiling motivation)",
        ],
    )
    table.add_row("none (unoptimized)", pct(unopt))
    table.add_row("exact (LBR counting)", pct(exact))
    table.add_row("sampled (AutoFDO-style)", pct(sampled))
    emit(table)

    assert sampled < unopt / 3   # most of the win survives sampling
    assert sampled < exact + 0.25
