"""Table 3 — retpolines overhead vs the LTO baseline: unoptimized
retpolines vs JumpSwitches' runtime promotion vs PIBE's static indirect
call promotion at two budgets.

Paper geomeans over the 12-bench subset: 20.2% / 5.0% / 3.9% / 1.3%.
"""

from conftest import emit

from repro.evaluation.tables import table3


def test_table03(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table3, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    g = result.geomeans
    # ordering is the paper's central comparison
    assert g["retpolines"] > g["jumpswitches"] > g["icp 99.999%"]
    assert g["icp 99%"] > g["icp 99.999%"] - 0.02
    # magnitudes: double-digit unoptimized, single-digit jumpswitches,
    # near-zero static ICP
    assert g["retpolines"] > 0.10
    assert 0.01 < g["jumpswitches"] < g["retpolines"]
    assert g["icp 99.999%"] < 0.04
    # select_tcp is the blow-up bench under retpolines (paper +146.5%)
    assert result.overheads["retpolines"]["select_tcp"] > 0.6
