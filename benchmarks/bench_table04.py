"""Table 4 — distribution of indirect call sites by number of observed
runtime targets (paper: 517 / 109 / 34 / 23 / 6 / 12 / 22).

Single-target sites dominate, but a meaningful multi-target tail exists —
the sites JumpSwitches periodically downgrades to learning mode.
"""

from conftest import emit

from repro.evaluation.tables import table4


def test_table04(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table4, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    dist = result.distribution
    total = sum(dist.values())
    assert total > 20
    # single-target sites are the majority...
    assert dist["1"] / total > 0.4
    assert dist["1"] > dist["2"] > 0
    # ...but multi-target sites are a meaningful fraction (paper: ~28%)
    multi = total - dist["1"]
    assert multi / total > 0.15
