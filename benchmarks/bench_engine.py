"""Execution-engine micro-benchmark: reference interpreter vs compiled.

Runs the same syscall mix through both engines, checks the event streams
agree in volume, and records wall time + events/sec to ``BENCH_engine.json``
at the repo root so the engine's perf trajectory is tracked across
commits (the JSON is a single flat record, easy to diff or plot).
"""

import json
import time
from pathlib import Path

from _meta import stamp, write_record

from repro.engine.compiled import ENGINE_VERSION, ENGINES, create_interpreter
from repro.engine.trace import TraceSink
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: (syscall, invocations) mix — read/write heavy like the LMBench profile.
SYSCALL_MIX = (
    ("read", 400),
    ("write", 400),
    ("stat", 150),
    ("open", 100),
    ("select_file", 60),
    ("mmap", 60),
    ("pipe", 100),
)


class EventCounter(TraceSink):
    """Counts every delivered trace event (the engine's unit of work)."""

    def __init__(self) -> None:
        self.events = 0

    def on_enter(self, func):
        self.events += 1

    def on_mix(self, arith, load, store, cmp, fence, br):
        self.events += 1

    def on_call(self, inst, caller, callee):
        self.events += 1

    def on_icall(self, inst, caller, callee):
        self.events += 1

    def on_ret(self, inst, func):
        self.events += 1

    def on_ijump(self, inst, func):
        self.events += 1


def _run_engine(module, engine: str) -> dict:
    counter = EventCounter()
    interp = create_interpreter(module, [counter], seed=13, engine=engine)
    start = time.perf_counter()
    for syscall, times in SYSCALL_MIX:
        interp.run_syscall(syscall, times=times)
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "events": counter.events,
        "events_per_sec": round(counter.events / seconds),
    }


def test_engine_throughput():
    module = build_kernel(SmallSpec())
    results = {engine: _run_engine(module, engine) for engine in ENGINES}
    reference, compiled = results["reference"], results["compiled"]

    # same module, same seed -> same work, whatever the wall time
    assert compiled["events"] == reference["events"]
    speedup = reference["seconds"] / compiled["seconds"]

    record = {
        "benchmark": "engine_throughput",
        "engine_version": ENGINE_VERSION,
        "kernel": "SmallSpec",
        "syscalls": sum(times for _, times in SYSCALL_MIX),
        "reference": reference,
        "compiled": compiled,
        "speedup": round(speedup, 2),
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nengine micro-benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    # the compiled engine exists to be faster; flag regressions loudly but
    # leave headroom for noisy CI machines
    assert speedup > 1.2
