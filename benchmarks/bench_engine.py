"""Execution-engine benchmark: reference vs compiled vs vectorized.

Runs the engine workload mix through all three engines on the 10×
:class:`ScaledSpec` kernel under identical counting sinks, cross-checks
that event and cycle totals agree bit-for-bit (the differential gate —
a fast engine that counts differently is wrong, not fast), and records
wall time + events/sec to ``BENCH_engine.json`` at the repo root so the
engine's perf trajectory is tracked across commits.

The vectorized engine carries a CI budget: at least
``MIN_VECTORIZED_SPEEDUP``× the reference interpreter's throughput.
"""

import json
import time
from pathlib import Path

from _meta import stamp, write_record

from repro.cpu.counting import CountingTimingModel
from repro.engine.compiled import ENGINE_VERSION, create_interpreter
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SCALED_SPEC
from repro.workloads.lmbench import engine_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: All engines, slowest first (reference is the speedup denominator).
ALL_ENGINES = ("reference", "compiled", "vectorized")

#: CI perf budget: vectorized throughput vs the reference interpreter.
MIN_VECTORIZED_SPEEDUP = 10.0
#: The compiled engine's long-standing (looser) budget.
MIN_COMPILED_SPEEDUP = 1.2


def _run_engine(module, engine: str) -> dict:
    """One full engine-workload pass; totals drawn from the counting sink.

    A one-op warm-up pass precedes the timed window so one-time program
    construction (compiled/vector programs are cached on the module, as
    in any real multi-measurement session) doesn't masquerade as
    per-event cost. Warm-up events stay in the sink's totals — they are
    identical across engines, so the differential gate still holds —
    but throughput is computed from the timed window only.
    """
    sink = CountingTimingModel(module)
    interp = create_interpreter(module, [sink], seed=13, engine=engine)
    workload = engine_workload()
    for bench, _ in workload.components:
        for syscall, times in bench.syscalls:
            interp.run_syscall(syscall, times=times)
    warmup_events = sink.total_events
    start = time.perf_counter()
    for bench, ops in workload.components:
        for syscall, times in bench.syscalls:
            interp.run_syscall(syscall, times=times * ops)
    seconds = time.perf_counter() - start
    events = sink.total_events
    timed_events = events - warmup_events
    return {
        "seconds": round(seconds, 4),
        "events": events,
        "timed_events": timed_events,
        "cycles": round(sink.cycles, 3),
        "events_per_sec": round(timed_events / seconds),
        "_raw_seconds": seconds,
    }


def test_engine_throughput():
    module = build_kernel(SCALED_SPEC)
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    module.bump_version()

    results = {engine: _run_engine(module, engine) for engine in ALL_ENGINES}

    # Differential gate: identical work under identical counting sinks.
    # Totals must match bit-for-bit before any number is recorded.
    reference = results["reference"]
    for engine in ("compiled", "vectorized"):
        assert results[engine]["events"] == reference["events"], engine
        assert results[engine]["cycles"] == reference["cycles"], engine

    speedups = {
        engine: round(
            reference["_raw_seconds"] / results[engine]["_raw_seconds"], 2
        )
        for engine in ("compiled", "vectorized")
    }
    for engine in ALL_ENGINES:
        del results[engine]["_raw_seconds"]

    record = {
        "benchmark": "engine_throughput",
        "engine_version": ENGINE_VERSION,
        "kernel": "ScaledSpec",
        "functions": len(module.functions),
        "workload": "engine-mix",
        **{engine: results[engine] for engine in ALL_ENGINES},
        "speedup_compiled": speedups["compiled"],
        "speedup_vectorized": speedups["vectorized"],
        "budget_vectorized": MIN_VECTORIZED_SPEEDUP,
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nengine benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    # Perf budgets — flag regressions loudly, with headroom for noisy CI.
    assert speedups["compiled"] > MIN_COMPILED_SPEEDUP, speedups
    assert speedups["vectorized"] >= MIN_VECTORIZED_SPEEDUP, speedups
