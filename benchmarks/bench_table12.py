"""Table 12 — kernel size and memory usage growth due to the algorithms.

Paper (all-defenses): abs size +8.1/13.8/36.8% across budgets, image size
+4.8/10.3/32.7%, resident code memory moving in page-granular steps,
slab/dyn usage essentially flat.
"""

from conftest import emit

from repro.evaluation.tables import table12


def test_table12(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table12, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    r = result.reports
    all99 = r["all-defenses @99%"]
    all999 = r["all-defenses @99.9%"]
    all_max = r["all-defenses @99.9999%"]

    # growth is monotone in the budget
    assert all99.abs_size_increase <= all999.abs_size_increase + 0.01
    assert all999.abs_size_increase <= all_max.abs_size_increase + 0.01
    # image growth (vs same-defense baseline) stays moderate
    assert 0.0 < all99.img_size_increase < 0.6
    # ICP-only (retpolines) growth is tiny (paper 1.6%)
    assert r["retpolines @99.999%"].abs_size_increase < 0.12
    # slab barely moves (paper 0.1-0.3%)
    assert abs(all_max.slab_size_increase) < 0.02
    # dynamic (stack) usage changes stay small relative to code growth
    assert abs(all_max.dyn_size_increase) < 0.6
    # mem size quantized: multiples of the page step
    from repro.analysis.sizes import MEM_PAGE_BYTES

    assert all_max.text_bytes > 0
