"""Static-analyzer wall-time benchmarks.

Two budget records appended to ``BENCH_lint.json`` at the repo root:

- ``lint_walltime`` — cold full lint of the default kernel (all rules,
  with profile-dependent flow checking). The analyzer gates CI and runs
  at every pass boundary under ``verify_each``, so it must stay cheap:
  the budget is 10% of the documented cold ``full_evaluation --fast``
  wall time (4.3s).
- ``lint_scaled_incremental`` — the ~31k-function :class:`ScaledSpec`
  kernel through the incremental engine, cold (every chunk missing)
  then warm (every chunk cached). Carries its own wall-clock budget
  plus a floor on the warm/cold speedup; both are asserted here and
  re-asserted by the CI lint job against the recorded numbers.
"""

import json
import time
from pathlib import Path

from _meta import stamp, write_record

from repro.core.pipeline import PibePipeline
from repro.evaluation.cache import DiskCache
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, ScaledSpec
from repro.static import all_rules, analyze_module, lint_module
from repro.workloads.lmbench import lmbench_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_lint.json"

#: Cold `python -m repro evaluate --fast` wall time documented in
#: CHANGES.md (PR 1); the analyzer must cost under 10% of it.
REFERENCE_FULL_EVAL_SECONDS = 4.3
BUDGET_SECONDS = REFERENCE_FULL_EVAL_SECONDS * 0.10

#: Cold incremental full lint of the 31k-function scaled kernel
#: (fingerprint + analyze + populate ~250 chunk entries), with headroom
#: for noisy CI (measured ~5.1s).
SCALED_COLD_BUDGET_SECONDS = 15.0
#: A fully-warm incremental lint must beat the cold one by at least
#: this factor (measured ~11x).
MIN_WARM_SPEEDUP = 5.0


def test_lint_walltime_within_budget():
    module = build_kernel(DEFAULT_SPEC)
    profile = PibePipeline(module).profile(
        lmbench_workload(ops_scale=0.1), iterations=1
    )

    start = time.perf_counter()
    report = analyze_module(module, profile=profile)
    seconds = time.perf_counter() - start

    assert not report.errors(), report.to_text()

    record = {
        "benchmark": "lint_walltime",
        "kernel": "DEFAULT_SPEC",
        "functions": len(module),
        "instructions": module.size(),
        "rules": len(all_rules()),
        "diagnostics": len(report.diagnostics),
        "seconds": round(seconds, 4),
        "budget_seconds": BUDGET_SECONDS,
        "reference_full_eval_seconds": REFERENCE_FULL_EVAL_SECONDS,
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nlint benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    assert seconds < BUDGET_SECONDS, (
        f"analyzer took {seconds:.3f}s, budget {BUDGET_SECONDS:.3f}s"
    )


def test_scaled_incremental_lint_within_budget(tmp_path):
    module = build_kernel(ScaledSpec())
    cache = DiskCache(tmp_path / "lint-cache")

    start = time.perf_counter()
    cold = lint_module(module, cache=cache)
    cold_seconds = time.perf_counter() - start
    assert cold.stats["cache_misses"] == len(module.functions)
    assert not cold.errors(), cold.to_text()

    start = time.perf_counter()
    warm = lint_module(module, cache=cache)
    warm_seconds = time.perf_counter() - start
    assert warm.stats["cache_hits"] == len(module.functions)
    assert warm.stats["cache_misses"] == 0
    assert warm.to_json() == cold.to_json()

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    record = {
        "benchmark": "lint_scaled_incremental",
        "kernel": "ScaledSpec",
        "functions": len(module),
        "instructions": module.size(),
        "chunks": cold.stats["chunks"],
        "diagnostics": len(cold.diagnostics),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(speedup, 2),
        "budget_cold_seconds": SCALED_COLD_BUDGET_SECONDS,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nscaled incremental lint benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    assert cold_seconds < SCALED_COLD_BUDGET_SECONDS, (
        f"cold scaled lint took {cold_seconds:.3f}s, "
        f"budget {SCALED_COLD_BUDGET_SECONDS:.3f}s"
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )
