"""Static-analyzer wall-time benchmark.

Lints the full default kernel (cold, all rules, with profile-dependent
flow checking) and records wall time to ``BENCH_lint.json`` at the repo
root. The analyzer gates CI and runs at every pass boundary under
``verify_each``, so it must stay cheap: the budget is 10% of the
documented cold ``full_evaluation --fast`` wall time (4.3s).
"""

import json
import time
from pathlib import Path

from _meta import stamp, write_record

from repro.core.pipeline import PibePipeline
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC
from repro.static import all_rules, analyze_module
from repro.workloads.lmbench import lmbench_workload

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_lint.json"

#: Cold `python -m repro evaluate --fast` wall time documented in
#: CHANGES.md (PR 1); the analyzer must cost under 10% of it.
REFERENCE_FULL_EVAL_SECONDS = 4.3
BUDGET_SECONDS = REFERENCE_FULL_EVAL_SECONDS * 0.10


def test_lint_walltime_within_budget():
    module = build_kernel(DEFAULT_SPEC)
    profile = PibePipeline(module).profile(
        lmbench_workload(ops_scale=0.1), iterations=1
    )

    start = time.perf_counter()
    report = analyze_module(module, profile=profile)
    seconds = time.perf_counter() - start

    assert not report.errors(), report.to_text()

    record = {
        "benchmark": "lint_walltime",
        "kernel": "DEFAULT_SPEC",
        "functions": len(module),
        "instructions": module.size(),
        "rules": len(all_rules()),
        "diagnostics": len(report.diagnostics),
        "seconds": round(seconds, 4),
        "budget_seconds": BUDGET_SECONDS,
        "reference_full_eval_seconds": REFERENCE_FULL_EVAL_SECONDS,
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nlint benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    assert seconds < BUDGET_SECONDS, (
        f"analyzer took {seconds:.3f}s, budget {BUDGET_SECONDS:.3f}s"
    )
