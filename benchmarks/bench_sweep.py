"""Sweep-engine scale benchmark: grid throughput and cache economics.

The sweep engine fans a (defense x budget x workload) grid through the
staged build pipeline and the measurement disk cache, so its cost model
has two regimes:

- **cold**: every cell pays profile + prefix build + stamp + measure;
- **warm**: a repeated grid is served from the measurement cache, and a
  *grown* grid (new defenses, same budgets) stamps onto already-built
  optimization prefixes — per-cell cost must drop, i.e. total cost is
  sublinear in grid size.

Three timed runs against one cache directory record the economics to
``BENCH_build.json`` at the repo root:

- ``cold``: base grid, empty cache;
- ``warm``: identical grid — asserts byte-identical CSV/report output,
  measurement-cache hits, and warm prefix reuse;
- ``grown``: the base grid plus extra defenses (same budgets) — asserts
  per-cell cost below the cold run's (the sublinearity bar), since the
  old cells are cache hits and the new cells reuse warm prefixes.

Runs as a pytest benchmark (``pytest benchmarks/bench_sweep.py``,
``REPRO_BENCH_FAST=1`` for the reduced grid) or as a script
(``python benchmarks/bench_sweep.py [--fast] [--strict-git]``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

if __package__ in (None, ""):  # script mode: make `from _meta import` work
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from _meta import stamp, write_record

from repro.evaluation.harness import EvalSettings
from repro.evaluation.sweepengine import (
    SCALE_SPECS,
    SweepGrid,
    llvm_cfi_only,
    run_sweep,
)
from repro.hardening.defenses import DefenseConfig
from repro.kernel.generator import build_kernel
from repro.workloads.lmbench import BY_NAME

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_build.json"

#: Sublinearity bar: growing the grid by a factor k must cost less than
#: this fraction of k times the cold run (1.0 = merely linear).
MAX_GROWTH_COST_FRACTION = 0.75

BASE_DEFENSES = (
    DefenseConfig.retpolines_only(),
    llvm_cfi_only(),
)
EXTRA_DEFENSES = (
    DefenseConfig.lvi_only(),
    DefenseConfig.all_defenses(),
)


def _grids(fast: bool):
    budgets = (0.5, 0.999999) if fast else (0.5, 0.9, 0.99, 0.999999)
    base = SweepGrid(
        budgets=budgets,
        defenses=BASE_DEFENSES,
        workloads=("lmbench",),
        scales=("small",),
        seeds=2,
    )
    grown = dataclasses.replace(base, defenses=BASE_DEFENSES + EXTRA_DEFENSES)
    return base, grown


def _settings(cache_dir: str) -> EvalSettings:
    return EvalSettings(
        profile_iterations=1,
        profile_ops_scale=0.1,
        measure_ops_scale=0.1,
        cache_dir=cache_dir,
    )


def _timed(grid: SweepGrid, settings: EvalSettings, benches, kernels):
    start = time.perf_counter()
    result = run_sweep(grid, settings, benches=benches, kernels=kernels)
    return time.perf_counter() - start, result


def run_sweep_bench(fast: bool) -> Dict[str, Any]:
    """Measure the three cache regimes; returns the benchmark record."""
    base, grown = _grids(fast)
    bench_names = ("read", "write", "pipe") if fast else (
        "read", "write", "pipe", "select_tcp", "fstat"
    )
    benches = [BY_NAME[n] for n in bench_names]
    # One kernel for all three runs: a rebuilt kernel would carry shifted
    # site ids and so a different profile/prefix cache universe.
    kernels = {"small": build_kernel(SCALE_SPECS["small"])}

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        settings = _settings(tmp)
        cold_seconds, cold = _timed(base, settings, benches, kernels)
        warm_seconds, warm = _timed(base, settings, benches, kernels)
        grown_seconds, big = _timed(grown, settings, benches, kernels)

    # Warm rerun of the identical grid: the analysis output must be
    # byte-identical and served from the measurement cache.
    assert warm.to_csv() == cold.to_csv(), "warm CSV diverged"
    assert warm.render_report("text") == cold.render_report("text")
    warm_pipeline = warm.stats["pipeline"]
    warm_prefix_hits = (
        warm_pipeline["prefix_memory_hits"] + warm_pipeline["prefix_disk_hits"]
    )
    assert warm.stats["disk_cache"]["hits"] > 0, warm.stats
    assert warm_pipeline["prefix_builds"] == 0, warm_pipeline
    assert warm_prefix_hits > 0, warm_pipeline

    # Growing the grid reuses the warm prefixes: per-cell cost must be
    # sublinear versus the cold run.
    cold_per_cell = cold_seconds / base.cell_count
    grown_per_cell = grown_seconds / grown.cell_count
    growth_fraction = grown_per_cell / cold_per_cell
    assert growth_fraction < MAX_GROWTH_COST_FRACTION, (
        f"grown grid cost {grown_per_cell:.4f}s/cell vs cold "
        f"{cold_per_cell:.4f}s/cell (fraction {growth_fraction:.2f}, "
        f"bar {MAX_GROWTH_COST_FRACTION})"
    )
    grown_pipeline = big.stats["pipeline"]
    assert grown_pipeline["prefix_builds"] == 0, grown_pipeline

    return {
        "benchmark": "sweep_engine",
        "fast": fast,
        "budgets": list(base.budgets),
        "defenses": [d.label() for d in grown.defenses],
        "benches": list(bench_names),
        "seeds": base.seeds,
        "base_cells": base.cell_count,
        "grown_cells": grown.cell_count,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "grown_seconds": round(grown_seconds, 4),
        "cold_cells_per_sec": round(base.cell_count / cold_seconds, 3),
        "warm_cells_per_sec": round(base.cell_count / warm_seconds, 3),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "growth_cost_fraction": round(growth_fraction, 3),
        "max_growth_cost_fraction": MAX_GROWTH_COST_FRACTION,
        "warm_prefix_hits": warm_prefix_hits,
        "warm_disk_cache": warm.stats["disk_cache"],
        "grown_pipeline_stats": grown_pipeline,
        "crossovers": len(cold.crossovers),
    }


def _check_and_write(record: Dict[str, Any], strict=None) -> None:
    stamp(record, strict=strict)
    write_record(RECORD_PATH, record)
    print(f"\nsweep-engine benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))


def test_sweep_scale():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_sweep_bench(fast))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="reduced grid and bench set"
    )
    parser.add_argument(
        "--strict-git",
        action="store_true",
        help="refuse to record results from a dirty working tree",
    )
    args = parser.parse_args(argv)
    record = run_sweep_bench(args.fast)
    _check_and_write(record, strict=args.strict_git or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
