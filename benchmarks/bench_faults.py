"""Fault-recovery wall-time benchmark.

Measures what a worker crash plus a transient fault cost a parallel
``measure_many`` regeneration: the run must still complete every cell
(recovery, not loss) and the recovery machinery — pool rebuild, retries,
backoff — must stay a small multiple of the undisturbed run. Records to
``BENCH_faults.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from _meta import stamp, write_record

from repro import faults
from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings, cell_label
from repro.faults import FaultPlan, FaultSpec
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

BENCHES = (BY_NAME["null"], BY_NAME["read"])

#: Injected faults may cost retries and a pool rebuild, but never more
#: than this multiple of the undisturbed parallel run (generous: CI
#: machines are noisy and the disturbed run redoes one cell's work).
MAX_RECOVERY_RATIO = 5.0


def _settings():
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.1,
        measure_ops_scale=0.1,
        jobs=2,
        max_retries=2,
        retry_backoff=0.01,
        cell_timeout=120.0,
    )


def _configs():
    budgets = (0.9, 0.99, 0.999, 0.9999)
    configs = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(DefenseConfig.retpolines_only()),
    ]
    for budget in budgets:
        configs.append(
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(),
                icp_budget=budget,
                inline_budget=budget,
            )
        )
    return configs


def test_fault_recovery_walltime():
    configs = _configs()

    faults.clear()
    start = time.perf_counter()
    clean = EvalContext(_settings()).measure_many(configs, BENCHES)
    clean_seconds = time.perf_counter() - start
    assert clean.failure_report.ok

    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="measure.cell",
                    mode="crash",
                    match=cell_label(configs[2], "lmbench"),
                    times=1,
                ),
                FaultSpec(
                    point="measure.cell",
                    mode="raise",
                    match=cell_label(configs[4], "lmbench"),
                    times=1,
                ),
            ]
        )
    )
    try:
        start = time.perf_counter()
        disturbed = EvalContext(_settings()).measure_many(configs, BENCHES)
        disturbed_seconds = time.perf_counter() - start
    finally:
        faults.clear()

    report = disturbed.failure_report
    assert report.ok, report.summary()  # recovered, nothing lost
    assert all(r is not None for r in disturbed)
    assert report.retries >= 1

    ratio = disturbed_seconds / clean_seconds if clean_seconds else 0.0
    record = {
        "benchmark": "fault_recovery_walltime",
        "cells": len(configs),
        "jobs": 2,
        "injected": ["crash x1", "raise x1"],
        "clean_seconds": round(clean_seconds, 4),
        "disturbed_seconds": round(disturbed_seconds, 4),
        "recovery_ratio": round(ratio, 3),
        "retries": report.retries,
        "degraded": len(report.degraded),
        "max_recovery_ratio": MAX_RECOVERY_RATIO,
    }
    stamp(record)
    write_record(RECORD_PATH, record)
    print(f"\nfault-recovery benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))

    assert ratio < MAX_RECOVERY_RATIO, (
        f"fault recovery cost {ratio:.2f}x the clean run, "
        f"budget {MAX_RECOVERY_RATIO}x"
    )
