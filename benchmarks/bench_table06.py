"""Table 6 — LMBench geometric-mean overhead per defense, unoptimized vs
PIBE's optimal configuration for that defense.

Paper: None 0/-6.6, Retpolines 20.2/1.3, Return retpolines 63.4/3.7,
LVI-CFI 61.9/1.8, All 149.1/10.6 — "in each case, we reduce overhead by
more than an order of magnitude, making each defense practical."
"""

from conftest import emit

from repro.evaluation.tables import table6


def test_table06(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table6, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    lto, pibe = result.lto_geomeans, result.pibe_geomeans
    # unoptimized defense cost ordering: all > {retret, LVI} > retpolines
    assert lto["All"] > lto["Return retpolines"] > lto["Retpolines"]
    assert lto["All"] > lto["LVI-CFI"] > lto["Retpolines"]
    # PGO-only baseline speeds up
    assert pibe["None"] < 0
    # each defense drops by a large factor under PIBE
    for defense in ("Retpolines", "Return retpolines", "LVI-CFI"):
        assert pibe[defense] < 0.10
        assert pibe[defense] < lto[defense] / 5
    # comprehensive protection lands near the paper's 10.6%
    assert pibe["All"] < lto["All"] / 8
    assert pibe["All"] < 0.25
