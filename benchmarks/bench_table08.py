"""Table 8 — number of indirect-branch gadgets eliminated by PIBE per
optimization budget.

Paper at 99%/99.9%/99.9999%: promoted weight 98.8/99.9/100%, promoted
sites 17.2/32.9/89.7%, elided return weight ~94% at every budget, elided
return sites 13.6/29.7/86.1% — weight saturates early, site counts grow
with budget.
"""

from conftest import emit

from repro.evaluation.tables import table8


def test_table08(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table8, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    budgets = sorted(result.stats)
    lowest, highest = result.stats[budgets[0]], result.stats[budgets[-1]]

    # weight coverage saturates already at the lowest budget
    assert lowest.icp_weight_fraction > 0.9
    assert lowest.return_weight_fraction > 0.7
    # site counts keep growing with the budget
    assert highest.icp_sites >= lowest.icp_sites
    assert highest.return_sites > lowest.return_sites
    assert highest.icp_targets >= lowest.icp_targets
    # elided weight fraction stays roughly flat across budgets (paper:
    # 93.9/93.8/93.7%), because the heuristics block a similar slice
    spread = abs(
        highest.return_weight_fraction - lowest.return_weight_fraction
    )
    assert spread < 0.15
