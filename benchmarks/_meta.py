"""Shared bench-record metadata: git provenance and append-style history.

Every ``BENCH_*.json`` record carries the commit it was measured at so
perf trajectories can be plotted across commits. Hygiene rules:

- ``git`` is always the *clean* short hash — never a mangled
  ``<hash>-dirty`` string that breaks ``git show <hash>``;
- a working tree with uncommitted changes is flagged separately as
  ``"dirty": true``, so dirty data points are identifiable (and
  filterable) without corrupting the hash field;
- strict mode (``REPRO_BENCH_STRICT_GIT=1``, or ``--strict-git`` on
  script-mode benchmarks) refuses to record from a dirty tree at all —
  for CI jobs whose numbers must be attributable to an exact commit.

Record files hold a JSON *list* of records, newest last; ``write_record``
converts a legacy single-record file into a list before appending.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment switch for strict mode (any non-empty value but "0").
STRICT_GIT_ENV = "REPRO_BENCH_STRICT_GIT"


class DirtyTreeError(RuntimeError):
    """Raised in strict mode when the working tree has local changes."""


def _git(*args: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ("git", *args),
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_metadata() -> Dict[str, Any]:
    """``{"git": <clean short hash or None>, "dirty": <bool>}``.

    The hash never carries a ``-dirty`` suffix; local modifications are
    reported in the separate ``dirty`` flag. Outside a git checkout both
    degrade gracefully (``None`` / ``False``).

    Modified ``BENCH_*.json`` record files do not count as dirt: they are
    benchmark *outputs*, so a multi-record benchmark run does not poison
    its own later records' attribution by appending its earlier ones.
    """
    head = _git("rev-parse", "--short", "HEAD")
    status = _git("status", "--porcelain") if head is not None else None

    def _path(line: str) -> str:
        # "XY path" (or "XY old -> new" for renames); token-split rather
        # than fixed offsets — _git() strips leading whitespace.
        parts = line.strip().split(None, 1)
        return parts[-1].split(" -> ")[-1].strip('"')

    lines = [
        line
        for line in (status or "").splitlines()
        if line.strip() and not Path(_path(line)).name.startswith("BENCH_")
    ]
    return {"git": head, "dirty": bool(lines)}


def strict_git_enabled() -> bool:
    return os.environ.get(STRICT_GIT_ENV, "") not in ("", "0")


def stamp(record: Dict[str, Any], strict: Optional[bool] = None) -> Dict[str, Any]:
    """Add git + timestamp provenance to ``record`` (in place).

    With ``strict`` (default: :func:`strict_git_enabled`) a dirty working
    tree raises :class:`DirtyTreeError` instead of recording a number
    that can't be attributed to a commit.
    """
    meta = git_metadata()
    if strict is None:
        strict = strict_git_enabled()
    if strict and meta["dirty"]:
        raise DirtyTreeError(
            "working tree has uncommitted changes; refusing to record "
            "benchmark results in strict git mode (commit or stash, or "
            f"unset {STRICT_GIT_ENV})"
        )
    record.update(meta)
    record["timestamp"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%S%z")
    )
    return record


def write_record(path: Path, record: Dict[str, Any]) -> None:
    """Append ``record`` to the JSON record list at ``path``.

    Existing files are preserved as history (a legacy single-record
    object becomes the first list element); unreadable files are
    replaced rather than crashing the benchmark that produced the data.

    Appending a *dirty* record (uncommitted working-tree changes at
    measurement time) warns loudly: every ``BENCH_*.json`` is a budget
    file a CI job asserts against, and a number that can't be attributed
    to a commit poisons the trajectory. CI should run the benchmark
    under ``REPRO_BENCH_STRICT_GIT=1`` so this never gets that far.
    """
    if record.get("dirty"):
        print(
            f"\nWARNING: appending a DIRTY benchmark record to {path.name} — "
            "this number cannot be attributed to a commit and the file's "
            f"budget is CI-asserted. Re-run on a clean tree (or under "
            f"{STRICT_GIT_ENV}=1 to refuse instead).\n",
            file=sys.stderr,
        )
    records = []
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            records = existing if isinstance(existing, list) else [existing]
        except ValueError:
            records = []
    records.append(record)
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
