"""Table 5 — overhead with all defenses enabled (LVI + Spectre V2 +
Ret2spec protection), across ICP/inlining budgets.

Paper geomeans: 149.1 (no opt) / 133.1 (+icp) / 28.0 (99%) / 15.9 (99.9%)
/ 12.7 (99.9999%) / 10.6% (lax heuristics) — an order-of-magnitude
reduction from profile-guided indirect branch elimination.
"""

from conftest import emit

from repro.evaluation.tables import table5


def test_table05(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table5, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    g = result.geomeans
    # unoptimized comprehensive protection is impractical
    assert g["no opt"] > 1.0
    # ICP alone recovers a modest slice (paper 149 -> 133)
    assert g["no opt"] > g["+icp 99.999%"] > g["+inl 99%"]
    # budget progression is monotone (within noise)
    assert g["+inl 99%"] >= g["+inl 99.9%"] - 0.01
    assert g["+inl 99.9%"] >= g["+inl 99.9999%"] - 0.01
    assert g["+inl 99.9999%"] >= g["lax heuristics"] - 0.01
    # the headline: order-of-magnitude reduction
    assert g["lax heuristics"] < g["no opt"] / 8
    assert g["lax heuristics"] < 0.25
    # per-bench blow-up/rescue shape: select_tcp goes from the worst
    # bench to roughly baseline (paper 567% -> -12.1%)
    assert result.overheads["no opt"]["select_tcp"] > 2.0
    assert result.overheads["lax heuristics"]["select_tcp"] < 0.2
