"""Load-generator benchmark for the evaluation server (``repro serve``).

The server exists to amortize cold-start: kernel generation, profiling,
prefix builds and cache warm-up are paid once per process instead of
once per request. This benchmark quantifies that on the acceptance grid
— 5 defense selections x 2 workloads — three ways:

- ``cold_cli``: the per-invocation CLI path. Each cell constructs a
  fresh :class:`EvalContext` (kernel build + profile + variant +
  measurement, no disk cache) exactly like a one-shot ``repro
  benchmark`` run would.
- ``server_first_pass``: one client pass over the grid against a fresh
  server — the server's own cold path (prefix builds, cache fills).
- ``warm load``: N client threads hammer the warm server with the grid
  for several rounds; every request is timed, yielding requests/sec and
  p50/p99 latency. This is the number the CI budget asserts:
  ``warm_vs_cold_speedup = warm_rps / cold_cli_rps >= MIN_SPEEDUP``.

Server results are also checked **bit-identical** against
:meth:`EvalContext.measure_many` run inline — the service layer may
never change a measurement, only its latency.

Runs as a pytest benchmark (``pytest benchmarks/bench_serve.py``,
``REPRO_BENCH_FAST=1`` for the small kernel) or as a script::

    python benchmarks/bench_serve.py [--fast] [--strict-git]
        [--unix SOCK | --host H --port P]   # target a running server
        [--threads N] [--rounds N] [-o latency-report.json]

Without ``--unix``/``--port`` a server is self-hosted in-process (same
settings as the oracle, so the comparison is exact). When targeting an
external server it must run with matching settings (``repro serve
--fast`` for ``--fast`` here), or the bit-identical check fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

if __package__ in (None, ""):  # script mode: make `from _meta import` work
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from _meta import stamp, write_record

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.serve.client import ServeClient
from repro.serve.server import ReproServer, run_server

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The acceptance grid: every Table-12 defense selection, both training
#: workloads.
DEFENSES = (
    DefenseConfig.none(),
    DefenseConfig.retpolines_only(),
    DefenseConfig.ret_retpolines_only(),
    DefenseConfig.lvi_only(),
    DefenseConfig.all_defenses(),
)
WORKLOADS = ("lmbench", "apache")
BENCHES = ("null", "read")

#: Acceptance bar: warm server throughput vs the per-invocation cold path.
MIN_SPEEDUP = 5.0


def bench_settings(fast: bool) -> EvalSettings:
    """Must mirror ``repro serve`` / ``repro serve --fast``
    (``_eval_settings`` in the CLI) exactly, so a load run against an
    externally started server produces bit-identical numbers to the
    inline oracle."""
    if fast:
        return EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
        )
    return EvalSettings()


def grid_cells() -> List[Tuple[PibeConfig, str]]:
    configs = [PibeConfig.lax(d) for d in DEFENSES]
    return [(c, w) for w in WORKLOADS for c in configs]


def measure_cold_cli(
    settings: EvalSettings, cells: List[Tuple[PibeConfig, str]], sample: int
) -> float:
    """Seconds per request on the per-invocation path: every cell pays a
    fresh context (kernel build, profiling, prefix build), like a
    one-shot CLI run. Returns the mean over ``sample`` cells."""
    times = []
    for config, workload in cells[:sample]:
        start = time.perf_counter()
        with EvalContext(settings) as ctx:
            ctx.measure(config, benches=_bench_objs(), workload_name=workload)
        times.append(time.perf_counter() - start)
    return statistics.fmean(times)


def _bench_objs():
    from repro.workloads.lmbench import BY_NAME

    return tuple(BY_NAME[name] for name in BENCHES)


def _inline_oracle(
    settings: EvalSettings, cells: List[Tuple[PibeConfig, str]]
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Ground truth: measure the whole grid inline in one context."""
    oracle: Dict[Tuple[str, str], Dict[str, float]] = {}
    with EvalContext(settings) as ctx:
        for workload in WORKLOADS:
            configs = [c for c, w in cells if w == workload]
            results = ctx.measure_many(
                configs, benches=_bench_objs(), workload_name=workload
            )
            assert results.failure_report.ok, results.failure_report.summary()
            for config, values in zip(configs, results):
                oracle[(config.label(), workload)] = values
    return oracle


def _one_pass(
    client: ServeClient,
    cells: List[Tuple[PibeConfig, str]],
    latencies_ms: Optional[List[float]] = None,
) -> Dict[Tuple[str, str], Dict[str, float]]:
    out = {}
    for config, workload in cells:
        start = time.perf_counter()
        result = client.measure(config, benches=list(BENCHES), workload=workload)
        if latencies_ms is not None:
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
        out[(config.label(), workload)] = result["results"]
    return out


def run_serve_bench(
    fast: bool,
    threads: int = 4,
    rounds: int = 5,
    unix: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    cold_sample: Optional[int] = None,
) -> Dict[str, Any]:
    settings = bench_settings(fast)
    cells = grid_cells()
    if cold_sample is None:
        cold_sample = 3 if fast else len(cells)

    oracle = _inline_oracle(settings, cells)
    cold_per_request = measure_cold_cli(settings, cells, cold_sample)

    own_server = unix is None and port is None
    server: Optional[ReproServer] = None
    server_thread: Optional[threading.Thread] = None
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if own_server:
        tmpdir = tempfile.TemporaryDirectory(prefix="bench-serve-")
        unix = os.path.join(tmpdir.name, "repro.sock")
        server = ReproServer(
            dataclasses.replace(
                settings, cache_dir=os.path.join(tmpdir.name, "cache")
            ),
            unix_path=unix,
        )
        server_thread = threading.Thread(
            target=run_server, args=(server,), daemon=True
        )
        server_thread.start()
        deadline = time.monotonic() + 60
        while not os.path.exists(unix):
            if time.monotonic() > deadline:
                raise RuntimeError("server socket never appeared")
            time.sleep(0.05)

    def make_client() -> ServeClient:
        if unix:
            return ServeClient(unix=unix)
        return ServeClient(host=host, port=port)

    try:
        # -- server cold pass (its prefix builds + cache fills) ------------
        with make_client() as client:
            start = time.perf_counter()
            first_pass = _one_pass(client, cells)
            first_pass_seconds = time.perf_counter() - start
        assert first_pass == oracle, "server results differ from inline oracle"

        # -- warm load ------------------------------------------------------
        latencies_by_thread: List[List[float]] = [[] for _ in range(threads)]
        mismatches: List[str] = []

        def worker(slot: int) -> None:
            with make_client() as client:
                for _ in range(rounds):
                    passed = _one_pass(client, cells, latencies_by_thread[slot])
                    if passed != oracle:
                        mismatches.append(f"thread {slot}")
                        return

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        start = time.perf_counter()
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        wall = time.perf_counter() - start
        assert not mismatches, f"warm results diverged: {mismatches}"

        latencies = sorted(
            ms for per_thread in latencies_by_thread for ms in per_thread
        )
        assert latencies, "no warm requests recorded"
        total_requests = len(latencies)
        warm_rps = total_requests / wall

        with make_client() as client:
            server_stats = client.stats()["server"]
    finally:
        if own_server:
            try:
                with make_client() as client:
                    client.shutdown()
            except OSError:
                pass
            server_thread.join(timeout=30)
            tmpdir.cleanup()

    def pct(fraction: float) -> float:
        rank = min(len(latencies) - 1, int(fraction * len(latencies)))
        return latencies[rank]

    cold_rps = 1.0 / cold_per_request
    return {
        "benchmark": "serve_load",
        "kernel": type(settings.spec).__name__,
        "grid": {
            "defenses": [d.label() for d in DEFENSES],
            "workloads": list(WORKLOADS),
            "benches": list(BENCHES),
            "cells": len(cells),
        },
        "load": {"threads": threads, "rounds": rounds},
        "cold_cli_seconds_per_request": round(cold_per_request, 4),
        "cold_cli_rps": round(cold_rps, 3),
        "cold_cli_sampled_cells": cold_sample,
        "server_first_pass_seconds": round(first_pass_seconds, 4),
        "warm_requests": total_requests,
        "warm_wall_seconds": round(wall, 4),
        "warm_rps": round(warm_rps, 1),
        "warm_p50_ms": round(pct(0.50), 3),
        "warm_p99_ms": round(pct(0.99), 3),
        "warm_vs_cold_speedup": round(warm_rps / cold_rps, 1),
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": True,
        "server_counters": dict(sorted(server_stats["counters"].items())),
        "server_endpoints": server_stats["endpoints"],
    }


def _check_and_write(
    record: Dict[str, Any],
    strict: Optional[bool] = None,
    report_path: Optional[str] = None,
) -> None:
    stamp(record, strict=strict)
    write_record(RECORD_PATH, record)
    print(f"\nserve load benchmark ({RECORD_PATH.name}):")
    print(json.dumps(record, indent=2))
    if report_path:
        Path(report_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {report_path}")
    assert record["warm_vs_cold_speedup"] >= record["min_speedup"], (
        f"warm server throughput only {record['warm_vs_cold_speedup']}x the "
        f"per-invocation cold path, bar {record['min_speedup']}x"
    )


def test_serve_load():
    fast = bool(os.environ.get("REPRO_BENCH_FAST"))
    _check_and_write(run_serve_bench(fast))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true")
    parser.add_argument(
        "--strict-git", action="store_true",
        help="refuse to record results from a dirty working tree",
    )
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--unix", help="target a running server (unix socket)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument(
        "-o", "--output", help="also write the record here (CI artifact)"
    )
    args = parser.parse_args(argv)
    record = run_serve_bench(
        args.fast,
        threads=args.threads,
        rounds=args.rounds,
        unix=args.unix,
        host=args.host,
        port=args.port,
    )
    _check_and_write(
        record, strict=args.strict_git or None, report_path=args.output
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
