"""Shared benchmark fixtures.

One :class:`EvalContext` per session: the kernel, profiling runs, built
variants and per-config measurements are cached, so each table's harness
only pays for the work unique to it.

Environment knobs:

- ``REPRO_BENCH_FAST=1`` — reduced scale (smaller kernel, fewer profiling
  iterations); the shapes still hold, absolute census numbers shrink.
- ``REPRO_BENCH_ENGINE=reference|compiled`` — execution engine (results
  are identical either way; the compiled engine is just faster).
- ``REPRO_BENCH_JOBS=N`` — worker processes for parallel measurement.
- ``REPRO_BENCH_CACHE=<dir>`` — persist profiles/measurements on disk so
  repeat benchmark sessions skip them (``1`` selects ``.repro-cache``;
  unset or ``0`` disables).
"""

import os

import pytest

from repro.engine.compiled import DEFAULT_ENGINE
from repro.evaluation.cache import CACHE_DIR_NAME
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.kernel.spec import SmallSpec


def _cache_dir():
    value = os.environ.get("REPRO_BENCH_CACHE", "")
    if value in ("", "0"):
        return None
    return CACHE_DIR_NAME if value == "1" else value


def _settings() -> EvalSettings:
    engine = os.environ.get("REPRO_BENCH_ENGINE", DEFAULT_ENGINE)
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    cache_dir = _cache_dir()
    if os.environ.get("REPRO_BENCH_FAST"):
        return EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
            engine=engine,
            jobs=jobs,
            cache_dir=cache_dir,
        )
    return EvalSettings(
        profile_iterations=3,
        profile_ops_scale=1.0,
        measure_ops_scale=0.5,
        engine=engine,
        jobs=jobs,
        cache_dir=cache_dir,
    )


@pytest.fixture(scope="session")
def eval_ctx() -> EvalContext:
    return EvalContext(_settings())


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FAST"))


def emit(result_table) -> None:
    """Print a rendered table (visible with ``pytest -s`` and in the
    captured section of failing runs)."""
    print()
    print(result_table.to_text())
    print()
