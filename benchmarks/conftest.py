"""Shared benchmark fixtures.

One :class:`EvalContext` per session: the kernel, profiling runs, built
variants and per-config measurements are cached, so each table's harness
only pays for the work unique to it.

Set ``REPRO_BENCH_FAST=1`` to run the whole benchmark suite at reduced
scale (smaller kernel, fewer profiling iterations) — the shapes still
hold; absolute census numbers shrink.
"""

import os

import pytest

from repro.evaluation.harness import EvalContext, EvalSettings
from repro.kernel.spec import SmallSpec


def _settings() -> EvalSettings:
    if os.environ.get("REPRO_BENCH_FAST"):
        return EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
        )
    return EvalSettings(
        profile_iterations=3,
        profile_ops_scale=1.0,
        measure_ops_scale=0.5,
    )


@pytest.fixture(scope="session")
def eval_ctx() -> EvalContext:
    return EvalContext(_settings())


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FAST"))


def emit(result_table) -> None:
    """Print a rendered table (visible with ``pytest -s`` and in the
    captured section of failing runs)."""
    print()
    print(result_table.to_text())
    print()
