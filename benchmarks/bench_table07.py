"""Table 7 — macrobenchmark throughput degradation (Nginx, Apache,
DBench) per transient-mitigation configuration, with and without PIBE.

Paper (all-defenses): Nginx -51.7% -> -6.0%, Apache -39.3% -> -7.9%,
DBench -45.6% -> -6.7%. In some configurations optimized fully-protected
kernels beat unoptimized retpolines-only ones.
"""

from conftest import emit

from repro.evaluation.tables import table7


def test_table07(benchmark, eval_ctx, fast_mode):
    result = benchmark.pedantic(
        table7,
        args=(eval_ctx,),
        kwargs={"batches": 10 if fast_mode else 30},
        rounds=1,
        iterations=1,
    )
    emit(result.table)

    for app in ("Nginx", "Apache", "DBench"):
        rows = result.degradations[app]
        unopt_all, pibe_all = rows["w/all-defenses"]
        # comprehensive defenses cost double-digit throughput unoptimized
        assert unopt_all < -0.15
        # PIBE recovers to single digits
        assert pibe_all > -0.10
        # retpolines-only costs less than all-defenses
        assert rows["w/retpolines"][0] > unopt_all

    # Nginx (kernel-bound) suffers more than Apache (userspace-heavy)
    assert (
        result.degradations["Nginx"]["w/all-defenses"][0]
        < result.degradations["Apache"]["w/all-defenses"][0]
    )
    # the paper's crossover: an optimized fully-protected kernel can beat
    # the unoptimized retpolines-only configuration
    assert (
        result.degradations["Nginx"]["w/all-defenses"][1]
        > result.degradations["Nginx"]["w/retpolines"][0]
    )
