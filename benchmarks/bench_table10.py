"""Table 10 — initial promotion/inlining candidates relative to the total
number of kernel indirect branches.

Paper: even the most aggressive budget touches only ~3% of the kernel's
20,927 indirect calls and ~7.5% of its ~133k returns — the algorithms are
aggressive about hot code, not about the kernel at large.
"""

from conftest import emit

from repro.evaluation.tables import table10


def test_table10(benchmark, eval_ctx, fast_mode):
    result = benchmark.pedantic(
        table10, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    budgets = sorted(result.stats)
    icp_fractions = [result.stats[b].icp_fraction for b in budgets]
    inline_fractions = [result.stats[b].inline_fraction for b in budgets]

    # candidates grow with budget but stay a minority of all branches
    assert icp_fractions == sorted(icp_fractions)
    limit = 0.6 if fast_mode else 0.25
    assert all(f < limit for f in icp_fractions)
    assert all(f < limit for f in inline_fractions)
    # the cold bulk dominates the censuses
    top = result.stats[budgets[-1]]
    assert top.total_icalls > 3 * top.icp_candidates
    assert top.total_returns > 3 * top.inline_candidates
