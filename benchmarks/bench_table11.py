"""Table 11 — forward edges protected vs vulnerable under all defenses.

Paper: 20,927 protected indirect calls and only 41 vulnerable ones (the
paravirt inline-assembly hypercalls) plus 5 vulnerable indirect jumps on
the unoptimized image; aggressive inlining *duplicates* the vulnerable
asm sites (41 -> 170 at the highest budget) while jump-table disabling
keeps indirect jumps at 5.
"""

from conftest import emit

from repro.evaluation.tables import table11


def test_table11(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table11, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    unopt = result.censuses["no opt"]
    budget_labels = [k for k in result.censuses if k != "no opt"]
    top = result.censuses[budget_labels[-1]]

    # vast majority protected; small fixed asm residue
    assert unopt.defended_icalls > 10 * unopt.vulnerable_icalls
    assert unopt.vulnerable_ijumps == 5
    # protected and vulnerable counts both grow through duplication
    assert top.defended_icalls > unopt.defended_icalls
    assert top.vulnerable_icalls > unopt.vulnerable_icalls
    # indirect jumps unaffected by the budget
    assert all(
        census.vulnerable_ijumps == 5
        for census in result.censuses.values()
    )
