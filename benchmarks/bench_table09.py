"""Table 9 — inlining weight not elided due to the size heuristics.

Paper: Rule 3 blocks ~4x more weight than Rule 2 (3.35-3.41% vs
0.7-0.96%), plus ~1.9% "other" (optnone callers / noinline callees);
together the heuristics block only a small slice of beneficial inlining.
"""

from conftest import emit

from repro.evaluation.tables import table9


def test_table09(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table9, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    for budget, report in result.reports.items():
        total = max(report.candidate_weight, 1)
        blocked_fraction = report.blocked_weight / total
        # the heuristics never block a large share of eligible weight
        assert blocked_fraction < 0.25, budget
        # Rule 3 is the stronger inhibitor (paper: ~4x Rule 2)
        assert report.blocked_rule3_weight >= report.blocked_rule2_weight
        # noinline asm primitives (memcpy/uaccess) show up as "other"
        assert report.blocked_other_weight > 0

    # greedy stability: weight blocked by Rule 3 changes little across
    # budgets (paper Section 8.6)
    fractions = [
        r.blocked_rule3_weight / max(r.candidate_weight, 1)
        for r in result.reports.values()
    ]
    assert max(fractions) - min(fractions) < 0.05
