"""Table 1 — overhead of control-flow-hijacking mitigations in clock ticks
per direct/indirect/virtual call, plus SPEC-like geometric-mean slowdown.

Paper reference (i7-8700, Clang 10):

    defense                dcall  icall  vcall  cpu2006
    LLVM-CFI                  2      3      1    -0.4%
    stackprotector            4      4      4     1.0%
    safestack                 2      1      1     0.6%
    LVI-CFI                  11     20     23    29.4%
    retpolines                1     21     21    16.1%
    retpolines + LVI-CFI     14     53     54    44.3%
    return retpolines        16     16     16    23.2%
    all defenses             32     73     71    62.0%
"""

from conftest import emit

from repro.evaluation.tables import table1


def test_table01(benchmark):
    result = benchmark.pedantic(
        table1,
        kwargs={"iterations": 1000, "spec_iterations": 30},
        rounds=1,
        iterations=1,
    )
    emit(result.table)

    ticks = result.ticks
    # transient-defense tick constants recover Table 1
    assert abs(ticks["retpolines"]["icall"] - 21) <= 1
    assert abs(ticks["return retpolines"]["dcall"] - 16) <= 1
    assert abs(ticks["LVI-CFI"]["dcall"] - 11) <= 1
    assert abs(ticks["LVI-CFI"]["icall"] - 20) <= 1
    assert ticks["all defenses"]["icall"] >= 60

    # classical defenses are cheap; transient ones are not (the paper's
    # justification for PIBE's focus)
    slow = result.spec_slowdowns
    assert slow["stackprotector"] < 0.08
    assert slow["LLVM-CFI"] < 0.05
    assert slow["retpolines"] > 0.08
    assert slow["all defenses"] > slow["LVI-CFI"] > 0.1
    assert slow["all defenses"] > 0.35
