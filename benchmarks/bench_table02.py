"""Table 2 — the two baselines: vanilla LTO vs PIBE's PGO-optimized kernel
(no defenses). Paper: geometric-mean overhead -6.6% (PGO alone speeds the
kernel up on most benches, with `null` roughly neutral).
"""

from conftest import emit

from repro.core.report import build_overhead_report
from repro.evaluation.tables import table2


def test_table02(benchmark, eval_ctx):
    result = benchmark.pedantic(
        table2, args=(eval_ctx,), rounds=1, iterations=1
    )
    emit(result.table)

    # paper: -6.6% geomean; we accept the same sign and magnitude band
    assert -0.20 < result.geomean < -0.02
    overheads = build_overhead_report(
        "t", result.lto, result.pibe
    ).overheads()
    # the null syscall barely changes (paper +3.4%)
    assert abs(overheads["null"]) < 0.10
    # most benches speed up
    speedups = sum(1 for v in overheads.values() if v < 0)
    assert speedups >= 14
