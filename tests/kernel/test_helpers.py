"""Kernel body-building helpers."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.kernel.helpers import Body, define, leaf, ops_table, table_dist


def test_define_registers_function():
    module = Module("m")
    body = define(module, "f", "fs", params=2, frame=64)
    body.work().done()
    func = module.get("f")
    assert func.subsystem == "fs"
    assert func.num_params == 2
    assert func.stack_frame_size == 64
    validate_module(module)


def test_leaf_with_attrs():
    module = Module("m")
    func = leaf(module, "l", "core", attrs=[FunctionAttr.NOINLINE])
    assert func.has_attr(FunctionAttr.NOINLINE)


def test_loop_executes_exact_trips():
    module = Module("m")
    body = define(module, "f", "x")
    body.loop(5, lambda b: b.work(arith=2, loads=0, stores=0))
    body.done()
    validate_module(module)
    rec = TraceRecorder()
    Interpreter(module, [rec]).run_function("f")
    assert sum(e[1] for e in rec.of_kind("mix")) == 10


def test_loop_requires_positive_trips():
    module = Module("m")
    body = define(module, "f", "x")
    with pytest.raises(ValueError):
        body.loop(0, lambda b: None)


def test_maybe_branches_probabilistically():
    module = Module("m")
    body = define(module, "f", "x")
    body.maybe(
        1.0,
        lambda b: b.work(arith=5, loads=0, stores=0),
        otherwise=lambda b: b.work(arith=1, loads=0, stores=0),
    )
    body.done()
    validate_module(module)
    rec = TraceRecorder()
    Interpreter(module, [rec]).run_function("f")
    assert sum(e[1] for e in rec.of_kind("mix")) == 5


def test_switch_requires_arms():
    module = Module("m")
    body = define(module, "f", "x")
    with pytest.raises(ValueError):
        body.switch([])


def test_switch_builds_cases_and_join():
    module = Module("m")
    body = define(module, "f", "x")
    body.switch([(1.0, lambda b: b.work()), (1.0, lambda b: b.work())])
    body.done()
    validate_module(module)
    func = module.get("f")
    switches = [
        i for i in func.instructions() if i.opcode == Opcode.SWITCH
    ]
    assert len(switches) == 1
    assert len(switches[0].targets) == 2


def test_ops_table_and_dist_validation():
    module = Module("m")
    leaf(module, "a", "x")
    leaf(module, "b", "x")
    ops_table(module, "ops", ["a", "b"])
    assert table_dist(module, "ops", {"a": 3}) == {"a": 3}
    with pytest.raises(KeyError):
        table_dist(module, "ops", {"ghost": 1})
