"""Synthetic kernel generation: determinism, structure, census shape."""

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.kernel.generator import build_kernel, kernel_stats
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec, SmallSpec


def test_small_kernel_validates(small_kernel):
    validate_module(small_kernel)


def test_generation_is_deterministic():
    spec = SmallSpec()
    a = kernel_stats(build_kernel(spec))
    b = kernel_stats(build_kernel(spec))
    assert a == b


def test_different_seeds_differ():
    a = kernel_stats(build_kernel(SmallSpec(seed=1)))
    b = kernel_stats(build_kernel(SmallSpec(seed=2)))
    assert a != b


def test_stats_census(small_kernel):
    stats = kernel_stats(small_kernel)
    assert stats.functions > 100
    assert stats.icall_sites > 20
    assert stats.ijump_sites == SmallSpec().num_asm_ijumps
    assert stats.syscalls >= 20
    assert stats.return_sites > stats.functions * 0.9


def test_expected_entry_points(small_kernel):
    for syscall in (
        "getppid",
        "read",
        "write",
        "open",
        "stat",
        "fstat",
        "select_file",
        "select_tcp",
        "pipe",
        "af_unix",
        "udp",
        "tcp",
        "tcp_conn",
        "fork_exit",
        "fork_exec",
        "fork_shell",
        "mmap",
        "page_fault",
        "sig_install",
        "sig_dispatch",
    ):
        assert syscall in small_kernel.syscalls, syscall


def test_every_syscall_executes(small_kernel):
    interp = Interpreter(small_kernel, seed=5)
    for syscall in small_kernel.syscalls:
        interp.run_syscall(syscall, times=2)


def test_paravirt_sites_are_asm(small_kernel):
    from repro.ir.types import ATTR_ASM_SITE

    pv = small_kernel.get("pv_irq_save")
    icalls = [i for i in pv.call_sites() if i.opcode == Opcode.ICALL]
    assert icalls
    assert all(i.attrs.get(ATTR_ASM_SITE) for i in icalls)
    # asm sites live in normal (inlinable) functions so budget growth
    # duplicates them (Table 11)
    assert pv.is_inlinable


def test_boot_functions_marked(small_kernel):
    boot = [
        f for f in small_kernel if f.has_attr(FunctionAttr.BOOT_ONLY)
    ]
    assert len(boot) >= SmallSpec().num_boot_functions


def test_cold_drivers_dominate_static_code(small_kernel):
    driver_functions = [
        f for f in small_kernel if f.subsystem == "drivers"
    ]
    # SmallSpec shrinks the driver bulk; the default spec has far more
    assert len(driver_functions) > len(small_kernel.functions) * 0.2


def test_asm_primitives_are_noinline(small_kernel):
    for name in ("copy_to_user", "copy_from_user", "memcpy_kernel"):
        assert not small_kernel.get(name).is_inlinable


def test_hot_path_touches_expected_subsystems(small_kernel):
    recorder = TraceRecorder()
    Interpreter(small_kernel, [recorder], seed=1).run_syscall("read", times=5)
    entered = {e[1] for e in recorder.of_kind("enter")}
    assert "sys_read" in entered
    assert "vfs_read" in entered
    assert any(name.startswith("security_") for name in entered)


def test_spec_frozen_dataclass():
    spec = KernelSpec()
    assert spec.seed == DEFAULT_SPEC.seed
    import dataclasses

    smaller = dataclasses.replace(spec, num_drivers=3)
    assert smaller.num_drivers == 3
    assert spec.num_drivers == DEFAULT_SPEC.num_drivers
