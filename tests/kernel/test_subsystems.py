"""Per-subsystem structural checks on the synthetic kernel."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.types import ATTR_TARGETS, Opcode


def _entered(small_kernel, syscall, times=5, seed=2):
    recorder = TraceRecorder()
    Interpreter(small_kernel, [recorder], seed=seed).run_syscall(
        syscall, times=times
    )
    return {e[1] for e in recorder.of_kind("enter")}


# -- VFS ---------------------------------------------------------------------


def test_vfs_read_dispatches_through_file_ops(small_kernel):
    table = small_kernel.fptr_tables["file_read_ops"]
    assert "pipe_read" in table
    assert "sock_read_iter" in table
    vfs_read = small_kernel.get("vfs_read")
    icalls = [i for i in vfs_read.call_sites() if i.opcode == Opcode.ICALL]
    assert len(icalls) == 1
    for target in icalls[0].attrs[ATTR_TARGETS]:
        assert target in table


def test_open_path_walks_components(small_kernel):
    entered = _entered(small_kernel, "open")
    assert "link_path_walk" in entered
    assert "walk_component" in entered
    assert "getname" in entered


# -- networking --------------------------------------------------------------


def test_tcp_send_descends_to_device_layer(small_kernel):
    # enough operations that sticky target selection cannot keep the
    # minority protocol locked for the whole run
    entered = _entered(small_kernel, "tcp", times=60, seed=4)
    assert "tcp_sendmsg" in entered
    assert "ip_queue_xmit" in entered
    assert "dev_queue_xmit" in entered


def test_select_tcp_polls_per_fd(small_kernel):
    recorder = TraceRecorder()
    Interpreter(small_kernel, [recorder], seed=2).run_syscall(
        "select_tcp", times=1
    )
    from repro.kernel.spec import SmallSpec

    polls = [
        e for e in recorder.of_kind("icall") if e[3].endswith("poll")
    ]
    # one file->poll dispatch per watched fd (plus nested proto polls)
    assert len(polls) >= SmallSpec().select_tcp_fds


# -- scheduler / processes ------------------------------------------------------


def test_fork_duplicates_address_space(small_kernel):
    entered = _entered(small_kernel, "fork_exit", times=2)
    for name in ("copy_process", "dup_mmap", "copy_one_vma", "__schedule"):
        assert name in entered, name


def test_schedule_is_noinline(small_kernel):
    assert not small_kernel.get("__schedule").is_inlinable


# -- security hooks --------------------------------------------------------------


def test_lsm_hooks_are_single_target_chains(small_kernel):
    hook = small_kernel.get("security_file_permission")
    icalls = [i for i in hook.call_sites() if i.opcode == Opcode.ICALL]
    from repro.kernel.spec import SmallSpec

    assert len(icalls) == SmallSpec().lsm_modules
    for icall in icalls:
        assert len(icall.attrs[ATTR_TARGETS]) == 1


# -- block / workqueue -------------------------------------------------------------


def test_block_layer_census_present(small_kernel):
    for table in ("bio_end_io_ops", "elevator_insert_ops", "blk_mq_queue_rq_ops"):
        assert table in small_kernel.fptr_tables, table
    submit = small_kernel.get("blk_mq_submit_bio")
    icalls = [i for i in submit.call_sites() if i.opcode == Opcode.ICALL]
    assert len(icalls) == 2


def test_workqueue_dispatch_is_indirect(small_kernel):
    worker = small_kernel.get("process_one_work")
    icalls = [i for i in worker.call_sites() if i.opcode == Opcode.ICALL]
    assert len(icalls) == 1
    assert "wb_workfn" in icalls[0].attrs[ATTR_TARGETS]


def test_epoll_polls_through_file_ops(small_kernel):
    ep = small_kernel.get("ep_item_poll")
    icalls = [i for i in ep.call_sites() if i.opcode == Opcode.ICALL]
    assert icalls
    table = small_kernel.fptr_tables["file_poll_ops"]
    for target in icalls[0].attrs[ATTR_TARGETS]:
        assert target in table


def test_block_layer_cold_under_latency_workloads(small_kernel):
    """The latency suite runs on cached paths: the block layer stays
    (almost) cold, contributing census mass but not cycles."""
    recorder = TraceRecorder()
    interp = Interpreter(small_kernel, [recorder], seed=2)
    for syscall in ("read", "open", "stat", "pipe"):
        interp.run_syscall(syscall, times=10)
    entered = {e[1] for e in recorder.of_kind("enter")}
    assert "blk_mq_submit_bio" not in entered


# -- timers -------------------------------------------------------------------------


def test_tcp_connect_arms_a_timer(small_kernel):
    entered = _entered(small_kernel, "tcp_conn", times=40, seed=4)
    assert "tcp_v4_connect" in entered
    assert "mod_timer" in entered
