"""KernelProfiler: trace events -> edge profile."""

from repro.engine.interpreter import Interpreter
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.profiling.profiler import KernelProfiler


def _module():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    module.add_function(build_leaf("alt"))
    func = Function("f")
    b = IRBuilder(func)
    call = b.call("leaf")
    icall = b.icall({"leaf": 1, "alt": 1})
    b.ret()
    module.add_function(func)
    return module, call, icall


def test_profiler_counts_edges():
    module, call, icall = _module()
    profiler = KernelProfiler(workload="t")
    Interpreter(module, [profiler], seed=2).run_function("f", times=100)
    profile = profiler.finish()
    assert profile.direct[call.site_id] == 100
    assert profile.indirect_site_weight(icall.site_id) == 100
    assert set(profile.indirect[icall.site_id]) <= {"leaf", "alt"}


def test_profiler_counts_invocations():
    module, _, _ = _module()
    profiler = KernelProfiler()
    Interpreter(module, [profiler], seed=2).run_function("f", times=50)
    profile = profiler.finish()
    assert profile.invocations["f"] == 50
    # leaf entered via the direct call plus some icall resolutions
    assert profile.invocations["leaf"] >= 50


def test_finish_marks_one_run_and_flushes():
    module, call, _ = _module()
    profiler = KernelProfiler(lbr_capacity=1024)  # never fills mid-run
    Interpreter(module, [profiler], seed=2).run_function("f", times=3)
    profile = profiler.finish()
    assert profile.runs == 1
    assert profile.direct[call.site_id] == 3


def test_counts_identical_across_lbr_capacities():
    module, call, icall = _module()
    results = []
    for capacity in (2, 32, 4096):
        profiler = KernelProfiler(lbr_capacity=capacity)
        Interpreter(module, [profiler], seed=7).run_function("f", times=80)
        profile = profiler.finish()
        results.append(
            (profile.direct[call.site_id], profile.indirect_site_weight(icall.site_id))
        )
    assert results[0] == results[1] == results[2] == (80, 80)
