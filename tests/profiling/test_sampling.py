"""Sampling (AutoFDO-style) profiler."""

import pytest

from repro.analysis.robustness import icp_candidates, inline_candidates
from repro.engine.interpreter import Interpreter
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.profiling.profiler import KernelProfiler
from repro.profiling.sampling import SamplingProfiler


def _module():
    module = Module("m")
    module.add_function(build_leaf("hot"))
    module.add_function(build_leaf("alt"))
    func = Function("f")
    b = IRBuilder(func)
    call = b.call("hot")
    icall = b.icall({"hot": 3, "alt": 1})
    b.ret()
    module.add_function(func)
    return module, call, icall


def test_rate_validation():
    with pytest.raises(ValueError):
        SamplingProfiler(rate=0)


def test_rate_one_is_exact():
    module, call, icall = _module()
    sampler = SamplingProfiler(rate=1)
    Interpreter(module, [sampler], seed=3).run_function("f", times=50)
    profile = sampler.finish()
    assert profile.direct[call.site_id] == 50
    assert profile.indirect_site_weight(icall.site_id) == 50
    assert sampler.sampling_fraction == 1.0


def test_sampled_counts_scale_to_roughly_exact():
    module, call, icall = _module()
    sampler = SamplingProfiler(rate=8)
    Interpreter(module, [sampler], seed=3).run_function("f", times=400)
    profile = sampler.finish()
    # 400 calls sampled at 1/8 (Bernoulli), scaled x8 -> ~400
    assert 250 <= profile.direct[call.site_id] <= 550
    assert sampler.sampling_fraction == pytest.approx(1 / 8, abs=0.04)


def test_invocation_counts_stay_exact():
    module, _, _ = _module()
    sampler = SamplingProfiler(rate=64)
    Interpreter(module, [sampler], seed=3).run_function("f", times=30)
    profile = sampler.finish()
    assert profile.invocations["f"] == 30


def test_sampled_profile_steers_like_exact_profile(small_kernel):
    """Hot-candidate sets from exact and sampled profiles overlap heavily
    — PIBE only needs relative weights (the AutoFDO motivation)."""
    from repro.workloads.lmbench import lmbench_workload

    exact = KernelProfiler()
    sampled = SamplingProfiler(rate=16)
    interp = Interpreter(small_kernel, [exact, sampled], seed=5)
    workload = lmbench_workload(ops_scale=0.05)
    for bench, ops in workload.components:
        bench.run(interp, ops=ops)
    exact_profile = exact.finish()
    sampled_profile = sampled.finish()

    exact_inline = inline_candidates(exact_profile, 0.99)
    sampled_inline = inline_candidates(sampled_profile, 0.99)
    assert exact_inline and sampled_inline
    weights = {s: exact_profile.direct.get(s, 0) for s in exact_inline}
    shared_weight = sum(
        w for s, w in weights.items() if s in sampled_inline
    )
    assert shared_weight / max(sum(weights.values()), 1) > 0.6

    exact_icp = icp_candidates(exact_profile, 0.99)
    sampled_icp = icp_candidates(sampled_profile, 0.99)
    assert len(exact_icp & sampled_icp) / max(len(exact_icp), 1) > 0.5
