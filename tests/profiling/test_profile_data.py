"""EdgeProfile recording, merging, queries, serialization."""

import pytest

from repro.profiling.profile_data import EdgeProfile


def _sample():
    p = EdgeProfile(workload="w")
    p.record_direct(1, 10)
    p.record_direct(2, 5)
    p.record_indirect(3, "a", 7)
    p.record_indirect(3, "b", 3)
    p.record_indirect(4, "c", 1)
    p.record_invocation("f", 15)
    p.runs = 1
    return p


def test_weights():
    p = _sample()
    assert p.direct_weight(1) == 10
    assert p.direct_weight(99) == 0
    assert p.indirect_site_weight(3) == 10
    assert p.total_direct_weight() == 15
    assert p.total_indirect_weight() == 11
    assert p.total_weight() == 26


def test_value_profile_sorted_hottest_first():
    p = _sample()
    assert p.value_profile(3) == [("a", 7), ("b", 3)]
    assert p.value_profile(99) == []


def test_value_profile_ties_break_by_name():
    p = EdgeProfile()
    p.record_indirect(1, "z", 5)
    p.record_indirect(1, "a", 5)
    assert p.value_profile(1) == [("a", 5), ("z", 5)]


def test_hottest_orderings():
    p = _sample()
    assert p.hottest_direct() == [(1, 10), (2, 5)]
    assert p.hottest_indirect() == [(3, 10), (4, 1)]


def test_merge_accumulates():
    a = _sample()
    b = _sample()
    a.merge(b)
    assert a.direct_weight(1) == 20
    assert a.indirect_site_weight(3) == 20
    assert a.invocations["f"] == 30
    assert a.runs == 2


def test_merge_empty_counts_as_a_run():
    a = _sample()
    a.merge(EdgeProfile())
    assert a.runs == 2


def test_serialization_roundtrip():
    p = _sample()
    restored = EdgeProfile.from_json(p.to_json())
    assert restored.workload == "w"
    assert restored.direct == p.direct
    assert dict(restored.indirect[3]) == dict(p.indirect[3])
    assert restored.invocations == p.invocations
    assert restored.runs == p.runs


def test_from_dict_coerces_types():
    restored = EdgeProfile.from_dict(
        {"direct": {"7": "3"}, "indirect": {"8": {"t": "2"}}, "runs": "1"}
    )
    assert restored.direct[7] == 3
    assert restored.indirect[8]["t"] == 2
    assert restored.runs == 1
