"""Profile lifting: counts and value profiles onto IR call sites."""

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import ATTR_EDGE_COUNT, ATTR_VALUE_PROFILE
from repro.profiling.lifting import (
    clear_profile_metadata,
    lift_profile,
    provenance_chain,
)
from repro.profiling.profile_data import EdgeProfile


def _module():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    module.add_function(build_leaf("alt"))
    func = Function("f")
    b = IRBuilder(func)
    call = b.call("leaf")
    icall = b.icall({"leaf": 1, "alt": 1})
    b.ret()
    module.add_function(func)
    return module, call, icall


def test_lift_attaches_metadata():
    module, call, icall = _module()
    profile = EdgeProfile()
    profile.record_direct(call.site_id, 42)
    profile.record_indirect(icall.site_id, "leaf", 30)
    profile.record_indirect(icall.site_id, "alt", 12)
    report = lift_profile(module, profile)
    assert report.direct_annotated == 1
    assert report.indirect_annotated == 1
    assert call.attrs[ATTR_EDGE_COUNT] == 42
    assert icall.attrs[ATTR_VALUE_PROFILE] == [("leaf", 30), ("alt", 12)]


def test_lift_skips_stale_sites():
    module, call, _ = _module()
    profile = EdgeProfile()
    profile.record_direct(999_999, 7)  # site no longer exists
    profile.record_indirect(888_888, "leaf", 3)
    report = lift_profile(module, profile)
    assert report.stale_direct == 1
    assert report.stale_indirect == 1
    assert ATTR_EDGE_COUNT not in call.attrs


def test_lift_ignores_kind_mismatch():
    module, call, icall = _module()
    profile = EdgeProfile()
    # direct count recorded against an indirect site id and vice versa
    profile.record_direct(icall.site_id, 5)
    profile.record_indirect(call.site_id, "leaf", 5)
    report = lift_profile(module, profile)
    assert report.direct_annotated == 0
    assert report.indirect_annotated == 0
    assert report.stale_direct == 1
    assert report.stale_indirect == 1


def test_clear_profile_metadata():
    module, call, icall = _module()
    profile = EdgeProfile()
    profile.record_direct(call.site_id, 1)
    profile.record_indirect(icall.site_id, "leaf", 1)
    lift_profile(module, profile)
    touched = clear_profile_metadata(module)
    assert touched == 2
    assert ATTR_EDGE_COUNT not in call.attrs
    assert ATTR_VALUE_PROFILE not in icall.attrs


def test_provenance_chain():
    module, call, _ = _module()
    clone = call.clone()
    chain = provenance_chain(clone)
    assert chain == [clone.site_id, call.site_id]
    assert provenance_chain(call) == [call.site_id]
