"""LBR ring-buffer model."""

import pytest

from repro.profiling.lbr import BranchRecord, LBRBuffer


def _record(i, target="f", indirect=False):
    return BranchRecord(i, target, indirect)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LBRBuffer(capacity=0)


def test_drain_callback_fires_when_full():
    batches = []
    buf = LBRBuffer(capacity=4, on_drain=batches.append)
    for i in range(10):
        buf.push(_record(i))
    assert len(batches) == 2
    assert [r.site_id for r in batches[0]] == [0, 1, 2, 3]
    assert len(buf) == 2  # 8, 9 still buffered


def test_explicit_drain_flushes_remainder():
    batches = []
    buf = LBRBuffer(capacity=4, on_drain=batches.append)
    for i in range(6):
        buf.push(_record(i))
    remainder = buf.drain()
    assert [r.site_id for r in remainder] == [4, 5]
    assert len(buf) == 0
    assert len(batches) == 2  # full-ring batch + explicit drain delivery


def test_overflow_drop_mode_loses_oldest():
    buf = LBRBuffer(capacity=3, drop_on_overflow=True)
    for i in range(5):
        buf.push(_record(i))
    remaining = [r.site_id for r in buf.drain()]
    assert remaining == [2, 3, 4]
    assert buf.records_dropped == 2
    assert buf.records_seen == 5


def test_without_callback_or_drop_buffer_grows():
    buf = LBRBuffer(capacity=2)
    for i in range(5):
        buf.push(_record(i))
    assert len(buf) == 5


def test_drain_empty_returns_empty():
    buf = LBRBuffer(capacity=4, on_drain=lambda b: None)
    assert buf.drain() == []
