"""Trace-driven cycle model behaviour."""

import dataclasses

import pytest

from repro.cpu.costs import DEFAULT_COSTS
from repro.cpu.timing import TimingModel, function_footprint_bytes
from repro.engine.interpreter import Interpreter
from repro.hardening.defenses import Defense, DefenseConfig, NonTransientDefense
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module

NO_ENTRY = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)


def _module(icall_targets=None):
    module = Module("m")
    module.add_function(build_leaf("leaf", work=2, loads=0, stores=0))
    func = Function("f")
    b = IRBuilder(func)
    b.arith(2)
    b.call("leaf", num_args=0)
    if icall_targets:
        b.icall(icall_targets)
    b.ret()
    module.add_function(func)
    return module


def _cycles(module, times=1, seed=0, costs=NO_ENTRY, icache=False):
    timing = TimingModel(module, costs=costs, model_icache=icache)
    Interpreter(module, [timing], seed=seed).run_function("f", times=times)
    return timing


def test_straight_line_cost_accounting():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(3)
    b.load(2)
    b.store(1)
    b.cmp()
    b.ret()
    module.add_function(func)
    timing = _cycles(module)
    c = NO_ENTRY
    expected = 3 * c.arith + 2 * c.load + 1 * c.store + c.cmp + c.ret
    assert timing.cycles == pytest.approx(expected)


def test_kernel_entry_charged_per_operation():
    module = _module()
    with_entry = TimingModel(module, costs=DEFAULT_COSTS, model_icache=False)
    Interpreter(module, [with_entry], seed=0).run_function("f", times=10)
    without = _cycles(module, times=10)
    delta = with_entry.cycles - without.cycles
    assert delta == pytest.approx(10 * DEFAULT_COSTS.kernel_entry)


def test_defended_ret_costs_flat_extra():
    plain = _module()
    hardened = _module()
    HardeningPass(DefenseConfig.ret_retpolines_only()).run(hardened)
    base = _cycles(plain, times=10).cycles
    defended = _cycles(hardened, times=10).cycles
    # 2 rets per run (f + leaf), 16 extra cycles each
    assert defended - base == pytest.approx(10 * 2 * 16.0)


def test_defended_icall_skips_btb():
    plain = _module(icall_targets={"leaf": 1})
    hardened = _module(icall_targets={"leaf": 1})
    HardeningPass(DefenseConfig.retpolines_only()).run(hardened)
    t_plain = _cycles(plain, times=50)
    t_hard = _cycles(hardened, times=50)
    assert t_hard.counters["defended_icalls"] == 50
    assert t_plain.btb.accesses == 50
    assert t_hard.btb.accesses == 0


def test_btb_miss_penalty_on_cold_icall():
    module = _module(icall_targets={"leaf": 1})
    timing = _cycles(module, times=3)
    # one cold miss, then hits
    assert timing.btb.misses == 1
    assert timing.btb.hits == 2


def test_rsb_stays_synced_for_defended_rets():
    module = _module()
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    timing = _cycles(module, times=5)
    assert timing.rsb.misses == 0  # silent pops keep alignment


def test_nontransient_ambient_costs():
    plain = _module()
    hardened = _module()
    HardeningPass(
        DefenseConfig(
            nontransient=frozenset({NonTransientDefense.STACKPROTECTOR})
        )
    ).run(hardened)
    base = _cycles(plain, times=10).cycles
    protected = _cycles(hardened, times=10).cycles
    # one direct call per run, +4 ticks each
    assert protected - base == pytest.approx(10 * 4.0)


def test_vcall_extra_load_charged():
    module = Module("m")
    module.add_function(build_leaf("leaf", work=1, loads=0, stores=0))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"leaf": 1}, vcall=True)
    b.ret()
    module.add_function(func)
    v = _cycles(module, times=10).cycles

    module2 = Module("m2")
    module2.add_function(build_leaf("leaf", work=1, loads=0, stores=0))
    func2 = Function("f")
    b = IRBuilder(func2)
    b.icall({"leaf": 1}, vcall=False)
    b.ret()
    module2.add_function(func2)
    plain = _cycles(module2, times=10).cycles
    assert v - plain == pytest.approx(10 * NO_ENTRY.vcall_extra_load)


def test_footprint_includes_defense_expansion():
    module = _module()
    func = module.get("f")
    before = function_footprint_bytes(func)
    ret = func.returns()[0]
    ret.defense = Defense.RET_RETPOLINE.value
    after = function_footprint_bytes(func)
    assert after == before + 5 * 5  # 5 expansion units


def test_icache_charges_on_function_entry():
    module = _module()
    with_icache = _cycles(module, times=5, icache=True)
    without = _cycles(module, times=5, icache=False)
    assert with_icache.cycles > without.cycles
    assert with_icache.icache is not None
    assert with_icache.icache.misses >= 2  # f and leaf cold entries


def test_counters_track_event_kinds():
    module = _module(icall_targets={"leaf": 1})
    timing = _cycles(module, times=7)
    assert timing.counters["calls"] == 7
    assert timing.counters["icalls"] == 7
    assert timing.counters["rets"] == 21  # f + leaf(direct) + leaf(icall)
    assert timing.ops == 7
    assert timing.cycles_per_op == timing.cycles / 7


def test_defense_cycles_accounting():
    from repro.hardening.defenses import Defense

    module = _module(icall_targets={"leaf": 1})
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    timing = _cycles(module, times=10)
    charged = timing.defense_cycles_charged
    # 3 rets/run at the combined cost, 1 icall/run at the fenced cost
    assert charged[Defense.RET_RETPOLINE_LVI.value] == pytest.approx(
        10 * 3 * 30.0
    )
    assert charged[Defense.FENCED_RETPOLINE.value] == pytest.approx(
        10 * 40.0
    )
    assert timing.total_defense_cycles == pytest.approx(10 * (90 + 40))


def test_unprotected_run_charges_no_defense_cycles():
    timing = _cycles(_module(), times=5)
    assert timing.defense_cycles_charged == {}
    assert timing.total_defense_cycles == 0.0
