"""Return Stack Buffer model."""

import pytest

from repro.cpu.rsb import RSB


def test_requires_positive_capacity():
    with pytest.raises(ValueError):
        RSB(capacity=0)


def test_balanced_call_ret_predicts():
    rsb = RSB()
    rsb.push(1)
    rsb.push(2)
    assert rsb.pop_predict(2) is True
    assert rsb.pop_predict(1) is True
    assert rsb.misses == 0


def test_underflow_mispredicts():
    rsb = RSB()
    assert rsb.pop_predict(1) is False
    assert rsb.underflows == 1


def test_overflow_drops_oldest_and_causes_outer_misses():
    rsb = RSB(capacity=4)
    for token in range(6):
        rsb.push(token)
    assert rsb.overflow_drops == 2
    # inner 4 returns predict correctly...
    for token in (5, 4, 3, 2):
        assert rsb.pop_predict(token) is True
    # ...the two outermost were dropped
    assert rsb.pop_predict(1) is False
    assert rsb.pop_predict(0) is False


def test_poison_plants_attacker_entry():
    rsb = RSB()
    rsb.push(1)
    rsb.poison(-99)
    assert rsb.peek() == -99
    assert rsb.pop_predict(1) is False  # victim consumes the plant


def test_refill_overwrites_everything():
    rsb = RSB(capacity=4)
    rsb.poison(-99)
    rsb.refill(filler_token=0)
    assert rsb.depth == 4
    assert rsb.peek() == 0


def test_pop_silent_does_not_score():
    rsb = RSB()
    rsb.push(7)
    assert rsb.pop_silent() == 7
    assert rsb.pop_silent() is None
    assert rsb.hits == 0 and rsb.misses == 0


def test_flush():
    rsb = RSB()
    rsb.push(1)
    rsb.flush()
    assert rsb.depth == 0
