"""Memory Order Buffer: forwarding and LVI injection."""

from repro.cpu.mob import MOB


def test_store_to_load_forwarding():
    mob = MOB()
    mob.store(0x10, "value")
    result = mob.load(0x10, architectural_value="value")
    assert result.value == "value"
    assert not result.transient
    assert mob.forwards == 1


def test_faulting_load_consumes_injected_value():
    mob = MOB()
    mob.plant(0x10, "attacker")
    result = mob.load(0x10, architectural_value="legit", faulting=True)
    assert result.transient
    assert result.value == "attacker"
    assert mob.injections == 1


def test_fence_blocks_injection():
    mob = MOB()
    mob.plant(0x10, "attacker")
    result = mob.load(
        0x10, architectural_value="legit", faulting=True, fenced=True
    )
    assert not result.transient
    assert result.value == "legit"


def test_non_faulting_load_is_architectural():
    mob = MOB()
    result = mob.load(0x20, architectural_value="legit")
    assert result.value == "legit"
    assert not result.transient


def test_capacity_eviction():
    mob = MOB(capacity=2)
    mob.store(1, "a")
    mob.store(2, "b")
    mob.store(3, "c")  # evicts address 1
    assert mob.load(1, architectural_value="arch").value == "arch"
    assert mob.load(3, architectural_value="arch").value == "c"
