"""Pattern History Table two-bit counters."""

import pytest

from repro.cpu.pht import PHT


def test_requires_positive_size():
    with pytest.raises(ValueError):
        PHT(num_entries=0)


def test_learns_biased_branch():
    pht = PHT()
    for _ in range(4):
        pht.access(5, taken=True)
    assert pht.predict(5) is True
    assert pht.access(5, taken=True) is True


def test_two_bit_hysteresis():
    pht = PHT()
    for _ in range(4):
        pht.access(5, taken=True)  # saturate STRONG_TAKEN
    # a single not-taken flips to WEAK_TAKEN, still predicting taken
    pht.access(5, taken=False)
    assert pht.predict(5) is True
    pht.access(5, taken=False)
    assert pht.predict(5) is False


def test_poison_saturates_direction():
    pht = PHT()
    for _ in range(4):
        pht.access(5, taken=False)
    pht.poison(5, direction=True)
    assert pht.predict(5) is True


def test_hit_miss_counters():
    pht = PHT()
    pht.access(1, taken=True)   # default WEAK_TAKEN predicts taken: hit
    pht.access(1, taken=False)  # now strongly taken-ish: miss
    assert pht.hits == 1
    assert pht.misses == 1
