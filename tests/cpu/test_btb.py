"""Branch Target Buffer model."""

import pytest

from repro.cpu.btb import BTB


def test_requires_positive_size():
    with pytest.raises(ValueError):
        BTB(num_entries=0)


def test_cold_miss_then_hit():
    btb = BTB()
    assert btb.access(10, "f") is False  # cold
    assert btb.access(10, "f") is True   # trained
    assert btb.hits == 1 and btb.misses == 1


def test_target_change_mispredicts_once():
    btb = BTB()
    btb.access(10, "f")
    btb.access(10, "f")
    assert btb.access(10, "g") is False
    assert btb.access(10, "g") is True


def test_aliasing_between_sites():
    btb = BTB(num_entries=8)
    btb.access(1, "f")
    # site 9 aliases to slot 1 and evicts the prediction
    assert btb.access(9, "g") is False
    assert btb.access(1, "f") is False  # poisoned by the alias
    assert btb.predict(9) == "f"


def test_poisoning_installs_attacker_target():
    btb = BTB()
    btb.access(10, "victim_target")
    btb.poison(10, "gadget")
    assert btb.predict(10) == "gadget"
    # victim's next run consumes the poisoned entry (a mispredict)
    assert btb.access(10, "victim_target") is False


def test_flush_clears_predictions():
    btb = BTB()
    btb.access(10, "f")
    btb.flush()
    assert btb.predict(10) is None


def test_access_counter():
    btb = BTB()
    for i in range(5):
        btb.access(i, "f")
    assert btb.accesses == 5
