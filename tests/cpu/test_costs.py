"""Cost-model constants and lookups."""

import pytest

from repro.cpu.costs import DEFAULT_COSTS, NONTRANSIENT_COSTS, CostModel
from repro.hardening.defenses import Defense, NonTransientDefense


def test_table1_defense_constants():
    c = DEFAULT_COSTS
    assert c.defense_cost(Defense.RETPOLINE.value) == 21.0
    assert c.defense_cost(Defense.RET_RETPOLINE.value) == 16.0
    assert c.defense_cost(Defense.LVI_CFI_RET.value) == 11.0
    assert c.defense_cost(Defense.LVI_CFI_FWD.value) == 9.0
    # combined lowerings cost more than either component alone
    assert c.defense_cost(Defense.FENCED_RETPOLINE.value) > c.defense_cost(
        Defense.RETPOLINE.value
    )
    assert c.defense_cost(
        Defense.RET_RETPOLINE_LVI.value
    ) > c.defense_cost(Defense.RET_RETPOLINE.value)


def test_unknown_defense_tag_raises():
    with pytest.raises(KeyError, match="unknown defense tag"):
        DEFAULT_COSTS.defense_cost("bogus")


def test_nontransient_costs_match_table1():
    c = DEFAULT_COSTS
    assert c.nontransient_cost(NonTransientDefense.LLVM_CFI, "icall") == 3.0
    assert (
        c.nontransient_cost(NonTransientDefense.STACKPROTECTOR, "dcall") == 4.0
    )
    assert c.nontransient_cost(NonTransientDefense.SAFESTACK, "vcall") == 1.0
    assert set(NONTRANSIENT_COSTS) == set(NonTransientDefense)


def test_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.call = 99.0


def test_custom_model_overrides():
    import dataclasses

    model = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)
    assert model.kernel_entry == 0.0
    assert model.call == DEFAULT_COSTS.call
