"""Transient attack simulations against hardened and vanilla images."""

from repro.cpu.attacks import (
    ALL_ATTACKS,
    ATTACKER_GADGET,
    LVIAttack,
    Ret2specAttack,
    SpectreV2Attack,
    attack_surface,
)
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr


def _module(harden=None, asm_icall=False, boot=False):
    module = Module("m")
    module.add_function(build_leaf("t"))
    attrs = {FunctionAttr.BOOT_ONLY} if boot else None
    func = Function("victim", attrs=attrs)
    b = IRBuilder(func)
    b.icall({"t": 1}, asm=asm_icall)
    b.ret()
    module.add_function(func)
    if harden is not None:
        HardeningPass(harden).run(module)
    return module


def test_spectre_v2_succeeds_on_vanilla():
    module = _module()
    attack = SpectreV2Attack()
    sites = attack.hijackable_sites(module)
    assert len(sites) == 1
    func, inst = sites[0]
    outcome = attack.attempt(module, func, inst)
    assert outcome.success
    assert outcome.speculative_target == ATTACKER_GADGET


def test_spectre_v2_defeated_by_retpolines():
    module = _module(harden=DefenseConfig.retpolines_only())
    attack = SpectreV2Attack()
    assert attack.hijackable_sites(module) == []
    func = module.get("victim")
    icall = next(i for i in func.call_sites())
    outcome = attack.attempt(module, "victim", icall)
    assert not outcome.success
    assert "capture loop" in outcome.detail


def test_lvi_forward_thunk_still_v2_vulnerable():
    # the paper: LVI-CFI introduces an indirect jump that the BTB predicts
    module = _module(harden=DefenseConfig.lvi_only())
    assert len(SpectreV2Attack().hijackable_sites(module)) == 1
    assert LVIAttack().hijackable_sites(module) == []


def test_ret2spec_on_vanilla_and_defended():
    vanilla = _module()
    attack = Ret2specAttack()
    sites = attack.hijackable_sites(vanilla)
    assert len(sites) == 2  # both functions' rets
    outcome = attack.attempt(vanilla, *sites[0])
    assert outcome.success

    defended = _module(harden=DefenseConfig.ret_retpolines_only())
    assert attack.hijackable_sites(defended) == []


def test_ret2spec_rsb_refill_does_not_stop_in_context_pollution():
    vanilla = _module()
    attack = Ret2specAttack()
    func, inst = attack.hijackable_sites(vanilla)[0]
    outcome = attack.attempt(vanilla, func, inst, rsb_refilled=True)
    # refilling happens at context switch; the speculative plant lands after
    assert outcome.success


def test_lvi_attack_and_fences():
    vanilla = _module()
    attack = LVIAttack()
    sites = attack.hijackable_sites(vanilla)
    assert len(sites) == 3  # icall + 2 rets
    assert attack.attempt(vanilla, *sites[0]).success

    defended = _module(harden=DefenseConfig.all_defenses())
    assert attack.hijackable_sites(defended) == []
    func = defended.get("victim")
    icall = next(i for i in func.call_sites())
    outcome = attack.attempt(defended, "victim", icall)
    assert not outcome.success
    assert "LFENCE" in outcome.detail


def test_asm_icall_remains_hijackable_under_all_defenses():
    module = _module(harden=DefenseConfig.all_defenses(), asm_icall=True)
    assert len(SpectreV2Attack().hijackable_sites(module)) == 1
    assert len(LVIAttack().hijackable_sites(module)) == 1


def test_boot_only_code_exempt_from_census():
    module = _module(boot=True)
    assert SpectreV2Attack().hijackable_sites(module) == []


def test_attack_surface_summary():
    vanilla = _module()
    surface = attack_surface(vanilla)
    assert surface == {"spectre_v2": 1, "ret2spec": 2, "lvi": 3}
    hardened = _module(harden=DefenseConfig.all_defenses())
    assert attack_surface(hardened) == {
        "spectre_v2": 0,
        "ret2spec": 0,
        "lvi": 0,
    }
    assert {a.vector for a in ALL_ATTACKS} == set(surface)
