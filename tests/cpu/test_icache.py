"""Instruction-cache LRU model."""

import pytest

from repro.cpu.icache import ICache


def _cache(footprints, **kw):
    return ICache(footprint_of=lambda name: footprints[name], **kw)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        _cache({}, capacity_bytes=0)


def test_first_entry_misses_then_hits():
    cache = _cache({"f": 512})
    assert cache.enter("f") > 0
    assert cache.enter("f") == 0.0
    assert cache.hits == 1 and cache.misses == 1


def test_miss_cost_scales_with_footprint_up_to_cap():
    cache = _cache(
        {"small": 64, "big": 64 * 40, "huge": 64 * 1000},
        miss_base=10.0,
        miss_per_line=1.0,
        max_lines_charged=48,
    )
    small = cache.enter("small")
    cache.invalidate()
    big = cache.enter("big")
    cache.invalidate()
    huge = cache.enter("huge")
    assert small < big
    # charge capped: one invocation touches at most its executed path
    assert huge <= 10.0 + 48.0


def test_capacity_pressure_evicts_lru():
    cache = _cache(
        {"a": 512, "b": 512, "c": 512}, capacity_bytes=1024
    )
    cache.enter("a")
    cache.enter("b")
    cache.enter("c")  # evicts a
    assert cache.evictions >= 1
    assert cache.enter("b") == 0.0  # still resident (recently used)
    assert cache.enter("a") > 0.0   # was evicted


def test_working_set_that_fits_stops_missing():
    cache = _cache({f"f{i}": 256 for i in range(8)}, capacity_bytes=4096)
    for _ in range(5):
        for i in range(8):
            cache.enter(f"f{i}")
    assert cache.misses == 8  # only the cold pass
    assert cache.miss_rate() == pytest.approx(8 / 40)


def test_thrashing_working_set_keeps_missing():
    cache = _cache({f"f{i}": 600 for i in range(8)}, capacity_bytes=1024)
    for _ in range(3):
        for i in range(8):
            cache.enter(f"f{i}")
    assert cache.miss_rate() == 1.0


def test_oversized_function_clamped_to_capacity():
    cache = _cache({"mega": 10**6}, capacity_bytes=4096)
    cache.enter("mega")
    assert cache.resident_bytes <= 4096


def test_invalidate_resets_residency():
    cache = _cache({"f": 128})
    cache.enter("f")
    cache.invalidate()
    assert cache.enter("f") > 0
