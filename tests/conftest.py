"""Shared fixtures: a small kernel, its profile, and pipeline artifacts.

Session-scoped where safe (treated as read-only by tests) so the suite
stays fast; tests that mutate modules build their own copies.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.hardening.defenses import DefenseConfig
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import lmbench_workload


@pytest.fixture(scope="session")
def small_kernel():
    """A reduced synthetic kernel (read-only; copy before mutating)."""
    return build_kernel(SmallSpec())


@pytest.fixture(scope="session")
def small_pipeline(small_kernel):
    return PibePipeline(small_kernel)


@pytest.fixture(scope="session")
def small_profile(small_pipeline):
    """LMBench profile of the small kernel (1 quick iteration)."""
    return small_pipeline.profile(
        lmbench_workload(ops_scale=0.02), iterations=1
    )


@pytest.fixture(scope="session")
def hardened_build(small_pipeline, small_profile):
    """PIBE-optimized all-defenses build of the small kernel.

    Built with ``verify_each=True`` so every tier-1 test implicitly
    exercises the static analyzer at each pass boundary.
    """
    return small_pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()),
        small_profile,
        verify_each=True,
    )


@pytest.fixture(scope="session")
def unoptimized_hardened_build(small_pipeline):
    """All defenses, no PGO."""
    return small_pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.all_defenses()),
        verify_each=True,
    )


@pytest.fixture
def kernel_copy(small_kernel):
    """A private deep copy of the small kernel, safe to mutate."""
    return copy.deepcopy(small_kernel)
