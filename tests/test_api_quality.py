"""API-surface quality gates: every public item is documented and every
package export resolves."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.cpu",
    "repro.engine",
    "repro.evaluation",
    "repro.hardening",
    "repro.ir",
    "repro.kernel",
    "repro.passes",
    "repro.profiling",
    "repro.tools",
    "repro.workloads",
]


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.ispkg:
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"
    # __all__ is sorted for readability
    assert list(exported) == sorted(exported, key=str.lower) or list(
        exported
    ) == sorted(exported), f"{package_name}.__all__ not sorted"


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in _iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in _iter_modules():
        if module.__name__.endswith("__init__"):
            continue
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_version_is_exposed():
    assert repro.__version__
