"""Table 1 microbenchmark harness: recovered tick constants."""

import pytest

from repro.hardening.defenses import DefenseConfig, NonTransientDefense
from repro.ir.validate import validate_module
from repro.workloads.microbench import (
    CALL_KINDS,
    build_microbench_module,
    measure_all_ticks,
    measure_ticks,
)


def test_module_shapes():
    for kind in CALL_KINDS:
        module = build_microbench_module(kind)
        validate_module(module)
        assert "driver" in module
    with pytest.raises(ValueError):
        build_microbench_module("tailcall")


def test_uninstrumented_overhead_is_zero():
    for kind in CALL_KINDS:
        ticks = measure_ticks(DefenseConfig.none(), kind, iterations=200)
        assert ticks == pytest.approx(0.0, abs=0.2)


def test_retpoline_ticks_match_table1():
    assert measure_ticks(
        DefenseConfig.retpolines_only(), "icall", iterations=500
    ) == pytest.approx(21.0, abs=0.5)
    # retpolines leave direct calls (and their rets) alone
    assert measure_ticks(
        DefenseConfig.retpolines_only(), "dcall", iterations=500
    ) == pytest.approx(0.0, abs=0.5)


def test_return_retpoline_ticks_uniform_across_kinds():
    config = DefenseConfig.ret_retpolines_only()
    values = [
        measure_ticks(config, kind, iterations=500) for kind in CALL_KINDS
    ]
    assert all(v == pytest.approx(16.0, abs=0.5) for v in values)


def test_lvi_ticks_match_table1():
    config = DefenseConfig.lvi_only()
    assert measure_ticks(config, "dcall", iterations=500) == pytest.approx(
        11.0, abs=0.5
    )
    assert measure_ticks(config, "icall", iterations=500) == pytest.approx(
        20.0, abs=0.5
    )


def test_all_defenses_cost_most():
    all_ticks = measure_all_ticks(
        {
            "retpolines": DefenseConfig.retpolines_only(),
            "all": DefenseConfig.all_defenses(),
        },
        iterations=300,
    )
    for kind in CALL_KINDS:
        assert all_ticks["all"][kind] > all_ticks["retpolines"][kind]


def test_nontransient_defenses_are_cheap():
    cfi = DefenseConfig(
        nontransient=frozenset({NonTransientDefense.LLVM_CFI})
    )
    ticks = measure_ticks(cfi, "icall", iterations=300)
    assert 0 < ticks < 5
