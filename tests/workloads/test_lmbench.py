"""LMBench suite definition and time-budgeted workload shape."""

from repro.workloads.lmbench import (
    BY_NAME,
    LMBENCH_BENCHMARKS,
    PAPER_LATENCIES_US,
    TABLE3_BENCHMARKS,
    lmbench_workload,
)


def test_twenty_benchmarks_in_paper_order():
    assert len(LMBENCH_BENCHMARKS) == 20
    assert LMBENCH_BENCHMARKS[0].name == "null"
    assert LMBENCH_BENCHMARKS[-1].name == "sig_dispatch"


def test_all_benchmarks_have_paper_latencies():
    assert set(PAPER_LATENCIES_US) == {b.name for b in LMBENCH_BENCHMARKS}


def test_table3_subset():
    names = [b.name for b in TABLE3_BENCHMARKS]
    assert len(names) == 12
    assert "select_tcp" in names
    assert "fork/exit" not in names  # not retpoline-sensitive


def test_workload_ops_inverse_to_latency():
    workload = lmbench_workload(ops_scale=1.0)
    ops = {bench.name: count for bench, count in workload.components}
    # cheap ops run orders of magnitude more often than expensive ones
    assert ops["null"] > 100 * ops["fork/shell"]
    assert ops["page_fault"] > ops["select_tcp"]
    assert all(count >= 1 for count in ops.values())


def test_workload_scale_parameter():
    big = lmbench_workload(ops_scale=1.0)
    small = lmbench_workload(ops_scale=0.1)
    total_big = sum(c for _, c in big.components)
    total_small = sum(c for _, c in small.components)
    assert total_small < total_big


def test_every_bench_maps_to_registered_syscall(small_kernel):
    for bench in LMBENCH_BENCHMARKS:
        for syscall, _ in bench.syscalls:
            assert syscall in small_kernel.syscalls, syscall
