"""SPEC-like userspace suite (Table 1's right column)."""

import pytest

from repro.hardening.defenses import DefenseConfig
from repro.ir.validate import validate_module
from repro.workloads.spec import (
    SPEC_COMPONENTS,
    build_spec_module,
    geomean_slowdown,
    measure_spec_slowdown,
)


def test_module_builds_and_validates():
    module = build_spec_module()
    validate_module(module)
    for comp in SPEC_COMPONENTS:
        assert f"run_{comp.name}" in module


def test_slowdown_ordering_matches_table1():
    iterations = 15
    retpolines = geomean_slowdown(
        measure_spec_slowdown(
            DefenseConfig.retpolines_only(), iterations=iterations
        )
    )
    retret = geomean_slowdown(
        measure_spec_slowdown(
            DefenseConfig.ret_retpolines_only(), iterations=iterations
        )
    )
    all_def = geomean_slowdown(
        measure_spec_slowdown(
            DefenseConfig.all_defenses(), iterations=iterations
        )
    )
    # paper: retpolines 16.1% < return retpolines 23.2% < all 62.0%
    assert 0.05 < retpolines < retret < all_def
    assert all_def > 0.35


def test_memory_bound_components_barely_slow_down():
    slowdowns = measure_spec_slowdown(
        DefenseConfig.retpolines_only(), iterations=10
    )
    # libquantum has no indirect calls at all
    assert slowdowns["libquantum"] == pytest.approx(0.0, abs=0.01)
    assert slowdowns["perlbench"] > slowdowns["libquantum"]


def test_vcall_heavy_components_hit_hardest_by_retpolines():
    slowdowns = measure_spec_slowdown(
        DefenseConfig.retpolines_only(), iterations=10
    )
    assert slowdowns["omnetpp"] > slowdowns["gcc"]


def test_geomean_slowdown_math():
    assert geomean_slowdown({"a": 0.21, "b": 0.21}) == pytest.approx(0.21)
    assert geomean_slowdown({}) == 0.0
