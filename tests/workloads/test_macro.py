"""Macrobenchmark throughput models."""

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.hardening.defenses import DefenseConfig
from repro.workloads.macro import (
    ALL_MACROBENCHMARKS,
    APACHE,
    DBENCH,
    NGINX,
    measure_throughput,
)


def test_three_applications_defined():
    assert [m.name for m in ALL_MACROBENCHMARKS] == [
        "Nginx",
        "Apache",
        "DBench",
    ]
    assert NGINX.unit == "req/sec"
    assert DBENCH.unit == "MB/sec"


def test_throughput_measurement(small_kernel):
    result = measure_throughput(small_kernel, NGINX, batches=5)
    assert result.throughput > 0
    assert result.kernel_cycles_per_unit > 0
    assert result.app == "Nginx"


def test_defenses_degrade_throughput(small_kernel):
    pipeline = PibePipeline(small_kernel)
    vanilla = pipeline.build_variant(PibeConfig.lto_baseline())
    hardened = pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.all_defenses())
    )
    base = measure_throughput(vanilla.module, NGINX, batches=5)
    slow = measure_throughput(hardened.module, NGINX, batches=5)
    degradation = slow.degradation_vs(base)
    assert degradation < -0.15  # large hit without optimization


def test_nginx_more_kernel_sensitive_than_apache(small_kernel):
    pipeline = PibePipeline(small_kernel)
    vanilla = pipeline.build_variant(PibeConfig.lto_baseline())
    hardened = pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.all_defenses())
    )
    results = {}
    for app in (NGINX, APACHE):
        base = measure_throughput(vanilla.module, app, batches=5)
        slow = measure_throughput(hardened.module, app, batches=5)
        results[app.name] = slow.degradation_vs(base)
    # Apache's heavier userspace share dilutes kernel overhead (Table 7)
    assert results["Nginx"] < results["Apache"] < 0


def test_degradation_vs_zero_baseline():
    from repro.workloads.macro import ThroughputResult

    zero = ThroughputResult("x", "u", 0.0, 0.0, 0.0)
    other = ThroughputResult("x", "u", 10.0, 1.0, 1.0)
    assert other.degradation_vs(zero) == 0.0
