"""Benchmark/workload abstractions and measurement plumbing."""

import pytest

from repro.workloads.base import (
    Benchmark,
    Workload,
    measure_benchmark,
    measure_suite,
    profile_workload,
)
from repro.workloads.lmbench import BY_NAME


def test_benchmark_entries_per_op():
    bench = Benchmark("b", (("read", 2), ("write", 1)))
    assert bench.entries_per_op == 3


def test_measure_benchmark_result_fields(small_kernel):
    result = measure_benchmark(
        small_kernel, BY_NAME["null"], ops=20, seed=1
    )
    assert result.ops == 20
    assert result.cycles > 0
    assert result.cycles_per_op == pytest.approx(result.cycles / 20)
    assert result.latency_us > 0
    assert result.ops_per_sec > 0
    assert result.counters["rets"] > 0


def test_measure_suite_scales_ops(small_kernel):
    benches = [BY_NAME["null"], BY_NAME["read"]]
    results = measure_suite(small_kernel, benches, ops_scale=0.05)
    assert set(results) == {"null", "read"}
    assert results["null"].ops == int(BY_NAME["null"].default_ops * 0.05)


def test_heavier_paths_cost_more(small_kernel):
    null = measure_benchmark(small_kernel, BY_NAME["null"], ops=30, seed=2)
    fork = measure_benchmark(
        small_kernel, BY_NAME["fork/exit"], ops=30, seed=2
    )
    assert fork.cycles_per_op > 3 * null.cycles_per_op


def test_profile_workload_merges_iterations(small_kernel):
    workload = Workload(
        "w", ((BY_NAME["read"], 5), (BY_NAME["null"], 10))
    )
    profile = profile_workload(small_kernel, workload, iterations=2, seed=1)
    assert profile.runs == 2
    assert profile.workload == "w"
    assert profile.total_weight() > 0
    single = profile_workload(small_kernel, workload, iterations=1, seed=1)
    # two iterations roughly double the weight (stochastic paths vary)
    assert profile.total_weight() > 1.5 * single.total_weight()


def test_measurement_is_deterministic_per_seed(small_kernel):
    a = measure_benchmark(small_kernel, BY_NAME["read"], ops=25, seed=9)
    b = measure_benchmark(small_kernel, BY_NAME["read"], ops=25, seed=9)
    assert a.cycles == b.cycles


def test_measure_benchmark_median(small_kernel):
    from repro.workloads.base import measure_benchmark_median

    median, spread = measure_benchmark_median(
        small_kernel, BY_NAME["read"], rounds=5, ops=20, seed=3
    )
    assert median.cycles_per_op > 0
    assert spread >= 0.0
    # spread across seeds stays modest on a stable bench
    assert spread < 0.3


def test_measure_benchmark_median_single_round(small_kernel):
    from repro.workloads.base import measure_benchmark_median

    median, spread = measure_benchmark_median(
        small_kernel, BY_NAME["null"], rounds=1, ops=10
    )
    assert spread == 0.0
    assert median.ops == 10


def test_measure_benchmark_median_validates_rounds(small_kernel):
    import pytest

    from repro.workloads.base import measure_benchmark_median

    with pytest.raises(ValueError):
        measure_benchmark_median(small_kernel, BY_NAME["null"], rounds=0)
