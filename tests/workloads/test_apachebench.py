"""ApacheBench training workload shape."""

from repro.workloads.apachebench import (
    APACHE_HOUSEKEEPING,
    APACHE_REQUEST_BATCH,
    apachebench_workload,
)


def test_request_batch_touches_serving_paths():
    syscalls = dict(APACHE_REQUEST_BATCH.syscalls)
    for expected in ("recvfrom", "stat", "read", "tcp", "open"):
        assert expected in syscalls
    # four requests per batch, one cold open
    assert syscalls["recvfrom"] == 4
    assert syscalls["open"] == 1


def test_housekeeping_covers_background_paths():
    syscalls = dict(APACHE_HOUSEKEEPING.syscalls)
    for expected in ("fork_exit", "mmap", "sig_install", "select_tcp"):
        assert expected in syscalls


def test_workload_is_request_dominated():
    workload = apachebench_workload()
    ops = {bench.name: count for bench, count in workload.components}
    assert ops["apache_request_batch"] > 10 * ops["apache_housekeeping"]
    assert workload.name == "apache2"


def test_profiles_on_small_kernel(small_kernel):
    from repro.workloads.base import profile_workload

    profile = profile_workload(
        small_kernel, apachebench_workload(ops_scale=0.05), iterations=1
    )
    assert profile.total_weight() > 0
    # the monotonic mix still observes indirect sites
    assert len(profile.indirect) > 3
