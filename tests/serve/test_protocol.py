"""Wire-protocol codec: config round-trips, strict rejection, framing."""

import json

import pytest

from repro.core.config import PibeConfig
from repro.hardening.defenses import DefenseConfig, NonTransientDefense
from repro.serve import protocol
from repro.serve.protocol import ProtocolError


CONFIGS = [
    PibeConfig.lto_baseline(),
    PibeConfig.pibe_baseline(),
    PibeConfig.lax(DefenseConfig.all_defenses()),
    PibeConfig.hardened(DefenseConfig.lvi_only(), icp_budget=0.99),
    PibeConfig(
        defenses=DefenseConfig(
            retpolines=True,
            nontransient=frozenset(
                {NonTransientDefense.LLVM_CFI, NonTransientDefense.SAFESTACK}
            ),
        ),
        inline_budget=0.5,
        use_default_inliner=True,
        run_dce=False,
        caller_threshold=123,
        callee_threshold=45,
    ),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label())
def test_config_roundtrip(config):
    data = protocol.config_to_dict(config)
    json.dumps(data)  # must be directly serializable
    assert protocol.config_from_dict(data) == config


def test_config_defaults_and_partial_dicts():
    assert protocol.config_from_dict({}) == PibeConfig()
    # omitted fields take dataclass defaults, not wire-level surprises
    partial = protocol.config_from_dict({"icp_budget": 0.9})
    assert partial == PibeConfig(icp_budget=0.9)


def test_config_rejects_unknown_and_mistyped_fields():
    with pytest.raises(ProtocolError, match="unknown config field"):
        protocol.config_from_dict({"icp_bugdet": 0.9})
    with pytest.raises(ProtocolError, match="unknown defense field"):
        protocol.config_from_dict({"defenses": {"retpoline": True}})
    with pytest.raises(ProtocolError, match="must be a number"):
        protocol.config_from_dict({"icp_budget": "0.9"})
    with pytest.raises(ProtocolError, match="must be an integer"):
        protocol.config_from_dict({"caller_threshold": 1.5})
    with pytest.raises(ProtocolError, match="must be an object"):
        protocol.config_from_dict([1, 2])
    with pytest.raises(ProtocolError):
        protocol.config_from_dict({"defenses": {"nontransient": ["bogus"]}})


def test_benches_resolution():
    default = protocol.benches_from_names(None)
    assert [b.name for b in default]  # full suite, non-empty
    null_read = protocol.benches_from_names(["null", "read"])
    assert [b.name for b in null_read] == ["null", "read"]
    with pytest.raises(ProtocolError, match="unknown benchmark"):
        protocol.benches_from_names(["nope"])
    with pytest.raises(ProtocolError, match="non-empty"):
        protocol.benches_from_names([])


def test_workload_validation():
    assert protocol.workload_from_params({}) == "lmbench"
    assert protocol.workload_from_params({"workload": "apache"}) == "apache"
    with pytest.raises(ProtocolError, match="unknown workload"):
        protocol.workload_from_params({"workload": "spec2017"})


def test_measure_key_is_semantic():
    benches = protocol.benches_from_names(["null"])
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    # same semantic cell from two different JSON spellings -> same key
    respelled = protocol.config_from_dict(
        json.loads(json.dumps(protocol.config_to_dict(config)))
    )
    assert protocol.measure_key(config, benches, "lmbench") == (
        protocol.measure_key(respelled, benches, "lmbench")
    )
    # any semantic difference -> different key
    assert protocol.measure_key(config, benches, "lmbench") != (
        protocol.measure_key(config, benches, "apache")
    )
    assert protocol.measure_key(config, benches, "lmbench") != (
        protocol.measure_key(PibeConfig(), benches, "lmbench")
    )


def test_request_framing_roundtrip():
    line = protocol.encode_request(7, "measure", {"workload": "apache"})
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    request = protocol.decode_request(line)
    assert request.id == 7
    assert request.op == "measure"
    assert request.params == {"workload": "apache"}
    # params are optional
    bare = protocol.decode_request(protocol.encode_request(1, "ping"))
    assert bare.params == {}


def test_decode_rejects_malformed_lines():
    with pytest.raises(ProtocolError, match="invalid JSON"):
        protocol.decode_request(b"{nope\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        protocol.decode_request(b"[1,2]\n")
    with pytest.raises(ProtocolError, match="string 'op'"):
        protocol.decode_request(b'{"id": 1}\n')
    with pytest.raises(ProtocolError, match="must be an object"):
        protocol.decode_request(b'{"op": "ping", "params": 3}\n')


def test_response_envelopes():
    ok = json.loads(protocol.encode_response(3, result={"x": 1}))
    assert ok == {"id": 3, "ok": True, "result": {"x": 1}}
    err = json.loads(
        protocol.encode_response(4, error=(protocol.ERROR_BAD_REQUEST, "why"))
    )
    assert err == {
        "id": 4,
        "ok": False,
        "error": {"kind": "bad_request", "message": "why"},
    }
