"""The evaluation server end-to-end: one warm server on a unix socket,
driven by real clients — routing counters, single-flight dedup, wire
errors and bit-identical results versus the inline harness."""

import json
import os
import socket
import threading
import time

import pytest

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, run_server
from repro.workloads.lmbench import BY_NAME

BENCH_NAMES = ["null", "read"]
BENCHES = tuple(BY_NAME[n] for n in BENCH_NAMES)


def _settings(cache_dir=None):
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        cache_dir=cache_dir,
    )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One warm server for the whole module (kernel built once), plus its
    socket path and a client factory."""
    root = tmp_path_factory.mktemp("serve")
    sock = str(root / "repro.sock")
    server = ReproServer(_settings(str(root / "cache")), unix_path=sock)
    thread = threading.Thread(target=run_server, args=(server,), daemon=True)
    thread.start()
    deadline = time.monotonic() + 60
    while not os.path.exists(sock):
        if time.monotonic() > deadline:
            raise RuntimeError("server never came up")
        time.sleep(0.05)
    yield server, sock
    try:
        with ServeClient(unix=sock) as client:
            client.shutdown()
    except (ServeError, OSError):
        pass
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread failed to shut down"


@pytest.fixture()
def client(served):
    _, sock = served
    with ServeClient(unix=sock) as c:
        yield c


def test_ping(client):
    pong = client.ping()
    assert pong["pong"] is True
    assert pong["protocol"] == protocol.PROTOCOL_VERSION


def test_measure_bit_identical_to_inline(client):
    """The service layer may change latency, never values."""
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    served_values = client.measure(config, benches=BENCH_NAMES)["results"]
    with EvalContext(_settings()) as ctx:
        inline = ctx.measure(config, BENCHES)
    # both went through JSON-free float paths; demand exact equality
    assert served_values == inline


def test_repeat_measure_is_inline_cache_hit(served):
    server, sock = served
    config = PibeConfig.hardened(DefenseConfig.retpolines_only())
    with ServeClient(unix=sock) as client:
        first = client.measure(config, benches=BENCH_NAMES)
        before = dict(server.counters)
        second = client.measure(config, benches=BENCH_NAMES)
    assert second["results"] == first["results"]
    assert second["cached"] is True
    assert server.counters["inline_hits"] == before["inline_hits"] + 1
    assert server.counters["cells_evaluated"] == before["cells_evaluated"]


def test_measure_many_matches_inline_and_batches(served):
    server, sock = served
    configs = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(DefenseConfig.lvi_only()),
        PibeConfig.hardened(DefenseConfig.lvi_only(), icp_budget=0.99),
    ]
    before = dict(server.counters)
    with ServeClient(unix=sock) as client:
        response = client.measure_many(
            configs, benches=BENCH_NAMES, workload="lmbench"
        )
    assert response["labels"] == [c.label() for c in configs]
    assert response["failures"] == []
    with EvalContext(_settings()) as ctx:
        inline = ctx.measure_many(configs, BENCHES, "lmbench")
    assert response["results"] == list(inline)
    # all cold cells of one request land in one dispatcher batch
    assert server.counters["batches"] == before["batches"] + 1


def test_single_flight_dedup(served):
    """N concurrent identical cold requests -> exactly one evaluation.

    Raw sockets pipeline the N requests in one burst, so they all reach
    the event loop while the first is still evaluating; the routing
    counters then prove the coalescing: ``cells_evaluated`` moves by one,
    the other N-1 waiters are ``single_flight_hits``.
    """
    server, sock = served
    n = 5
    config = PibeConfig.hardened(  # a cell no other test measures
        DefenseConfig.ret_retpolines_only(), inline_budget=0.97
    )
    params = {
        "config": protocol.config_to_dict(config),
        "benches": BENCH_NAMES,
        "workload": "lmbench",
    }
    before = dict(server.counters)
    pipeline_before = server.ctx.pipeline.stats["staged_builds"]

    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(300.0)
    raw.connect(sock)
    try:
        burst = b"".join(
            protocol.encode_request(i, "measure", params) for i in range(n)
        )
        raw.sendall(burst)
        replies = []
        stream = raw.makefile("rb")
        for _ in range(n):
            replies.append(json.loads(stream.readline()))
    finally:
        raw.close()

    assert sorted(r["id"] for r in replies) == list(range(n))
    results = [r["result"]["results"] for r in replies]
    assert all(r["ok"] for r in replies)
    assert all(values == results[0] for values in results)
    assert server.counters["cells_evaluated"] == before["cells_evaluated"] + 1
    assert (
        server.counters["single_flight_hits"]
        == before["single_flight_hits"] + n - 1
    )
    # the variant prefix was staged exactly once for the whole burst
    assert server.ctx.pipeline.stats["staged_builds"] == pipeline_before + 1


def test_build_and_lint_endpoints(client):
    config = PibeConfig.pibe_baseline()
    build = client.build(config)
    assert build["label"] == config.label()
    assert build["functions"] > 0
    lint = client.lint(config)
    assert lint["label"] == config.label()
    assert "report" in lint
    # The incremental path surfaces its cache/shard accounting.
    assert "stats" in lint and lint["stats"]["functions"] > 0
    # Linting the same variant again is memoized in the harness.
    again = client.lint(config)
    assert again["report"] == lint["report"]


def test_stats_endpoint_shape(client):
    stats = client.stats()
    server_stats = stats["server"]
    assert server_stats["uptime_seconds"] >= 0
    assert set(server_stats["counters"]) == {
        "batches",
        "cells_evaluated",
        "connections",
        "errors",
        "inline_hits",
        "prefixes_prewarmed",
        "requests",
        "single_flight_hits",
    }
    assert "measure" in server_stats["endpoints"]
    assert stats["cache"] is not None
    assert set(stats["cache"]) == {"root", "counters", "disk", "quarantined"}
    pipeline = stats["pipeline"]
    assert pipeline["entries"] >= 1
    assert pipeline["counters"]["staged_builds"] >= 1
    assert stats["settings"]["spec"] == "SmallSpec"


def test_error_mapping(served):
    _, sock = served
    with ServeClient(unix=sock) as client:
        with pytest.raises(ServeError) as exc:
            client.request("frobnicate")
        assert exc.value.kind == protocol.ERROR_UNKNOWN_OP
        with pytest.raises(ServeError) as exc:
            client.request("measure", {"config": {"icp_bugdet": 0.9}})
        assert exc.value.kind == protocol.ERROR_BAD_REQUEST
        with pytest.raises(ServeError) as exc:
            client.request("measure", {"benches": ["nope"]})
        assert exc.value.kind == protocol.ERROR_BAD_REQUEST
        with pytest.raises(ServeError) as exc:
            client.request("measure_many", {"configs": []})
        assert exc.value.kind == protocol.ERROR_BAD_REQUEST
        # the connection survives every error above
        assert client.ping()["pong"] is True


def test_malformed_line_gets_error_envelope(served):
    _, sock = served
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(30.0)
    raw.connect(sock)
    try:
        raw.sendall(b"{not json\n")
        reply = json.loads(raw.makefile("rb").readline())
    finally:
        raw.close()
    assert reply["ok"] is False
    assert reply["error"]["kind"] == protocol.ERROR_BAD_REQUEST


def test_security_endpoint(client):
    """The sweep engine's security axis in connect mode: residual-target
    metrics of a (memoized) server-side variant."""
    config = PibeConfig.hardened(
        DefenseConfig.retpolines_only(), icp_budget=0.99, inline_budget=0.99
    )
    result = client.security(config)
    assert result["label"] == config.label()
    assert result["workload"] == "lmbench"
    metrics = result["metrics"]
    assert 0.0 < metrics["air"] <= 1.0
    assert metrics["residual_total"] >= 0
    assert metrics["residual_mean"] >= 0.0
    # the detail dict rounds for display; the metrics block is exact
    assert result["detail"]["air"] == pytest.approx(metrics["air"], abs=1e-6)
    # repeated request: deterministic, served from the memoized variant
    assert client.security(config) == result
    # and matches the inline analysis of the same variant exactly
    with EvalContext(_settings()) as ctx:
        from repro.analysis.security import security_metrics

        inline = security_metrics(
            ctx.variant(config, "lmbench").module, label=config.label()
        )
    assert metrics["air"] == inline.air
    assert metrics["residual_total"] == inline.residual_total


def test_security_endpoint_bad_workload(client):
    config = PibeConfig.pibe_baseline()
    with pytest.raises(ServeError) as exc:
        client.request(
            "security",
            {"config": protocol.config_to_dict(config), "workload": "nope"},
        )
    assert exc.value.kind == protocol.ERROR_BAD_REQUEST
