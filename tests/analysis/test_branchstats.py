"""Dynamic branch statistics."""

from repro.analysis.branchstats import BranchStats, collect_branch_stats
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass

import copy


def test_stats_on_vanilla_kernel(small_kernel):
    stats = collect_branch_stats(small_kernel, ["read"], ops=30)
    assert stats.ops == 30
    assert stats.calls_per_op > 5
    assert stats.icalls_per_op > 1
    assert stats.rets_per_op >= stats.calls_per_op
    assert stats.defended_icall_fraction == 0.0
    assert stats.defended_ret_fraction == 0.0


def test_defended_fractions_on_hardened_kernel(small_kernel):
    hardened = copy.deepcopy(small_kernel)
    HardeningPass(DefenseConfig.all_defenses()).run(hardened)
    stats = collect_branch_stats(hardened, ["read"], ops=30)
    # every non-asm branch execution is defended
    assert stats.defended_ret_fraction == 1.0
    assert stats.defended_icall_fraction > 0.5


def test_pibe_reduces_defended_executions(
    hardened_build, unoptimized_hardened_build
):
    syscalls = ["read", "write", "pipe"]
    unopt = collect_branch_stats(
        unoptimized_hardened_build.module, syscalls, ops=25
    )
    opt = collect_branch_stats(hardened_build.module, syscalls, ops=25)
    assert opt.defended_rets < unopt.defended_rets * 0.4
    assert opt.rets_per_op < unopt.rets_per_op


def test_summary_text():
    stats = BranchStats(
        ops=10, calls=100, icalls=20, defended_icalls=10, rets=110,
        defended_rets=110,
    )
    text = stats.summary()
    assert "10 ops" in text
    assert "50% defended" in text
    assert "100% defended" in text


def test_empty_stats_have_zero_rates():
    stats = BranchStats()
    assert stats.calls_per_op == 0.0
    assert stats.defended_ret_fraction == 0.0
