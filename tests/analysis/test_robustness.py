"""Workload-overlap analysis (Section 8.4)."""

import pytest

from repro.analysis.robustness import (
    icp_candidates,
    inline_candidates,
    workload_overlap,
)
from repro.profiling.profile_data import EdgeProfile


def _profile(direct, indirect=None):
    p = EdgeProfile()
    for site, count in direct.items():
        p.record_direct(site, count)
    for site, targets in (indirect or {}).items():
        for t, c in targets.items():
            p.record_indirect(site, t, c)
    return p


def test_budget_prefix_selection():
    p = _profile({1: 900, 2: 90, 3: 10})
    assert inline_candidates(p, 0.9) == {1}
    assert inline_candidates(p, 0.99) == {1, 2}
    assert inline_candidates(p, 1.0) == {1, 2, 3}


def test_icp_candidates_use_site_totals():
    p = _profile({}, {1: {"a": 50, "b": 50}, 2: {"c": 1}})
    assert icp_candidates(p, 0.9) == {1}


def test_empty_profile_has_no_candidates():
    p = EdgeProfile()
    assert inline_candidates(p, 0.99) == set()
    assert icp_candidates(p, 0.99) == set()


def test_identical_workloads_fully_overlap():
    p = _profile({1: 100, 2: 50}, {3: {"a": 10}})
    report = workload_overlap(p, p, budget=0.99)
    assert report.inline_shared_weight_fraction == pytest.approx(1.0)
    assert report.icp_shared_weight_fraction == pytest.approx(1.0)


def test_disjoint_workloads_share_nothing():
    ref = _profile({1: 100}, {10: {"a": 5}})
    other = _profile({2: 100}, {20: {"b": 5}})
    report = workload_overlap(ref, other, budget=0.99)
    assert report.inline_shared_weight_fraction == 0.0
    assert report.icp_shared_weight_fraction == 0.0


def test_partial_overlap_weighted_by_reference():
    ref = _profile({1: 80, 2: 20})
    other = _profile({1: 50, 3: 50})
    report = workload_overlap(ref, other, budget=1.0)
    # only site 1 shared; it carries 80% of the reference weight
    assert report.inline_shared_weight_fraction == pytest.approx(0.8)
    assert report.inline_shared_sites == 1
