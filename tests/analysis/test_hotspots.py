"""Per-function cycle attribution."""

import copy

import pytest

from repro.analysis.hotspots import collect_hotspots, format_hotspots
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass


def test_self_cycles_sum_close_to_total(small_kernel):
    spots = collect_hotspots(small_kernel, ["read"], ops=20, top=None)
    assert spots
    # every executed function appears; fractions sum to 1
    total_fraction = sum(s.self_fraction for s in spots)
    assert total_fraction == pytest.approx(1.0, abs=1e-6)


def test_entry_point_dominates_inclusive_time(small_kernel):
    spots = collect_hotspots(small_kernel, ["read"], ops=20, top=None)
    by_name = {s.function: s for s in spots}
    entry = by_name["sys_read"]
    # almost all cycles happen somewhere under sys_read
    grand_self = sum(s.self_cycles for s in spots)
    assert entry.total_cycles > 0.9 * grand_self
    # ...but its own body is small
    assert entry.self_cycles < entry.total_cycles


def test_total_at_least_self(small_kernel):
    for spot in collect_hotspots(small_kernel, ["open"], ops=10, top=None):
        assert spot.total_cycles >= spot.self_cycles - 1e-9


def test_hardening_overhead_lands_on_hot_helpers(small_kernel):
    """Under return retpolines, the extra cycles concentrate in the
    functions that return most often — the paper's core observation."""
    hardened = copy.deepcopy(small_kernel)
    HardeningPass(DefenseConfig.ret_retpolines_only()).run(hardened)
    base = {
        s.function: s.self_cycles
        for s in collect_hotspots(small_kernel, ["read"], ops=30, top=None)
    }
    slow = {
        s.function: s.self_cycles
        for s in collect_hotspots(hardened, ["read"], ops=30, top=None)
    }
    growth = {
        name: slow.get(name, 0) - base.get(name, 0) for name in base
    }
    # the leaf helpers (frequent returns) gained the most cycles
    top_gainers = sorted(growth, key=growth.get, reverse=True)[:8]
    assert any(
        name in top_gainers
        for name in ("rcu_read_lock", "rcu_read_unlock", "stac", "clac",
                     "copy_to_user", "preempt_disable", "preempt_enable")
    )


def test_top_parameter_limits_rows(small_kernel):
    spots = collect_hotspots(small_kernel, ["read"], ops=5, top=3)
    assert len(spots) == 3
    # ranked by self cycles
    assert spots[0].self_cycles >= spots[1].self_cycles >= spots[2].self_cycles


def test_format_hotspots(small_kernel):
    spots = collect_hotspots(small_kernel, ["read"], ops=5, top=4)
    text = format_hotspots(spots)
    assert "self%" in text
    assert spots[0].function in text
