"""Runtime stack-usage tracking."""

from repro.analysis.stack import StackUsageTracker
from repro.engine.interpreter import Interpreter
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module


def _chain_module(frames):
    """f0 -> f1 -> ... -> fn, each with the given frame size."""
    module = Module("m")
    names = [f"f{i}" for i in range(len(frames))]
    for i, (name, frame) in enumerate(zip(names, frames)):
        func = Function(name, stack_frame_size=frame)
        b = IRBuilder(func)
        if i + 1 < len(names):
            b.call(names[i + 1])
        b.ret()
        module.add_function(func)
    return module


def test_peak_is_sum_of_chain_frames():
    module = _chain_module([100, 50, 25])
    tracker = StackUsageTracker()
    Interpreter(module, [tracker]).run_function("f0")
    assert tracker.peak_bytes == 175
    assert tracker.max_frames == 3
    assert tracker.current_bytes == 0  # fully unwound


def test_peak_persists_across_runs():
    module = _chain_module([100, 50])
    tracker = StackUsageTracker()
    interp = Interpreter(module, [tracker])
    interp.run_function("f0", times=3)
    assert tracker.peak_bytes == 150
    assert tracker.mean_bytes > 0


def test_run_start_resets_current_depth():
    module = _chain_module([80])
    tracker = StackUsageTracker()
    tracker.current_bytes = 999  # stale state
    Interpreter(module, [tracker]).run_function("f0")
    assert tracker.peak_bytes == 80


def test_opaque_ijump_unwinds_like_ret():
    module = Module("m")
    func = Function("asmish", stack_frame_size=64)
    b = IRBuilder(func)
    b.arith(1)
    b.ijump()
    module.add_function(func)
    tracker = StackUsageTracker()
    Interpreter(module, [tracker]).run_function("asmish", times=2)
    assert tracker.peak_bytes == 64
    assert tracker.current_bytes == 0
