"""Gadget census analyses (Tables 4, 8, 10, 11)."""

import pytest

from repro.analysis.gadgets import (
    backward_edge_census,
    candidate_stats,
    elimination_stats,
    forward_edge_census,
    target_count_distribution,
)
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.passes.icp import ICPReport
from repro.passes.inliner import InlineReport
from repro.profiling.profile_data import EdgeProfile


def test_target_count_distribution_buckets():
    profile = EdgeProfile()
    profile.record_indirect(1, "a", 1)
    profile.record_indirect(2, "a", 1)
    profile.record_indirect(2, "b", 1)
    for i in range(8):
        profile.record_indirect(3, f"t{i}", 1)
    dist = target_count_distribution(profile)
    assert dist["1"] == 1
    assert dist["2"] == 1
    assert dist[">6"] == 1
    assert sum(dist.values()) == 3


def test_elimination_stats_combines_reports():
    icp = ICPReport(budget=0.99)
    icp.promoted_weight, icp.total_weight = 99, 100
    icp.promoted_sites, icp.total_sites = 5, 10
    icp.promoted_targets, icp.total_targets = 7, 20
    inline = InlineReport(budget=0.99)
    inline.returns_elided_weight = 930
    inline.candidate_weight = 1000
    inline.returns_elided_sites = 42
    stats = elimination_stats(0.99, icp, inline, total_return_sites=200)
    assert stats.icp_weight_fraction == pytest.approx(0.99)
    assert stats.icp_sites_fraction == pytest.approx(0.5)
    assert stats.return_weight_fraction == pytest.approx(0.93)
    assert stats.return_sites_fraction == pytest.approx(0.21)


def test_candidate_stats_fractions():
    icp = ICPReport(budget=0.99)
    icp.promoted_sites = 6
    inline = InlineReport(budget=0.99)
    inline.candidate_sites = 15
    stats = candidate_stats(0.99, 200, 1000, icp, inline)
    assert stats.icp_fraction == pytest.approx(0.03)
    assert stats.inline_fraction == pytest.approx(0.015)


def _census_module():
    module = Module("m")
    module.add_function(build_leaf("t"))
    normal = Function("normal")
    b = IRBuilder(normal)
    b.icall({"t": 1})
    b.ret()
    module.add_function(normal)
    asm = Function("asm_wrap")
    b = IRBuilder(asm)
    b.icall({"t": 1}, asm=True)
    b.ret()
    module.add_function(asm)
    boot = Function("boot", attrs={FunctionAttr.BOOT_ONLY})
    b = IRBuilder(boot)
    b.icall({"t": 1})
    b.ret()
    module.add_function(boot)
    return module


def test_forward_edge_census_all_defenses():
    module = _census_module()
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    census = forward_edge_census(module)
    assert census.defended_icalls == 2  # normal + boot (tagged anyway)
    assert census.vulnerable_icalls == 1  # the asm site
    assert census.vulnerable_ijumps == 0
    assert census.total_icalls == 3


def test_forward_edge_census_retpolines_only_not_lvi_safe():
    module = _census_module()
    HardeningPass(DefenseConfig.retpolines_only()).run(module)
    census = forward_edge_census(module)
    # plain retpolines are not LVI-safe: counted vulnerable in the
    # comprehensive census
    assert census.defended_icalls == 0


def test_backward_edge_census():
    module = _census_module()
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    census = backward_edge_census(module)
    assert census["vulnerable"] == 0
    assert census["boot_only"] == 1
    assert census["protected"] == 3  # t, normal, asm_wrap
