"""Points-to solver behavior: table fast path, asm/census fallback,
constraint solve, memoization and input digests."""

from __future__ import annotations

import pytest

from repro.analysis.pointsto import (
    analyze_pointsto,
    pointsto_inputs_digest,
)
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import ATTR_DEFENSE


def _module_with_table(num_args=1):
    module = Module("pt")
    for name in ("a", "b", "c"):
        module.add_function(build_leaf(name, num_params=1))
    module.add_fptr_table(FunctionPointerTable("ops", ["a", "b", "c"]))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall({"a": 5, "b": 1}, num_args=num_args, fptr_table="ops")
    b.ret()
    module.add_function(caller)
    return module, icall


def test_declared_table_site_takes_table_entries():
    module, icall = _module_with_table()
    pt = analyze_pointsto(module)
    st = pt.site(icall.site_id)
    assert st is not None
    assert st.table == "ops"
    assert st.flow == frozenset({"a", "b", "c"})
    assert st.feasible == frozenset({"a", "b", "c"})
    assert not st.census_fallback
    # Every declared-table site is resolved without the constraint solve.
    assert pt.solved_functions == 0


def test_truth_backstop_survives_arity_filter():
    # Site passes 3 args; every table entry takes 1 param, so the arity
    # filter would empty the flow set — but the observed targets must
    # stay (soundness: never drop an edge that executed).
    module, icall = _module_with_table(num_args=3)
    pt = analyze_pointsto(module)
    st = pt.site(icall.site_id)
    assert st.truth == frozenset({"a", "b"})
    assert st.feasible == frozenset({"a", "b"})


def test_asm_site_falls_back_to_census():
    module = Module("pt-asm")
    for name in ("a", "b"):
        module.add_function(build_leaf(name, num_params=1))
    module.add_fptr_table(FunctionPointerTable("ops", ["a", "b"]))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall({"a": 1}, num_args=1, asm=True)
    b.ret()
    module.add_function(caller)
    pt = analyze_pointsto(module)
    st = pt.site(icall.site_id)
    assert st.asm and st.flow is None
    assert st.census_fallback
    assert st.feasible == frozenset({"a", "b"})


def test_no_census_no_table_is_unbounded():
    module = Module("pt-top")
    module.add_function(build_leaf("a", num_params=1))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall({"a": 1}, num_args=1, asm=True)
    b.ret()
    module.add_function(caller)
    pt = analyze_pointsto(module)
    st = pt.site(icall.site_id)
    assert not pt.census_known
    assert st.feasible is None and not st.bounded


def test_solve_bounds_undeclared_site_via_table_load():
    # loader loads pointers out of "ops" (declared site) and calls
    # dispatch, which then icalls WITHOUT declaring a table.  The solve
    # must carry the table values through the call edge.
    module = Module("pt-solve")
    for name in ("a", "b"):
        module.add_function(build_leaf(name, num_params=1))
    module.add_function(build_leaf("unrelated", num_params=1))
    module.add_fptr_table(FunctionPointerTable("ops", ["a", "b"]))

    dispatch = Function("dispatch", num_params=1)
    b = IRBuilder(dispatch)
    inner = b.icall({"a": 3}, num_args=1)
    b.ret()
    module.add_function(dispatch)

    loader = Function("loader")
    b = IRBuilder(loader)
    b.icall({"a": 2}, num_args=1, fptr_table="ops")
    b.call("dispatch", num_args=1)
    b.ret()
    module.add_function(loader)

    pt = analyze_pointsto(module)
    st = pt.site(inner.site_id)
    assert pt.solved_functions > 0
    assert st.flow is not None
    assert st.feasible is not None
    assert st.feasible <= pt.census
    assert "a" in st.feasible
    # The solve must not leak unrelated address-taken functions in: the
    # only pointers reaching dispatch are ops entries.
    assert "unrelated" not in st.feasible


def test_memoized_per_module_version():
    module, _ = _module_with_table()
    first = analyze_pointsto(module)
    assert analyze_pointsto(module) is first
    module.bump_version()
    assert analyze_pointsto(module) is not first


def test_inputs_digest_defense_tag_insensitive():
    module, icall = _module_with_table()
    before = pointsto_inputs_digest(module)
    icall.attrs[ATTR_DEFENSE] = "retpoline"
    module.bump_version()
    assert pointsto_inputs_digest(module) == before
    # ...but moving actual pointer structure changes it.
    module.add_fptr_table(FunctionPointerTable("extra", ["a"]))
    module.bump_version()
    assert pointsto_inputs_digest(module) != before


def test_kernel_strictly_tighter_than_census():
    from repro.kernel.generator import build_kernel
    from repro.kernel.spec import SmallSpec

    module = build_kernel(SmallSpec())
    pt = analyze_pointsto(module)
    assert pt.census_known and pt.sites
    for st in pt.sites.values():
        assert st.bounded
        assert st.truth <= st.feasible
        assert st.feasible <= pt.census
        assert len(st.feasible) < len(pt.census)


@pytest.mark.parametrize("num_args", [0, 1, 2])
def test_arity_filter_respects_site_signature(num_args):
    module = Module("pt-arity")
    module.add_function(build_leaf("one", num_params=1))
    module.add_function(build_leaf("two", num_params=2))
    module.add_fptr_table(FunctionPointerTable("ops", ["one", "two"]))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall({}, num_args=num_args, fptr_table="ops")
    b.ret()
    module.add_function(caller)
    pt = analyze_pointsto(module)
    expected = {
        n for n in ("one", "two") if module.get(n).num_params == num_args
    }
    assert pt.site(icall.site_id).feasible == frozenset(expected)
