"""Size/memory model (Table 12)."""

import pytest

from repro.analysis.sizes import (
    MEM_PAGE_BYTES,
    mem_size_bytes,
    peak_stack_bytes,
    size_report,
    slab_size_bytes,
    text_size_bytes,
)
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module


def _module(extra_work=0):
    module = Module("m")
    module.add_function(build_leaf("leaf", work=4 + extra_work))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"leaf": 1})
    b.ret()
    module.add_function(func)
    return module


def test_text_size_counts_defense_expansion_and_thunks():
    plain = _module()
    hardened = _module()
    HardeningPass(DefenseConfig.all_defenses()).run(hardened)
    base = text_size_bytes(plain)
    grown = text_size_bytes(hardened)
    # 2 rets x 8 units (combined lowering) + 10-unit fenced thunk, x5 bytes
    assert grown == base + (2 * 8 + 10) * 5


def test_mem_size_is_page_quantized():
    module = _module()
    mem = mem_size_bytes(module)
    assert mem % MEM_PAGE_BYTES == 0
    assert mem >= text_size_bytes(module)


def test_slab_size_tracks_tables_and_functions():
    module = _module()
    before = slab_size_bytes(module)
    module.add_fptr_table(FunctionPointerTable("ops", ["leaf"]))
    assert slab_size_bytes(module) == before + 64


def test_peak_stack_proxy_counts_biggest_frames():
    module = Module("m")
    for i, frame in enumerate((100, 200, 300)):
        module.add_function(
            build_leaf(f"f{i}")
        )
        module.get(f"f{i}").stack_frame_size = frame
    assert peak_stack_bytes(module) == 600


def test_size_report_relative_measures():
    lto = _module()
    unopt = _module()
    HardeningPass(DefenseConfig.all_defenses()).run(unopt)
    variant = _module(extra_work=30)  # simulates inlining growth
    HardeningPass(DefenseConfig.all_defenses()).run(variant)
    report = size_report("v", variant, lto, unopt)
    assert report.abs_size_increase > 0
    assert report.img_size_increase > 0
    assert report.abs_size_increase > report.img_size_increase
    assert report.label == "v"


def test_size_report_with_measured_dyn():
    lto = _module()
    report = size_report("v", lto, lto, lto, measured_dyn=(110.0, 100.0))
    assert report.dyn_size_increase == pytest.approx(0.1)
