"""Residual-target security metrics derived from points-to analysis."""

from __future__ import annotations

from repro.analysis.pointsto import analyze_pointsto
from repro.analysis.security import security_metrics
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec


def _two_table_module():
    """Two tables, two sites: one tight (2 entries), one broad (4)."""
    module = Module("sec")
    for i in range(6):
        module.add_function(build_leaf(f"f{i}", num_params=1))
    module.add_fptr_table(FunctionPointerTable("tight", ["f0", "f1"]))
    module.add_fptr_table(
        FunctionPointerTable("broad", ["f2", "f3", "f4", "f5"])
    )
    caller = Function("caller")
    b = IRBuilder(caller)
    b.icall({"f0": 5}, num_args=1, fptr_table="tight")
    b.icall({"f2": 5}, num_args=1, fptr_table="broad")
    b.ret()
    module.add_function(caller)
    return module


def test_basic_accounting():
    module = _two_table_module()
    m = security_metrics(module)
    assert m.icall_sites == 2
    assert m.bounded_sites == 2
    assert m.fallback_sites == 0
    assert m.census_size == 6
    assert m.residual_total == 2 + 4
    assert m.residual_max == 4
    assert m.residual_mean == 3.0
    # Both sites pass 1 arg and every function takes 1 param, so the
    # type bound is the whole census at each site.
    assert m.type_bound_total == 12
    assert abs(m.air - (1 - (2 / 6 + 4 / 6) / 2)) < 1e-9
    assert abs(m.reduction_vs_type - (1 - 6 / 12)) < 1e-9


def test_reuses_supplied_result():
    module = _two_table_module()
    pt = analyze_pointsto(module)
    m = security_metrics(module, result=pt, label="custom")
    assert m.label == "custom"
    assert m.icall_sites == len(pt.sites)


def test_to_dict_site_detail():
    module = _two_table_module()
    m = security_metrics(module)
    flat = m.to_dict()
    assert "sites" not in flat
    detailed = m.to_dict(include_sites=True)
    assert len(detailed["sites"]) == 2
    ids = [s["site_id"] for s in detailed["sites"]]
    assert ids == sorted(ids)
    for site in detailed["sites"]:
        assert site["residual"] <= site["census_bound"]
        assert site["observed"] <= site["residual"]


def test_air_zero_without_census():
    module = Module("nocensus")
    module.add_function(build_leaf("t", num_params=0))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.icall({"t": 1}, num_args=0, asm=True)
    b.ret()
    module.add_function(caller)
    m = security_metrics(module)
    assert m.bounded_sites == 0
    assert m.air == 0.0
    assert m.reduction_vs_type == 0.0


def test_kernel_metrics_show_strong_reduction():
    module = build_kernel(SmallSpec())
    m = security_metrics(module)
    assert m.icall_sites > 0
    assert m.bounded_sites == m.icall_sites
    assert m.fallback_sites == 0
    # The headline claims: points-to bounds beat both the census and
    # the type-based bound by a wide margin on the generated kernel.
    assert m.air > 0.9
    assert m.reduction_vs_type > 0.5
    assert m.residual_total < m.type_bound_total


def test_metrics_stable_under_hardening():
    from repro.core.config import PibeConfig
    from repro.core.pipeline import PibePipeline
    from repro.hardening.defenses import DefenseConfig

    pipeline = PibePipeline(build_kernel(SmallSpec()))
    build = pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.all_defenses())
    )
    m = security_metrics(build.module, label=build.label)
    assert m.label == build.label
    assert m.bounded_sites == m.icall_sites
    assert m.air > 0.9
