"""Module diffing."""

from repro.analysis.diff import diff_modules
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module

import copy


def _module():
    module = Module("m")
    module.add_function(build_leaf("leaf", work=3))
    func = Function("f")
    b = IRBuilder(func)
    b.call("leaf")
    b.ret()
    module.add_function(func)
    return module


def test_identical_modules_diff_clean():
    module = _module()
    diff = diff_modules(module, copy.deepcopy(module))
    assert diff.size_delta == 0
    assert diff.added_functions == []
    assert diff.removed_functions == []
    assert diff.grown == [] and diff.shrunk == []
    assert diff.unchanged == 2


def test_added_and_removed_functions():
    before = _module()
    after = copy.deepcopy(before)
    after.add_function(build_leaf("newcomer"))
    del after.functions["leaf"]
    diff = diff_modules(before, after)
    assert diff.added_functions == ["newcomer"]
    assert diff.removed_functions == ["leaf"]


def test_growth_and_shrinkage_tracked():
    before = _module()
    after = copy.deepcopy(before)
    after.get("f").entry.instructions.insert(
        0, after.get("leaf").entry.instructions[0].clone()
    )
    del after.get("leaf").entry.instructions[0]
    diff = diff_modules(before, after)
    assert [d.name for d in diff.grown] == ["f"]
    assert [d.name for d in diff.shrunk] == ["leaf"]
    assert diff.grown[0].delta == 1
    assert diff.size_delta == 0


def test_defense_counts_in_diff():
    before = _module()
    after = copy.deepcopy(before)
    HardeningPass(DefenseConfig.all_defenses()).run(after)
    diff = diff_modules(before, after)
    assert diff.defense_counts["ret_retpoline_lvi"] == (0, 2)


def test_summary_mentions_key_facts():
    before = _module()
    after = copy.deepcopy(before)
    after.add_function(build_leaf("extra", work=50))
    text = diff_modules(before, after).summary()
    assert "size:" in text
    assert "+1" in text
