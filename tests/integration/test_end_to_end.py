"""End-to-end integration: the full PIBE story on one kernel.

Profile -> optimize -> harden -> verify that (a) the hardened-optimized
kernel is much faster than the hardened-unoptimized one, (b) security
coverage is preserved, and (c) the whole flow is reproducible.
"""

import pytest

from repro.core.config import PibeConfig
from repro.core.report import build_overhead_report
from repro.cpu.attacks import LVIAttack, Ret2specAttack, SpectreV2Attack
from repro.engine.interpreter import Interpreter
from repro.cpu.timing import TimingModel
from repro.hardening.defenses import DefenseConfig
from repro.ir.types import ATTR_ASM_SITE
from repro.workloads.lmbench import BY_NAME
from repro.workloads.base import measure_benchmark

BENCHES = [BY_NAME[n] for n in ("read", "write", "pipe", "select_tcp", "fork/exit")]


def _measure(module, ops_scale=0.15):
    return {
        b.name: measure_benchmark(
            module, b, ops=max(1, int(b.default_ops * ops_scale)), seed=11
        ).cycles_per_op
        for b in BENCHES
    }


def test_order_of_magnitude_overhead_reduction(
    small_pipeline, hardened_build, unoptimized_hardened_build
):
    lto = small_pipeline.build_variant(PibeConfig.lto_baseline())
    base = _measure(lto.module)
    unopt = build_overhead_report(
        "unopt", base, _measure(unoptimized_hardened_build.module)
    ).geomean
    opt = build_overhead_report(
        "pibe", base, _measure(hardened_build.module)
    ).geomean
    assert unopt > 0.8          # comprehensive defenses are brutal
    assert opt < unopt / 4      # PIBE reduces them by a large factor


def test_security_parity_between_optimized_and_unoptimized(
    hardened_build, unoptimized_hardened_build
):
    """Optimization must not weaken protection: the only hijackable sites
    in both images are the inline-assembly residue."""
    for attack in (SpectreV2Attack(), Ret2specAttack(), LVIAttack()):
        for build in (hardened_build, unoptimized_hardened_build):
            for func_name, inst in attack.hijackable_sites(build.module):
                func = build.module.get(func_name)
                assert (
                    not func.is_instrumentable
                    or inst.attrs.get(ATTR_ASM_SITE)
                ), (attack.vector, func_name)


def test_defended_branch_execution_drops(
    hardened_build, unoptimized_hardened_build
):
    def defended_events(module):
        timing = TimingModel(module)
        interp = Interpreter(module, [timing], seed=3)
        for bench in BENCHES:
            bench.run(interp, ops=20)
        return timing.counters["defended_rets"], timing.counters["defended_icalls"]

    unopt_rets, unopt_icalls = defended_events(unoptimized_hardened_build.module)
    opt_rets, opt_icalls = defended_events(hardened_build.module)
    # the paper's core claim: most defended branch *executions* disappear
    assert opt_rets < unopt_rets * 0.3
    assert opt_icalls < unopt_icalls * 0.5


def test_pgo_without_defenses_speeds_up(small_pipeline, small_profile):
    lto = small_pipeline.build_variant(PibeConfig.lto_baseline())
    pgo = small_pipeline.build_variant(
        PibeConfig.pibe_baseline(), small_profile
    )
    base = _measure(lto.module)
    fast = _measure(pgo.module)
    geomean = build_overhead_report("pgo", base, fast).geomean
    assert geomean < 0.0


def test_pipeline_reproducibility(small_pipeline, small_profile):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    a = small_pipeline.build_variant(config, small_profile)
    b = small_pipeline.build_variant(config, small_profile)
    assert a.module.size() == b.module.size()
    assert len(a.module) == len(b.module)
    assert _measure(a.module) == _measure(b.module)


def test_image_grows_but_stays_bounded(
    small_pipeline, hardened_build, unoptimized_hardened_build
):
    from repro.analysis.sizes import text_size_bytes

    unopt = text_size_bytes(unoptimized_hardened_build.module)
    opt = text_size_bytes(hardened_build.module)
    growth = opt / unopt - 1.0
    # the tiny test kernel's hot share is proportionally larger than the
    # default spec's (the paper-scale 5-37% check runs in the benchmarks)
    assert 0.0 < growth < 1.5


def test_defense_cycle_share_collapses_under_pibe(
    hardened_build, unoptimized_hardened_build
):
    """The quantity PIBE minimizes — cycles spent executing defense
    instrumentation — drops by an order of magnitude."""

    def defense_share(module):
        timing = TimingModel(module)
        interp = Interpreter(module, [timing], seed=5)
        for bench in BENCHES:
            bench.run(interp, ops=20)
        return timing.total_defense_cycles, timing.cycles

    unopt_def, unopt_total = defense_share(unoptimized_hardened_build.module)
    opt_def, opt_total = defense_share(hardened_build.module)
    assert unopt_def / unopt_total > 0.4      # defenses dominate unoptimized
    assert opt_def < unopt_def * 0.25         # PIBE removes most of it
    # the residual defended share is small on the tiny test kernel too
    assert opt_def / opt_total < unopt_def / unopt_total / 1.5
