"""Bench-record hygiene: clean git hashes, dirty flags, strict mode and
append-style record history."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "benchmarks")
)

from _meta import (  # noqa: E402
    STRICT_GIT_ENV,
    DirtyTreeError,
    git_metadata,
    stamp,
    strict_git_enabled,
    write_record,
)


def test_git_metadata_hash_is_clean():
    meta = git_metadata()
    assert set(meta) == {"git", "dirty"}
    assert isinstance(meta["dirty"], bool)
    if meta["git"] is not None:
        # never a mangled "<hash>-dirty" string
        assert "-" not in meta["git"]
        int(meta["git"], 16)  # short hashes are hex


def test_git_metadata_ignores_bench_record_files(monkeypatch):
    import _meta

    def fake_git(*args):
        if args[0] == "rev-parse":
            return "abc1234"
        return " M BENCH_lint.json\n M benchmarks/BENCH_x.json"

    monkeypatch.setattr(_meta, "_git", fake_git)
    assert git_metadata() == {"git": "abc1234", "dirty": False}

    def fake_git_dirty(*args):
        if args[0] == "rev-parse":
            return "abc1234"
        return " M BENCH_lint.json\n M src/repro/ir/module.py"

    monkeypatch.setattr(_meta, "_git", fake_git_dirty)
    assert git_metadata() == {"git": "abc1234", "dirty": True}


def test_stamp_adds_provenance(monkeypatch):
    monkeypatch.delenv(STRICT_GIT_ENV, raising=False)
    record = {"benchmark": "x"}
    stamp(record)
    assert "git" in record and "dirty" in record
    assert "timestamp" in record


def test_stamp_strict_refuses_dirty_tree(monkeypatch):
    import _meta

    monkeypatch.setattr(
        _meta, "git_metadata", lambda: {"git": "abc1234", "dirty": True}
    )
    with pytest.raises(DirtyTreeError):
        stamp({}, strict=True)
    # non-strict: recorded with the flag set
    record = stamp({}, strict=False)
    assert record["git"] == "abc1234" and record["dirty"] is True


def test_strict_env_switch(monkeypatch):
    monkeypatch.delenv(STRICT_GIT_ENV, raising=False)
    assert not strict_git_enabled()
    monkeypatch.setenv(STRICT_GIT_ENV, "0")
    assert not strict_git_enabled()
    monkeypatch.setenv(STRICT_GIT_ENV, "1")
    assert strict_git_enabled()


def test_write_record_appends_history(tmp_path):
    path = tmp_path / "BENCH_x.json"
    write_record(path, {"run": 1})
    write_record(path, {"run": 2})
    assert json.loads(path.read_text()) == [{"run": 1}, {"run": 2}]


def test_write_record_upgrades_legacy_single_object(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"run": 0}))
    write_record(path, {"run": 1})
    assert json.loads(path.read_text()) == [{"run": 0}, {"run": 1}]


def test_write_record_replaces_unreadable_file(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text("{corrupt")
    write_record(path, {"run": 1})
    assert json.loads(path.read_text()) == [{"run": 1}]
