"""Golden tests: emitted defense sequences match the paper's listings."""

import pytest

from repro.hardening.defenses import Defense
from repro.hardening.lowering import (
    SITE_SEQUENCES,
    THUNK_BODIES,
    THUNK_UNITS,
    lower_branch,
    required_thunks,
    site_expansion_units,
)
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


def test_retpoline_thunk_matches_listing4():
    body = THUNK_BODIES[Defense.RETPOLINE]
    text = "\n".join(body)
    # the structure of Listing 4
    assert "callq jump" in text
    assert "loop: pause" in text
    assert "lfence" in text
    assert "jmp loop" in text
    assert "mov %r11, (%rsp)" in text
    assert text.strip().endswith("retq")


def test_lvi_thunk_matches_listing5():
    body = THUNK_BODIES[Defense.LVI_CFI_FWD]
    assert body[1:] == ["  lfence", "  jmpq *%r11"]


def test_lvi_ret_sequence_matches_listing6():
    assert SITE_SEQUENCES[Defense.LVI_CFI_RET] == [
        "pop %rcx",
        "lfence",
        "jmpq *%rcx",
    ]


def test_fenced_retpoline_matches_listing7():
    body = THUNK_BODIES[Defense.FENCED_RETPOLINE]
    text = "\n".join(body)
    # Listing 7 adds the double-not + lfence before the ret
    assert text.count("notq (%rsp)") == 2
    idx_not = text.index("notq")
    idx_fence = text.rindex("lfence")
    idx_ret = text.rindex("retq")
    assert idx_not < idx_fence < idx_ret


def test_lower_unprotected_branches():
    assert lower_branch(Instruction(Opcode.ICALL)) == ["callq *%r11"]
    assert lower_branch(Instruction(Opcode.RET)) == ["retq"]
    assert lower_branch(Instruction(Opcode.IJUMP)) == ["jmpq *%rax"]


def test_lower_protected_branch_uses_site_sequence():
    inst = Instruction(Opcode.ICALL)
    inst.defense = Defense.RETPOLINE.value
    assert lower_branch(inst) == ["call __llvm_retpoline_r11"]
    ret = Instruction(Opcode.RET)
    ret.defense = Defense.RET_RETPOLINE.value
    assert lower_branch(ret)[0] == "callq jump"


def test_lower_non_branch_rejected():
    with pytest.raises(ValueError, match="not a lowerable branch"):
        lower_branch(Instruction(Opcode.ARITH))


def test_site_expansion_units():
    plain = Instruction(Opcode.RET)
    assert site_expansion_units(plain) == 0
    plain.defense = Defense.RET_RETPOLINE.value
    assert site_expansion_units(plain) == 5
    icall = Instruction(Opcode.ICALL)
    icall.defense = Defense.RETPOLINE.value
    assert site_expansion_units(icall) == 0  # thunk call replaces 1:1


def test_required_thunks():
    assert required_thunks([]) == []
    tags = [Defense.RETPOLINE.value, Defense.RET_RETPOLINE.value]
    assert required_thunks(tags) == [Defense.RETPOLINE]
    assert THUNK_UNITS[Defense.RETPOLINE] == 7
