"""Defense protection-class registry and its use by the speculation
rule: extension tags (FineIBT/PAC-style backends) plug in without rule
edits."""

from __future__ import annotations

import pytest

from repro.hardening.classes import (
    KNOWN_CLASSES,
    LVI,
    RET2SPEC,
    SPECTRE_V2,
    clear_extension_classes,
    defense_classes,
    is_class_registered,
    register_defense_classes,
    registry_snapshot,
    required_classes,
    tags_for_class,
    unregister_defense_classes,
)
from repro.hardening.defenses import Defense, DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.static import analyze_module


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    clear_extension_classes()


# -- registry semantics -------------------------------------------------------


def test_stock_tags_seeded_from_lowering_tables():
    assert SPECTRE_V2 in defense_classes(Defense.RETPOLINE.value)
    assert defense_classes(Defense.FENCED_RETPOLINE.value) >= {
        SPECTRE_V2,
        LVI,
    }
    assert RET2SPEC in defense_classes(Defense.RET_RETPOLINE.value)
    assert defense_classes(Defense.LVI_CFI_FWD.value) == frozenset({LVI})


def test_stock_tag_cannot_be_remapped():
    with pytest.raises(ValueError, match="stock defense tag"):
        register_defense_classes(Defense.RETPOLINE.value, {LVI})


def test_unknown_class_rejected():
    with pytest.raises(ValueError, match="unknown protection class"):
        register_defense_classes("fineibt", {"meltdown"})


def test_register_and_unregister_extension():
    assert not is_class_registered("fineibt")
    register_defense_classes("fineibt", {SPECTRE_V2, LVI})
    assert is_class_registered("fineibt")
    assert defense_classes("fineibt") == frozenset({SPECTRE_V2, LVI})
    assert "fineibt" in tags_for_class(SPECTRE_V2)
    unregister_defense_classes("fineibt")
    assert not is_class_registered("fineibt")
    assert defense_classes("fineibt") == frozenset()


def test_required_classes_follow_config():
    allcfg = DefenseConfig.all_defenses()
    assert set(required_classes(Opcode.ICALL, allcfg)) == {SPECTRE_V2, LVI}
    assert set(required_classes(Opcode.RET, allcfg)) == {RET2SPEC, LVI}
    none = DefenseConfig.none()
    assert required_classes(Opcode.ICALL, none) == []
    retp = DefenseConfig.retpolines_only()
    assert required_classes(Opcode.ICALL, retp) == [SPECTRE_V2]
    assert required_classes(Opcode.RET, retp) == []


def test_snapshot_is_canonical_and_tracks_registrations():
    before = registry_snapshot()
    assert before == tuple(sorted(before))
    register_defense_classes("pac_cfi", {SPECTRE_V2})
    after = registry_snapshot()
    assert after != before
    assert ("pac_cfi", (SPECTRE_V2,)) in after
    assert KNOWN_CLASSES == {SPECTRE_V2, RET2SPEC, LVI}


# -- speculation-rule integration ---------------------------------------------


def _hardened_module(config=None):
    module = Module("ext")
    module.add_function(build_leaf("a", num_params=1))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.icall({"a": 1}, num_args=1)
    b.ret()
    module.add_function(caller)
    HardeningPass(config or DefenseConfig.all_defenses()).run(module)
    return module


def _retag(module, opcode, tag):
    for inst in module.instructions():
        if inst.opcode == opcode and inst.defense is not None:
            inst.defense = tag
    module.bump_version()


def _errors(module):
    report = analyze_module(module, rules=["speculation-coverage"])
    return [d.code for d in report.errors()]


def test_covering_extension_tag_accepted_as_alternative_lowering():
    register_defense_classes("fineibt_lvi", {SPECTRE_V2, LVI})
    module = _hardened_module()
    _retag(module, Opcode.ICALL, "fineibt_lvi")
    assert _errors(module) == []


def test_undercovering_extension_tag_is_pibe507():
    # Protects forward edges but not LVI, while the config demands both.
    register_defense_classes("fineibt", {SPECTRE_V2})
    module = _hardened_module()
    _retag(module, Opcode.ICALL, "fineibt")
    codes = _errors(module)
    assert "PIBE507" in codes


def test_extension_tag_on_wrong_edge_kind_is_pibe507():
    register_defense_classes("fineibt", {SPECTRE_V2})
    module = _hardened_module()
    _retag(module, Opcode.RET, "fineibt")
    codes = _errors(module)
    assert "PIBE507" in codes


def test_unregistered_tag_still_pibe506():
    module = _hardened_module()
    _retag(module, Opcode.ICALL, "mystery")
    assert "PIBE506" in _errors(module)


def test_registry_change_invalidates_lint_cache(tmp_path):
    from repro.evaluation.cache import DiskCache
    from repro.static import lint_module

    cache = DiskCache(tmp_path / "cache")
    register_defense_classes("fineibt_lvi", {SPECTRE_V2, LVI})
    module = _hardened_module()
    _retag(module, Opcode.ICALL, "fineibt_lvi")
    clean = lint_module(module, rules=["speculation-coverage"], cache=cache)
    assert not clean.errors()
    # Shrinking the tag's coverage must invalidate the cached verdict.
    register_defense_classes("fineibt_lvi", {SPECTRE_V2})
    dirty = lint_module(module, rules=["speculation-coverage"], cache=cache)
    assert dirty.stats["cache_misses"] > 0
    assert any(d.code == "PIBE507" for d in dirty.errors())
