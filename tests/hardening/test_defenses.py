"""Defense configuration: lowering selection and combination rules."""

import pytest

from repro.hardening.defenses import (
    Defense,
    DefenseConfig,
    LVI_SAFE,
    NonTransientDefense,
    RSB_SAFE,
    SPECTRE_V2_SAFE,
)


def test_forward_lowering_selection():
    assert DefenseConfig.none().forward_defense() is None
    assert (
        DefenseConfig.retpolines_only().forward_defense() == Defense.RETPOLINE
    )
    assert DefenseConfig.lvi_only().forward_defense() == Defense.LVI_CFI_FWD
    # combining retpolines with LVI requires the fenced sequence (Sec 6.3)
    assert (
        DefenseConfig(retpolines=True, lvi_cfi=True).forward_defense()
        == Defense.FENCED_RETPOLINE
    )
    assert (
        DefenseConfig.all_defenses().forward_defense()
        == Defense.FENCED_RETPOLINE
    )


def test_backward_lowering_selection():
    assert DefenseConfig.none().backward_defense() is None
    assert (
        DefenseConfig.ret_retpolines_only().backward_defense()
        == Defense.RET_RETPOLINE
    )
    assert DefenseConfig.lvi_only().backward_defense() == Defense.LVI_CFI_RET
    assert (
        DefenseConfig.all_defenses().backward_defense()
        == Defense.RET_RETPOLINE_LVI
    )


def test_retpolines_alone_leave_returns_unprotected():
    config = DefenseConfig.retpolines_only()
    assert config.backward_defense() is None


def test_jump_table_disabling_rule():
    # LLVM disables jump tables when retpolines or LVI are on (Sec 5.1)
    assert DefenseConfig.retpolines_only().disables_jump_tables
    assert DefenseConfig.lvi_only().disables_jump_tables
    assert not DefenseConfig.ret_retpolines_only().disables_jump_tables
    assert not DefenseConfig.none().disables_jump_tables


def test_safety_set_memberships():
    # LVI-CFI's bare indirect jump is still BTB-predicted: NOT V2-safe
    assert Defense.LVI_CFI_FWD.value not in SPECTRE_V2_SAFE
    assert Defense.RETPOLINE.value in SPECTRE_V2_SAFE
    assert Defense.FENCED_RETPOLINE.value in SPECTRE_V2_SAFE
    # plain retpolines don't fence loads: NOT LVI-safe
    assert Defense.RETPOLINE.value not in LVI_SAFE
    assert Defense.FENCED_RETPOLINE.value in LVI_SAFE
    assert Defense.RET_RETPOLINE.value in RSB_SAFE
    assert Defense.LVI_CFI_RET.value not in RSB_SAFE


def test_labels():
    assert DefenseConfig.none().label() == "none"
    assert DefenseConfig.all_defenses().label() == "all-defenses"
    assert "retpolines" in DefenseConfig.retpolines_only().label()
    labelled = DefenseConfig(
        nontransient=frozenset({NonTransientDefense.LLVM_CFI})
    ).label()
    assert "llvm_cfi" in labelled


def test_any_transient_flag():
    assert not DefenseConfig.none().any_transient
    assert DefenseConfig.retpolines_only().any_transient
    assert DefenseConfig.lvi_only().any_transient


def test_config_is_hashable_and_frozen():
    a = DefenseConfig.all_defenses()
    b = DefenseConfig.all_defenses()
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(AttributeError):
        a.retpolines = False
