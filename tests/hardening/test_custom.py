"""Custom defense registration and integration across the pipeline."""

import pytest

from repro.cpu.attacks import LVIAttack, Ret2specAttack, SpectreV2Attack
from repro.cpu.costs import DEFAULT_COSTS
from repro.hardening.custom import (
    CustomDefense,
    CustomHardeningPass,
    clear_registry,
    custom_defense_cost,
    register_defense,
    registered_defense,
)
from repro.hardening.lowering import site_expansion_units
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_registry()
    yield
    clear_registry()


PSCFI_FWD = CustomDefense(
    name="pscfi_fwd",
    kind="forward",
    cycles=35.0,
    site_expansion_units=4,
    protects=frozenset({"spectre_v2", "lvi"}),
)
PSCFI_RET = CustomDefense(
    name="pscfi_ret",
    kind="backward",
    cycles=28.0,
    site_expansion_units=4,
    protects=frozenset({"ret2spec", "lvi"}),
)


def _module():
    module = Module("m")
    module.add_function(build_leaf("t"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"t": 1})
    b.ret()
    module.add_function(func)
    return module


def test_validation():
    with pytest.raises(ValueError, match="kind"):
        CustomDefense("x", kind="sideways", cycles=1.0)
    with pytest.raises(ValueError, match="unknown attack vectors"):
        CustomDefense(
            "x", kind="forward", cycles=1.0, protects=frozenset({"rowhammer"})
        )
    with pytest.raises(ValueError, match="non-negative"):
        CustomDefense("x", kind="forward", cycles=-1.0)


def test_registration_idempotent_and_conflicting():
    register_defense(PSCFI_FWD)
    register_defense(PSCFI_FWD)  # same spec: fine
    assert registered_defense("pscfi_fwd") == PSCFI_FWD
    with pytest.raises(ValueError, match="already registered"):
        register_defense(
            CustomDefense("pscfi_fwd", kind="forward", cycles=99.0)
        )


def test_cost_model_falls_back_to_registry():
    register_defense(PSCFI_FWD)
    assert DEFAULT_COSTS.defense_cost("pscfi_fwd") == 35.0
    assert custom_defense_cost("missing") is None
    with pytest.raises(KeyError):
        DEFAULT_COSTS.defense_cost("missing")


def test_custom_pass_tags_and_reports():
    module = _module()
    report = CustomHardeningPass(
        forward=PSCFI_FWD, backward=PSCFI_RET
    ).run(module)
    assert report.protected_icalls == 1
    assert report.protected_rets == 2
    icall = next(i for i in module.get("f").call_sites())
    assert icall.defense == "pscfi_fwd"
    assert site_expansion_units(icall) == 4


def test_kind_mismatch_rejected():
    with pytest.raises(ValueError, match="forward"):
        CustomHardeningPass(forward=PSCFI_RET)
    with pytest.raises(ValueError, match="backward"):
        CustomHardeningPass(backward=PSCFI_FWD)


def test_attack_census_respects_custom_protection():
    module = _module()
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(module)
    assert SpectreV2Attack().hijackable_sites(module) == []
    assert Ret2specAttack().hijackable_sites(module) == []
    assert LVIAttack().hijackable_sites(module) == []


def test_partial_protection_census():
    # a forward-only defense that does NOT stop LVI
    weak = CustomDefense(
        "weak_fwd", kind="forward", cycles=5.0,
        protects=frozenset({"spectre_v2"}),
    )
    module = _module()
    CustomHardeningPass(forward=weak).run(module)
    assert SpectreV2Attack().hijackable_sites(module) == []
    # returns unprotected, icall not LVI-fenced
    assert len(Ret2specAttack().hijackable_sites(module)) == 2
    assert len(LVIAttack().hijackable_sites(module)) == 3


def test_timing_charges_custom_cost():
    import dataclasses

    from repro.cpu.timing import TimingModel
    from repro.engine.interpreter import Interpreter

    costs = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)
    plain = _module()
    custom = _module()
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(custom)

    def cycles(module):
        timing = TimingModel(module, costs=costs, model_icache=False)
        Interpreter(module, [timing], seed=1).run_function("f", times=10)
        return timing.cycles

    # 1 icall (35) + 2 rets (28 each) per run; the plain module pays one
    # cold BTB miss (12) that the flat-cost hardened icall does not
    assert cycles(custom) - cycles(plain) == pytest.approx(
        10 * (35 + 56) - DEFAULT_COSTS.btb_miss
    )


def test_pibe_reduces_custom_defense_overhead(small_pipeline, small_profile):
    """The paper's claim: the approach applies to any high-overhead
    defense (e.g. path-sensitive CFI)."""
    import copy

    from repro.core.config import PibeConfig
    from repro.workloads.base import measure_benchmark
    from repro.workloads.lmbench import BY_NAME

    register_defense(PSCFI_FWD)
    register_defense(PSCFI_RET)

    lto = small_pipeline.build_variant(PibeConfig.lto_baseline())
    unopt = copy.deepcopy(lto.module)
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(unopt)
    optimized = small_pipeline.build_variant(
        PibeConfig.pibe_baseline(), small_profile
    )
    opt = copy.deepcopy(optimized.module)
    CustomHardeningPass(forward=PSCFI_FWD, backward=PSCFI_RET).run(opt)

    bench = BY_NAME["read"]
    base = measure_benchmark(lto.module, bench, ops=60).cycles_per_op
    slow = measure_benchmark(unopt, bench, ops=60).cycles_per_op
    fast = measure_benchmark(opt, bench, ops=60).cycles_per_op
    unopt_overhead = slow / base - 1
    opt_overhead = fast / base - 1
    assert unopt_overhead > 0.5
    assert opt_overhead < unopt_overhead / 3
