"""HardeningPass: coverage, exemptions, census accounting."""

from repro.hardening.defenses import Defense, DefenseConfig
from repro.hardening.harden import METADATA_KEY, HardeningPass, applied_config
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode


def _mixed_module():
    module = Module("m")
    module.add_function(build_leaf("t"))

    normal = Function("normal")
    b = IRBuilder(normal)
    b.icall({"t": 1})
    b.ret()
    module.add_function(normal)

    asm_fn = Function("asm_fn", attrs={FunctionAttr.INLINE_ASM})
    b = IRBuilder(asm_fn)
    b.icall({"t": 1})
    b.ijump()
    module.add_function(asm_fn)

    boot = Function("boot", attrs={FunctionAttr.BOOT_ONLY})
    b = IRBuilder(boot)
    b.ret()
    module.add_function(boot)

    asm_site_fn = Function("pv_wrap")
    b = IRBuilder(asm_site_fn)
    b.icall({"t": 1}, asm=True)
    b.ret()
    module.add_function(asm_site_fn)
    return module


def test_all_defenses_coverage():
    module = _mixed_module()
    report = HardeningPass(DefenseConfig.all_defenses()).run(module)
    # normal icall protected; asm-function icall and asm-site icall are not
    assert report.protected_icalls == 1
    assert report.vulnerable_icalls == 2
    # the opaque trampoline ijump stays vulnerable
    assert report.vulnerable_ijumps == 1
    # every non-boot ret protected (objtool-style), boot ret exempt
    assert report.vulnerable_rets == 0
    assert report.boot_only_rets == 1
    assert report.protected_rets == 3  # t, normal, pv_wrap (asm_fn has no ret)


def test_tags_applied_to_instructions():
    module = _mixed_module()
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    normal_icall = next(
        i for i in module.get("normal").instructions() if i.opcode == Opcode.ICALL
    )
    assert normal_icall.defense == Defense.FENCED_RETPOLINE.value
    ret = module.get("t").returns()[0]
    assert ret.defense == Defense.RET_RETPOLINE_LVI.value
    asm_icall = next(
        i for i in module.get("pv_wrap").instructions() if i.opcode == Opcode.ICALL
    )
    assert asm_icall.defense is None


def test_no_defense_config_tags_nothing():
    module = _mixed_module()
    report = HardeningPass(DefenseConfig.none()).run(module)
    assert report.protected_icalls == 0
    assert report.protected_rets == 0
    assert all(i.defense is None for i in module.instructions())


def test_retpolines_only_leaves_rets_alone():
    module = _mixed_module()
    report = HardeningPass(DefenseConfig.retpolines_only()).run(module)
    assert report.protected_icalls == 1
    assert report.protected_rets == 0
    assert report.vulnerable_rets > 0


def test_metadata_records_config():
    module = _mixed_module()
    config = DefenseConfig.lvi_only()
    HardeningPass(config).run(module)
    assert module.metadata[METADATA_KEY] is config
    assert applied_config(module) is config


def test_applied_config_defaults_to_none():
    module = Module("m")
    assert applied_config(module) == DefenseConfig.none()


def test_sites_by_defense_histogram():
    module = _mixed_module()
    report = HardeningPass(DefenseConfig.all_defenses()).run(module)
    assert report.sites_by_defense[Defense.FENCED_RETPOLINE.value] == 1
    assert report.sites_by_defense[Defense.RET_RETPOLINE_LVI.value] == 3


def test_jump_table_ijump_protected_when_targets_known():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    case = b.new_block("case")
    func.entry.append(Instruction(Opcode.IJUMP, targets=(case.label,)))
    b.at(case).ret()
    module.add_function(func)
    report = HardeningPass(DefenseConfig.retpolines_only()).run(module)
    assert report.protected_ijumps == 1
    assert report.vulnerable_ijumps == 0
