"""Staged build engine: bit-identity with monolithic builds, prefix
sharing, disk persistence and copy-on-write discipline."""

import json

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import (
    PibePipeline,
    PrefixKey,
    deterministic_build_ids,
)
from repro.evaluation.cache import DiskCache
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.ir.printer import format_module
from repro.ir.validate import validate_module

DEFENSE_SWEEP = (
    DefenseConfig.none(),
    DefenseConfig.retpolines_only(),
    DefenseConfig.ret_retpolines_only(),
    DefenseConfig.lvi_only(),
    DefenseConfig.all_defenses(),
)


def _fingerprint(module) -> str:
    return module_fingerprint(module, include_sites=True)


def _build(pipeline, config, profile, staged):
    """One variant under a fresh id checkpoint, so staged and monolithic
    builds mint identical site ids and inline labels."""
    with deterministic_build_ids():
        return pipeline.build_variant(config, profile, staged=staged)


@pytest.fixture()
def fresh_pipeline(small_kernel):
    """Bit-identity needs the prefix built *inside* the test's own id
    checkpoint — a session-shared pipeline would serve memory-cached
    prefixes minted under some earlier allocator state."""
    return PibePipeline(small_kernel)


# -- differential: staged output must be bit-identical ------------------------


@pytest.mark.parametrize(
    "defenses", DEFENSE_SWEEP, ids=lambda d: d.label()
)
def test_staged_bit_identical_to_monolithic(
    fresh_pipeline, small_profile, defenses
):
    config = PibeConfig.lax(defenses)
    mono = _build(fresh_pipeline, config, small_profile, staged=False)
    staged = _build(fresh_pipeline, config, small_profile, staged=True)
    assert _fingerprint(staged.module) == _fingerprint(mono.module)
    assert format_module(staged.module) == format_module(mono.module)
    validate_module(staged.module)


def test_staged_unoptimized_bit_identical(fresh_pipeline):
    config = PibeConfig.hardened(DefenseConfig.retpolines_only())
    mono = _build(fresh_pipeline, config, None, staged=False)
    staged = _build(fresh_pipeline, config, None, staged=True)
    assert _fingerprint(staged.module) == _fingerprint(mono.module)
    assert format_module(staged.module) == format_module(mono.module)


def test_staged_reports_match_monolithic(fresh_pipeline, small_profile):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    mono = _build(fresh_pipeline, config, small_profile, staged=False)
    staged = _build(fresh_pipeline, config, small_profile, staged=True)
    assert set(staged.reports) == set(mono.reports)
    assert (
        staged.reports["hardening"].sites_by_defense
        == mono.reports["hardening"].sites_by_defense
    )
    assert (
        staged.reports["pibe-inliner"].inlined_weight
        == mono.reports["pibe-inliner"].inlined_weight
    )


# -- prefix sharing ------------------------------------------------------------


def test_defense_sweep_shares_prefixes(small_kernel, small_profile):
    pipeline = PibePipeline(small_kernel)
    for defenses in DEFENSE_SWEEP:
        pipeline.build_variant(
            PibeConfig.lax(defenses), small_profile, staged=True
        )
    # jump-table legality is the only defense facet inside the prefix:
    # {none, ret-retpolines} allow tables, the other three do not.
    assert pipeline.stats["staged_builds"] == 5
    assert pipeline.stats["prefix_builds"] == 2
    assert pipeline.stats["prefix_memory_hits"] == 3
    assert pipeline.stats["monolithic_builds"] == 0


def test_prefix_key_ignores_defense_selection():
    lax_none = PrefixKey.from_config(PibeConfig.lax(DefenseConfig.none()))
    lax_rr = PrefixKey.from_config(
        PibeConfig.lax(DefenseConfig.ret_retpolines_only())
    )
    lax_ret = PrefixKey.from_config(
        PibeConfig.lax(DefenseConfig.retpolines_only())
    )
    lax_all = PrefixKey.from_config(
        PibeConfig.lax(DefenseConfig.all_defenses())
    )
    assert lax_none == lax_rr  # both keep jump tables
    assert lax_ret == lax_all  # both disable them
    assert lax_none != lax_ret


def test_prefix_key_drops_budget_facets_when_unoptimized():
    a = PrefixKey.from_config(
        PibeConfig.hardened(DefenseConfig.retpolines_only())
    )
    assert a.icp_budget is None and a.inline_budget is None
    assert not a.lax_heuristics


def test_validate_mode_forces_monolithic(small_pipeline, small_profile):
    before = small_pipeline.stats["monolithic_builds"]
    small_pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.retpolines_only()),
        small_profile,
        validate=True,
    )
    assert small_pipeline.stats["monolithic_builds"] == before + 1


def test_variant_reports_are_private(small_kernel, small_profile):
    pipeline = PibePipeline(small_kernel)
    config = PibeConfig.lax(DefenseConfig.retpolines_only())
    first = pipeline.build_variant(config, small_profile, staged=True)
    first.reports["pibe-inliner"].inlined_weight = -1
    second = pipeline.build_variant(config, small_profile, staged=True)
    assert second.reports["pibe-inliner"].inlined_weight != -1


def test_staged_baseline_never_mutated(small_kernel, small_profile):
    pipeline = PibePipeline(small_kernel)
    fp_before = _fingerprint(small_kernel)
    for defenses in DEFENSE_SWEEP:
        pipeline.build_variant(
            PibeConfig.lax(defenses), small_profile, staged=True
        )
    assert _fingerprint(small_kernel) == fp_before


# -- disk persistence ----------------------------------------------------------


def test_disk_warm_prefix_is_bit_identical(
    tmp_path, small_kernel, small_profile
):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    cache = DiskCache(tmp_path)

    cold_pipeline = PibePipeline(small_kernel, cache=cache)
    cold = _build(cold_pipeline, config, small_profile, staged=True)
    assert cold_pipeline.stats["prefix_builds"] == 1

    warm_pipeline = PibePipeline(small_kernel, cache=cache)
    warm = _build(warm_pipeline, config, small_profile, staged=True)
    assert warm_pipeline.stats["prefix_disk_hits"] == 1
    assert warm_pipeline.stats["prefix_builds"] == 0
    assert cache.stats()["by_kind"]["prefix"]["hits"] == 1

    assert _fingerprint(warm.module) == _fingerprint(cold.module)
    assert format_module(warm.module) == format_module(cold.module)
    # reports survive the codec round trip
    assert json.dumps(cold.reports, default=repr, sort_keys=True) == json.dumps(
        warm.reports, default=repr, sort_keys=True
    )


def test_tampered_prefix_payload_is_rebuilt(
    tmp_path, small_kernel, small_profile
):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    cache = DiskCache(tmp_path)
    cold_pipeline = PibePipeline(small_kernel, cache=cache)
    cold = _build(cold_pipeline, config, small_profile, staged=True)

    (entry,) = (tmp_path / "prefix").glob("*.json")
    payload = json.loads(entry.read_text())
    payload["header"]["function_order"].reverse()  # payload_sha now stale
    entry.write_text(json.dumps(payload))

    warm_pipeline = PibePipeline(small_kernel, cache=cache)
    warm = _build(warm_pipeline, config, small_profile, staged=True)
    # content hash mismatch -> treated as a miss, prefix rebuilt; the
    # corrupt header is quarantined and counted, like any corrupt entry
    assert warm_pipeline.stats["prefix_disk_hits"] == 0
    assert warm_pipeline.stats["prefix_builds"] == 1
    assert warm_pipeline.stats["prefix_decode_failures"] == 1
    # the tampered header was moved aside (the slot now holds the rebuild)
    assert (cache.quarantine_dir() / f"prefix-{entry.stem}.json").exists()
    assert _fingerprint(warm.module) == _fingerprint(cold.module)


def test_profile_identity_keys_prefix(tmp_path, small_kernel, small_profile):
    from repro.workloads.lmbench import lmbench_workload

    cache = DiskCache(tmp_path)
    config = PibeConfig.lax(DefenseConfig.retpolines_only())
    pipeline = PibePipeline(small_kernel, cache=cache)
    pipeline.build_variant(config, small_profile, staged=True)

    other_profile = PibePipeline(small_kernel).profile(
        lmbench_workload(ops_scale=0.01), iterations=1
    )
    assert other_profile.digest() != small_profile.digest()
    pipeline.build_variant(config, other_profile, staged=True)
    # a different profile must not reuse the first prefix
    assert pipeline.stats["prefix_builds"] == 2
