"""PibeConfig named configurations and labels."""

import pytest

from repro.core.config import (
    KERNEL_CALLEE_THRESHOLD,
    KERNEL_CALLER_THRESHOLD,
    PibeConfig,
)
from repro.hardening.defenses import DefenseConfig


def test_lto_baseline_is_unoptimized_and_undefended():
    config = PibeConfig.lto_baseline()
    assert not config.optimized
    assert not config.defenses.any_transient


def test_pibe_baseline_is_pgo_without_defenses():
    config = PibeConfig.pibe_baseline()
    assert config.optimized
    assert config.lax_heuristics
    assert not config.defenses.any_transient


def test_lax_configuration_matches_paper():
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    assert config.icp_budget == pytest.approx(0.999999)
    assert config.inline_budget == pytest.approx(0.999999)
    assert config.lax_heuristics


def test_default_thresholds_are_kernel_scaled():
    config = PibeConfig()
    assert config.caller_threshold == KERNEL_CALLER_THRESHOLD == 2_000
    assert config.callee_threshold == KERNEL_CALLEE_THRESHOLD == 450


def test_paper_thresholds_can_be_requested():
    config = PibeConfig(caller_threshold=12_000, callee_threshold=3_000)
    assert config.caller_threshold == 12_000


def test_labels_disambiguate_configs():
    a = PibeConfig.hardened(DefenseConfig.all_defenses(), icp_budget=0.99)
    b = PibeConfig.hardened(DefenseConfig.all_defenses(), icp_budget=0.999)
    assert a.label() != b.label()
    assert "all-defenses" in a.label()
    lax = PibeConfig.lax(DefenseConfig.lvi_only())
    assert "lax" in lax.label()
    default = PibeConfig(
        defenses=DefenseConfig.none(),
        icp_budget=0.99,
        inline_budget=0.99,
        use_default_inliner=True,
    )
    assert "default-inliner" in default.label()


def test_config_frozen_and_hashable():
    a = PibeConfig.lax(DefenseConfig.all_defenses())
    b = PibeConfig.lax(DefenseConfig.all_defenses())
    assert a == b
    assert hash(a) == hash(b)
