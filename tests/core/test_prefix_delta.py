"""Delta prefix engine: budget ladders derived from a shared decision
basis must be bit-identical to cold builds, chunked persistence must
dedup across entries and quarantine corrupt chunks, and the prewarm path
must hand prefixes over through the disk cache."""

import json

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import (
    PibePipeline,
    deterministic_build_ids,
)
from repro.evaluation.cache import DiskCache
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.ir.printer import format_module
from repro.ir.validate import validate_module
from repro.kernel.spec import SmallSpec

#: Budget ladder: the one-profile-many-budgets workflow the delta
#: engine exists for.
LADDER = (0.5, 0.9, 0.999999)


def _fp(module) -> str:
    return module_fingerprint(module, include_sites=True)


def _build(pipeline, config, profile):
    with deterministic_build_ids():
        return pipeline.build_variant(config, profile, staged=True)


def _ladder_configs(defenses, **overrides):
    return [
        PibeConfig(
            defenses=defenses,
            icp_budget=budget,
            inline_budget=budget,
            **overrides,
        )
        for budget in LADDER
    ]


# -- delta == cold bit-identity ------------------------------------------------


@pytest.mark.parametrize(
    "defenses",
    # none keeps jump tables, retpolines disables them: both decision
    # basis axes.
    [DefenseConfig.none(), DefenseConfig.retpolines_only()],
    ids=lambda d: d.label(),
)
def test_delta_ladder_bit_identical_to_cold(
    small_kernel, small_profile, defenses
):
    delta = PibePipeline(small_kernel)
    cold = PibePipeline(small_kernel, incremental=False)
    for config in _ladder_configs(defenses, lax_heuristics=True):
        d = _build(delta, config, small_profile)
        c = _build(cold, config, small_profile)
        validate_module(d.module)
        assert _fp(d.module) == _fp(c.module)
        assert format_module(d.module) == format_module(c.module)
        assert json.dumps(
            d.reports, default=repr, sort_keys=True
        ) == json.dumps(c.reports, default=repr, sort_keys=True)
    assert delta.stats["prefix_delta_builds"] == len(LADDER)
    assert cold.stats["prefix_delta_builds"] == 0
    assert cold.stats["prefix_builds"] == len(LADDER)


def test_delta_default_inliner_bit_identical(small_kernel, small_profile):
    delta = PibePipeline(small_kernel)
    cold = PibePipeline(small_kernel, incremental=False)
    configs = _ladder_configs(
        DefenseConfig.all_defenses(), use_default_inliner=True
    )
    for config in configs:
        d = _build(delta, config, small_profile)
        c = _build(cold, config, small_profile)
        assert _fp(d.module) == _fp(c.module)
        assert format_module(d.module) == format_module(c.module)
    assert delta.stats["prefix_delta_builds"] == len(LADDER)


def test_delta_strict_heuristics_bit_identical(small_kernel, small_profile):
    delta = PibePipeline(small_kernel)
    cold = PibePipeline(small_kernel, incremental=False)
    config = PibeConfig.hardened(
        DefenseConfig.all_defenses(), icp_budget=0.99, inline_budget=0.99
    )
    d = _build(delta, config, small_profile)
    c = _build(cold, config, small_profile)
    assert _fp(d.module) == _fp(c.module)
    assert format_module(d.module) == format_module(c.module)


def test_ladder_shares_one_decision_basis(small_kernel, small_profile):
    pipeline = PibePipeline(small_kernel)
    for config in _ladder_configs(DefenseConfig.none(), lax_heuristics=True):
        _build(pipeline, config, small_profile)
    assert len(pipeline._basis_memo) == 1
    # the other jump-table axis gets its own basis
    _build(
        pipeline,
        _ladder_configs(DefenseConfig.retpolines_only(), lax_heuristics=True)[
            0
        ],
        small_profile,
    )
    assert len(pipeline._basis_memo) == 2


# -- resident-function accounting (COW sharing) -------------------------------


def test_prefix_cache_info_counts_unique_functions(
    small_kernel, small_profile
):
    pipeline = PibePipeline(small_kernel)
    for config in _ladder_configs(DefenseConfig.none(), lax_heuristics=True):
        _build(pipeline, config, small_profile)
    info = pipeline.prefix_cache_info()
    assert info["entries"] == len(LADDER)
    naive = sum(
        len(entry.module.functions)
        for entry in pipeline._prefix_memo.values()
    )
    unique = len(
        {
            id(func)
            for entry in pipeline._prefix_memo.values()
            for func in entry.module.functions.values()
        }
    )
    assert info["resident_functions"] == unique
    # deltas share every untouched Function across the ladder, so the
    # unique count must sit well below the per-entry sum
    assert info["resident_functions"] < naive


# -- chunked persistence -------------------------------------------------------


def test_ladder_chunks_dedup_on_disk(tmp_path, small_kernel, small_profile):
    cache = DiskCache(tmp_path)
    pipeline = PibePipeline(small_kernel, cache=cache)
    configs = _ladder_configs(
        DefenseConfig.all_defenses(), lax_heuristics=True
    )
    for config in configs:
        _build(pipeline, config, small_profile)
    headers = list((tmp_path / "prefix").glob("*.json"))
    assert len(headers) == len(LADDER)
    group_refs = 0
    for header in headers:
        group_refs += len(json.loads(header.read_text())["groups"])
    chunk_files = len(list((tmp_path / "prefix-chunk").glob("*.json")))
    # content-addressed chunks: untouched windows are shared between
    # ladder entries, so distinct files < total group references
    assert 0 < chunk_files < group_refs


def test_warm_ladder_shares_decoded_chunks(
    tmp_path, small_kernel, small_profile
):
    cache = DiskCache(tmp_path)
    configs = _ladder_configs(
        DefenseConfig.all_defenses(), lax_heuristics=True
    )
    cold = PibePipeline(small_kernel, cache=cache)
    cold_builds = [_build(cold, c, small_profile) for c in configs]

    warm = PibePipeline(small_kernel, cache=cache)
    for config, cold_build in zip(configs, cold_builds):
        warm_build = _build(warm, config, small_profile)
        assert _fp(warm_build.module) == _fp(cold_build.module)
    assert warm.stats["prefix_disk_hits"] == len(LADDER)
    assert warm.stats["prefix_builds"] == 0
    # chunks shared between entries decode once and are served from the
    # in-process memo afterwards
    assert warm.stats["prefix_chunks_reused"] > 0


def test_tampered_chunk_is_quarantined_and_rebuilt(
    tmp_path, small_kernel, small_profile
):
    cache = DiskCache(tmp_path)
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    cold_pipeline = PibePipeline(small_kernel, cache=cache)
    cold = _build(cold_pipeline, config, small_profile)

    chunks = sorted((tmp_path / "prefix-chunk").glob("*.json"))
    victim = chunks[0]
    payload = json.loads(victim.read_text())
    payload["functions"] = payload["functions"][::-1]  # sha now stale
    victim.write_text(json.dumps(payload))

    warm_pipeline = PibePipeline(small_kernel, cache=cache)
    warm = _build(warm_pipeline, config, small_profile)
    assert warm_pipeline.stats["prefix_disk_hits"] == 0
    assert warm_pipeline.stats["prefix_builds"] == 1
    assert warm_pipeline.stats["prefix_decode_failures"] == 1
    assert (
        cache.quarantine_dir() / f"prefix-chunk-{victim.stem}.json"
    ).exists()
    assert _fp(warm.module) == _fp(cold.module)


# -- prefix state + prewarming -------------------------------------------------


def test_prefix_state_transitions(tmp_path, small_kernel, small_profile):
    cache = DiskCache(tmp_path)
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    pipeline = PibePipeline(small_kernel, cache=cache)
    assert pipeline.prefix_state(config, small_profile) == "cold"
    pipeline.warm_prefix(config, small_profile)
    assert pipeline.prefix_state(config, small_profile) == "memory"
    fresh = PibePipeline(small_kernel, cache=cache)
    assert fresh.prefix_state(config, small_profile) == "disk"
    # unoptimized configs have no prefix work to warm
    no_opt = PibeConfig.hardened(DefenseConfig.retpolines_only())
    pipeline.warm_prefix(no_opt, None)
    assert pipeline.stats["prefix_builds"] == 1


def test_prewarm_prefixes_hands_over_via_disk(tmp_path):
    settings = EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.05,
        jobs=2,
        cache_dir=str(tmp_path / "cache"),
    )
    configs = [PibeConfig.lto_baseline()] + _ladder_configs(
        DefenseConfig.retpolines_only(), lax_heuristics=True
    )
    with EvalContext(settings) as ctx:
        warmed = ctx.prewarm_prefixes(configs, "lmbench", jobs=2)
        assert warmed == len(LADDER)
        profile = ctx.profile("lmbench")
        for config in configs[1:]:
            assert ctx.pipeline.prefix_state(config, profile) == "disk"
        # everything warm: a second prewarm dispatches nothing
        assert ctx.prewarm_prefixes(configs, "lmbench", jobs=2) == 0
        build = ctx.variant(configs[1], "lmbench")
        validate_module(build.module)
        assert ctx.pipeline.stats["prefix_disk_hits"] == 1
        assert ctx.pipeline.stats["prefix_builds"] == 0


def test_prewarm_noop_without_cache_or_jobs(small_kernel):
    settings = EvalSettings(spec=SmallSpec(), jobs=1)
    configs = _ladder_configs(
        DefenseConfig.retpolines_only(), lax_heuristics=True
    )
    with EvalContext(settings, kernel=small_kernel) as ctx:
        assert ctx.prewarm_prefixes(configs, "lmbench", jobs=1) == 0
        assert ctx.prewarm_prefixes(configs, "lmbench", jobs=4) == 0  # no cache


def test_incremental_prefixes_setting_wires_through(small_kernel):
    on = EvalContext(
        EvalSettings(spec=SmallSpec()), kernel=small_kernel
    )
    off = EvalContext(
        EvalSettings(spec=SmallSpec(), incremental_prefixes=False),
        kernel=small_kernel,
    )
    try:
        assert on.pipeline.incremental
        assert not off.pipeline.incremental
    finally:
        on.close()
        off.close()
