"""The two-phase PIBE pipeline."""

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import applied_config
from repro.ir.validate import validate_module
from repro.workloads.lmbench import lmbench_workload


def test_baseline_never_mutated(small_pipeline, small_profile):
    kernel = small_pipeline.baseline
    size_before = kernel.size()
    small_pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), small_profile
    )
    assert kernel.size() == size_before
    assert applied_config(kernel) == DefenseConfig.none()


def test_optimized_config_requires_profile(small_pipeline):
    with pytest.raises(ValueError, match="needs a profile"):
        small_pipeline.build_variant(PibeConfig.pibe_baseline())


def test_unoptimized_variant_without_profile(small_pipeline):
    build = small_pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.retpolines_only())
    )
    validate_module(build.module)
    assert build.reports["hardening"].protected_icalls > 0
    assert "indirect-call-promotion" not in build.reports


def test_full_variant_reports_present(hardened_build):
    reports = hardened_build.reports
    for name in (
        "lower-switches",
        "indirect-call-promotion",
        "pibe-inliner",
        "simplify-cfg",
        "dead-function-elimination",
        "hardening",
    ):
        assert name in reports, name
    assert hardened_build.label


def test_jump_tables_follow_defense_config(small_pipeline):
    vanilla = small_pipeline.build_variant(PibeConfig.lto_baseline())
    assert vanilla.reports["lower-switches"].jump_tables_emitted > 0
    hardened = small_pipeline.build_variant(
        PibeConfig.hardened(DefenseConfig.retpolines_only())
    )
    assert hardened.reports["lower-switches"].jump_tables_emitted == 0


def test_validate_mode(small_pipeline, small_profile):
    build = small_pipeline.build_variant(
        PibeConfig.hardened(
            DefenseConfig.all_defenses(), icp_budget=0.99, inline_budget=0.99
        ),
        small_profile,
        validate=True,
    )
    validate_module(build.module)


def test_default_inliner_variant(small_pipeline, small_profile):
    build = small_pipeline.build_variant(
        PibeConfig(
            defenses=DefenseConfig.all_defenses(),
            icp_budget=0.99,
            inline_budget=0.99,
            use_default_inliner=True,
        ),
        small_profile,
    )
    assert "default-inliner" in build.reports
    assert "pibe-inliner" not in build.reports


def test_dce_shrinks_unoptimized_image(small_pipeline):
    with_dce = small_pipeline.build_variant(PibeConfig.lto_baseline())
    without = small_pipeline.build_variant(
        PibeConfig(run_dce=False)
    )
    assert len(with_dce.module) <= len(without.module)


def test_profile_phase_runs_on_a_copy(small_kernel):
    pipeline = PibePipeline(small_kernel)
    profile = pipeline.profile(
        lmbench_workload(ops_scale=0.01), iterations=1
    )
    assert profile.total_weight() > 0
    # profiling never leaves metadata on the baseline
    from repro.ir.types import ATTR_EDGE_COUNT

    assert not any(
        ATTR_EDGE_COUNT in inst.attrs for inst in small_kernel.instructions()
    )
