"""Overhead arithmetic."""

import pytest

from repro.core.report import (
    OverheadReport,
    build_overhead_report,
    format_percent,
    geomean_overhead,
    geomean_ratio,
    overhead,
)


def test_overhead_fraction():
    assert overhead(120.0, 100.0) == pytest.approx(0.2)
    assert overhead(80.0, 100.0) == pytest.approx(-0.2)
    with pytest.raises(ZeroDivisionError):
        overhead(1.0, 0.0)


def test_geomean_ratio():
    assert geomean_ratio([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean_ratio([])
    with pytest.raises(ValueError):
        geomean_ratio([1.0, -0.5])


def test_geomean_overhead_matches_paper_convention():
    # geometric mean over (1 + overhead) ratios
    assert geomean_overhead([0.0, 0.0]) == pytest.approx(0.0)
    assert geomean_overhead([1.0, 0.0]) == pytest.approx(2**0.5 - 1)
    assert geomean_overhead([-0.1, 0.1]) == pytest.approx(
        (0.9 * 1.1) ** 0.5 - 1
    )


def test_report_rows_and_geomean():
    report = OverheadReport("cfg")
    report.add("a", 100.0, 150.0)
    report.add("b", 100.0, 100.0)
    assert report.overheads() == {
        "a": pytest.approx(0.5),
        "b": pytest.approx(0.0),
    }
    assert report.geomean == pytest.approx(1.5**0.5 - 1)
    assert report.row("a").overhead == pytest.approx(0.5)
    with pytest.raises(KeyError):
        report.row("missing")


def test_build_overhead_report_order():
    baseline = {"x": 10.0, "y": 20.0}
    measured = {"x": 11.0, "y": 30.0}
    report = build_overhead_report("c", baseline, measured, order=["y", "x"])
    assert [r.benchmark for r in report.rows] == ["y", "x"]


def test_format_percent():
    assert format_percent(0.123) == "12.3%"
    assert format_percent(-0.05, digits=0) == "-5%"


def test_geomean_overhead_rejects_empty():
    from repro.core.report import geomean_overhead

    with pytest.raises(ValueError, match="empty"):
        geomean_overhead([])


def test_geomean_overhead_rejects_sub_negative_one():
    # An overhead <= -100% means the underlying measurement was
    # non-positive; the guard names the offending values instead of
    # surfacing a "non-positive ratio" error from geomean_ratio.
    from repro.core.report import geomean_overhead

    with pytest.raises(ValueError, match=r"-1\.5"):
        geomean_overhead([0.1, -1.5])
    with pytest.raises(ValueError, match="-1.0"):
        geomean_overhead([-1.0])
