"""Plain-text table rendering."""

import pytest

from repro.evaluation.formatting import Table, pct, ticks, us


def test_table_rendering_aligns_columns():
    table = Table("Demo", ["name", "value"])
    table.add_row("short", "1")
    table.add_row("much_longer_name", "22")
    text = table.to_text()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1] == "===="
    assert "name" in lines[2]
    # all data rows start at the same column offset for the second field
    offsets = {line.index(v) for line, v in zip(lines[4:], ("1", "22"))}
    assert len(offsets) == 1


def test_row_width_validation():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only_one")


def test_notes_rendered_with_bullets():
    table = Table("T", ["a"], notes=["paper says X"])
    table.add_row("1")
    assert "* paper says X" in table.to_text()


def test_cell_formatters():
    assert pct(0.106) == "10.6%"
    assert pct(0.5, digits=0) == "50%"
    assert pct(0.01, signed=True) == "+1.0%"
    assert ticks(20.7) == "21"
    assert us(3700.0) == "1.000"  # 3700 cycles at 3.7 GHz = 1 us


def test_fmt_budget_paper_labels():
    from repro.evaluation.formatting import fmt_budget

    assert fmt_budget(0.99) == "99%"
    assert fmt_budget(0.999999) == "99.9999%"
    assert fmt_budget(0.5) == "50%"
    assert fmt_budget(1.0) == "100%"


def test_fmt_budget_no_collision_past_six_digits():
    # The old {:.6f}-based formatting merged these two labels.
    from repro.evaluation.formatting import fmt_budget

    a, b = 0.99999999999, 0.999999999990001
    assert a != b
    assert fmt_budget(a) != fmt_budget(b)


def test_fmt_budget_injective_on_floats():
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.evaluation.formatting import fmt_budget

    @given(
        st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
        st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=300)
    def check(a, b):
        if a != b:
            assert fmt_budget(a) != fmt_budget(b)
        else:
            assert fmt_budget(a) == fmt_budget(b)

    check()


def test_markdown_rendering():
    table = Table("Demo", ["name", "value"], notes=["a note"])
    table.add_row("pipe|cell", "1")
    md = table.to_markdown()
    lines = md.splitlines()
    assert lines[0] == "### Demo"
    assert lines[2] == "| name | value |"
    assert lines[3] == "| --- | --- |"
    assert "pipe\\|cell" in lines[4]
    assert lines[-1] == "*a note*"
