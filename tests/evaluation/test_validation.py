"""Reproduction scorecard."""

import pytest

from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.validation import (
    EXPECTATIONS,
    Expectation,
    Scorecard,
    validate_all,
)
from repro.kernel.spec import SmallSpec


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.12,
        )
    )


def test_expectation_check_mechanics():
    exp = Expectation(
        "demo", paper_value=1.0, low=0.5, high=1.5,
        extract=lambda ctx: 1.2,
    )
    result = exp.check(None)
    assert result.passed
    assert result.measured == 1.2
    failing = Expectation(
        "demo2", paper_value=1.0, low=0.5, high=1.5,
        extract=lambda ctx: 9.0,
    )
    assert not failing.check(None).passed


def test_scorecard_rendering():
    card = Scorecard(
        [
            Expectation("a", 0.1, 0.0, 0.2, lambda c: 0.1).check(None),
            Expectation("b", 0.1, 0.0, 0.05, lambda c: 0.1).check(None),
        ]
    )
    assert card.passed == 1
    assert not card.all_passed
    text = card.to_table().to_text()
    assert "1/2 within band" in text
    assert "NO" in text


def test_headline_expectations_hold_on_test_kernel(ctx):
    """The core claims stay within band even at reduced scale."""
    headline = [
        e
        for e in EXPECTATIONS
        if e.name
        in (
            "Table 1: retpoline icall ticks",
            "Table 1: return retpoline ticks",
            "Table 5: all defenses, no optimization",
            "Table 5: all defenses, lax heuristics",
            "Table 6: PGO-only speedup",
        )
    ]
    card = validate_all(ctx, headline)
    failing = [r.expectation.name for r in card.results if not r.passed]
    assert card.all_passed, failing


def test_expectation_bands_contain_paper_values():
    for exp in EXPECTATIONS:
        assert exp.low <= exp.high
        # the band should be wide enough that the paper's own number,
        # were it measured, would usually pass (simulator tolerance)
        assert exp.low <= exp.paper_value * 1.8 + 0.2
