"""Table generators: every experiment runs and reproduces the paper's
directional findings (on the reduced test kernel)."""

import pytest

from repro.evaluation import tables
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.kernel.spec import SmallSpec


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.12,
        )
    )


def test_table1_microbench_constants():
    result = tables.table1(iterations=300, spec_iterations=10)
    assert result.ticks["retpolines"]["icall"] == pytest.approx(21, abs=1)
    assert result.ticks["return retpolines"]["dcall"] == pytest.approx(
        16, abs=1
    )
    assert result.ticks["all defenses"]["icall"] > 60
    # transient defenses dominate classical ones on SPEC
    assert (
        result.spec_slowdowns["all defenses"]
        > result.spec_slowdowns["LVI-CFI"]
        > result.spec_slowdowns["stackprotector"]
    )
    assert "Table 1" in result.table.to_text()


def test_table2_pgo_speeds_up_kernel(ctx):
    result = tables.table2(ctx)
    assert result.geomean < -0.02  # PGO-only build is faster than LTO
    assert len(result.lto) == 20


def test_table3_ordering(ctx):
    result = tables.table3(ctx)
    g = result.geomeans
    # paper: unoptimized retpolines >> jumpswitches > static icp
    assert g["retpolines"] > g["jumpswitches"] > g["icp 99.999%"]
    assert g["retpolines"] > 0.05
    assert g["icp 99.999%"] < 0.05


def test_table4_single_target_sites_dominate(ctx):
    result = tables.table4(ctx)
    dist = result.distribution
    assert dist["1"] > dist["2"] >= dist["3"]
    assert sum(dist.values()) > 10


def test_table5_budget_progression(ctx):
    result = tables.table5(ctx)
    g = result.geomeans
    assert g["no opt"] > 1.0  # >100% unoptimized
    assert g["no opt"] > g["+icp 99.999%"] > g["+inl 99%"]
    assert g["+inl 99%"] >= g["+inl 99.9%"] >= g["lax heuristics"] - 0.001
    # order-of-magnitude reduction, the paper's headline
    assert g["lax heuristics"] < g["no opt"] / 5


def test_table6_per_defense_reduction(ctx):
    result = tables.table6(ctx)
    for defense in ("Retpolines", "Return retpolines", "LVI-CFI", "All"):
        assert result.pibe_geomeans[defense] < result.lto_geomeans[defense]
    assert result.lto_geomeans["All"] > 1.0
    assert result.pibe_geomeans["All"] < 0.35


def test_table7_macro_degradations(ctx):
    result = tables.table7(ctx, batches=6)
    for app in ("Nginx", "Apache", "DBench"):
        unopt, pibe = result.degradations[app]["w/all-defenses"]
        assert unopt < -0.05          # defenses hurt unoptimized kernels
        assert pibe > unopt + 0.02    # PIBE recovers most of it
        assert result.vanilla_throughput[app] > 0


def test_table8_elision_grows_with_budget(ctx):
    result = tables.table8(ctx)
    budgets = sorted(result.stats)
    sites = [result.stats[b].icp_sites for b in budgets]
    ret_sites = [result.stats[b].return_sites for b in budgets]
    assert sites == sorted(sites)
    assert ret_sites == sorted(ret_sites)
    assert result.stats[budgets[0]].icp_weight_fraction > 0.9


def test_table9_rule3_blocks_more_than_rule2(ctx):
    result = tables.table9(ctx)
    for report in result.reports.values():
        assert report.blocked_rule3_weight >= report.blocked_rule2_weight
        assert report.candidate_weight > 0


def test_table10_candidates_are_proper_subset(ctx):
    """The algorithms touch a fraction of all indirect branches. (The
    tiny test kernel has little cold bulk, so fractions are larger than
    the default spec's — the paper-scale check runs in the benchmarks.)"""
    result = tables.table10(ctx)
    budgets = sorted(result.stats)
    for stats in result.stats.values():
        assert stats.total_icalls > stats.icp_candidates
        assert stats.total_returns > 0
    fractions = [result.stats[b].icp_fraction for b in budgets]
    assert fractions == sorted(fractions)  # grows with budget


def test_table11_vulnerable_residue(ctx):
    result = tables.table11(ctx)
    unopt = result.censuses["no opt"]
    assert unopt.vulnerable_ijumps == SmallSpec().num_asm_ijumps
    assert unopt.vulnerable_icalls > 0
    assert unopt.defended_icalls > unopt.vulnerable_icalls
    # inlining duplicates both protected and vulnerable sites
    top = result.censuses[max(result.censuses, key=lambda k: k != "no opt")]
    budget_labels = [k for k in result.censuses if k != "no opt"]
    biggest = result.censuses[budget_labels[-1]]
    assert biggest.vulnerable_icalls >= unopt.vulnerable_icalls
    assert biggest.defended_icalls >= unopt.defended_icalls


def test_table12_size_growth(ctx):
    result = tables.table12(ctx)
    all99 = result.reports["all-defenses @99%"]
    all_max = result.reports["all-defenses @99.9999%"]
    assert all_max.abs_size_increase >= all99.abs_size_increase > 0
    retp = result.reports["retpolines @99.999%"]
    assert retp.abs_size_increase < all99.abs_size_increase


def test_robustness_ordering(ctx):
    result = tables.robustness(ctx)
    assert result.matched_geomean < result.mismatched_geomean
    assert result.icp_overlap > 0.2
    assert result.inline_overlap > 0.2


def test_figure1_rule3_demonstration():
    result = tables.figure1()
    assert result.inlined_without_rule3 == ["foo_1"]
    assert result.inlined_with_rule3 == ["foo_2", "foo_3"]
