"""Evaluation harness caching and measurement plumbing."""

import pytest

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.05,
            measure_ops_scale=0.1,
        )
    )


def test_profiles_cached(ctx):
    a = ctx.profile("lmbench")
    b = ctx.profile("lmbench")
    assert a is b
    apache = ctx.profile("apache")
    assert apache is not a
    with pytest.raises(ValueError):
        ctx.profile("bogus")


def test_variants_cached_by_label_and_workload(ctx):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    a = ctx.variant(config)
    assert ctx.variant(config) is a
    b = ctx.variant(config, workload_name="apache")
    assert b is not a


def test_measurements_cached(ctx):
    benches = (BY_NAME["null"], BY_NAME["read"])
    config = PibeConfig.lto_baseline()
    first = ctx.measure(config, benches)
    second = ctx.measure(config, benches)
    assert first is second
    assert set(first) == {"null", "read"}


def test_jumpswitches_measurement(ctx):
    benches = (BY_NAME["read"],)
    js = ctx.measure_jumpswitches(benches)
    retp = ctx.measure(
        PibeConfig.hardened(DefenseConfig.retpolines_only()), benches
    )
    lto = ctx.lto_measurements(benches)
    # runtime promotion sits between unoptimized retpolines and vanilla
    assert lto["read"] < js["read"] < retp["read"] * 1.05


def test_fast_settings_reduce_scale():
    fast = EvalSettings.fast()
    assert fast.measure_ops_scale < EvalSettings().measure_ops_scale
