"""Evaluation harness caching and measurement plumbing."""

import pytest

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.05,
            measure_ops_scale=0.1,
        )
    )


def test_profiles_cached(ctx):
    a = ctx.profile("lmbench")
    b = ctx.profile("lmbench")
    assert a is b
    apache = ctx.profile("apache")
    assert apache is not a
    with pytest.raises(ValueError):
        ctx.profile("bogus")


def test_variants_cached_by_label_and_workload(ctx):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    a = ctx.variant(config)
    assert ctx.variant(config) is a
    b = ctx.variant(config, workload_name="apache")
    assert b is not a


def test_measurements_cached(ctx):
    benches = (BY_NAME["null"], BY_NAME["read"])
    config = PibeConfig.lto_baseline()
    first = ctx.measure(config, benches)
    second = ctx.measure(config, benches)
    assert first is second
    assert set(first) == {"null", "read"}


def test_jumpswitches_measurement(ctx):
    benches = (BY_NAME["read"],)
    js = ctx.measure_jumpswitches(benches)
    retp = ctx.measure(
        PibeConfig.hardened(DefenseConfig.retpolines_only()), benches
    )
    lto = ctx.lto_measurements(benches)
    # runtime promotion sits between unoptimized retpolines and vanilla
    assert lto["read"] < js["read"] < retp["read"] * 1.05


def test_fast_settings_reduce_scale():
    fast = EvalSettings.fast()
    assert fast.measure_ops_scale < EvalSettings().measure_ops_scale


# -- lifecycle ---------------------------------------------------------------


def _lifecycle_settings(jobs=2):
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        jobs=jobs,
    )


def test_pool_persists_across_measure_many_calls():
    benches = (BY_NAME["null"],)
    with EvalContext(_lifecycle_settings()) as local:
        local.measure_many(
            [
                PibeConfig.lto_baseline(),
                PibeConfig.hardened(DefenseConfig.retpolines_only()),
            ],
            benches,
        )
        pool = local._pool
        assert pool is not None
        local.measure_many(
            [
                PibeConfig.hardened(DefenseConfig.lvi_only()),
                PibeConfig.pibe_baseline(),
            ],
            benches,
        )
        assert local._pool is pool  # reused, not rebuilt per call


def test_close_releases_worker_processes():
    import multiprocessing
    import time

    before = set(multiprocessing.active_children())
    local = EvalContext(_lifecycle_settings())
    local.measure_many(
        [
            PibeConfig.lto_baseline(),
            PibeConfig.hardened(DefenseConfig.retpolines_only()),
        ],
        (BY_NAME["null"],),
    )
    assert local._pool is not None  # the persistent pool is live
    local.close()
    assert local.closed
    assert local._pool is None
    # shutdown(wait=True) reaps the workers; give the OS a beat to
    # deliver the joins, then demand no strays beyond what preexisted.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        leaked = set(multiprocessing.active_children()) - before
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"leaked worker processes: {leaked}"
    local.close()  # idempotent


def test_closed_context_rejects_new_work_but_serves_memo():
    benches = (BY_NAME["null"],)
    config = PibeConfig.lto_baseline()
    with EvalContext(_lifecycle_settings(jobs=1)) as local:
        values = local.measure(config, benches)
    # memoized results stay readable after close...
    assert local.measure(config, benches) is values
    assert local.cached_measurement(config, benches, "lmbench") == values
    # ...but anything that would compute is refused
    with pytest.raises(RuntimeError, match="closed"):
        local.measure(PibeConfig.pibe_baseline(), benches)
    with pytest.raises(RuntimeError, match="closed"):
        local.profile("apache")
    with pytest.raises(RuntimeError, match="closed"):
        local.measure_many([PibeConfig.pibe_baseline()], benches)


def test_cached_measurement_does_not_evaluate():
    benches = (BY_NAME["null"],)
    config = PibeConfig.lto_baseline()
    with EvalContext(_lifecycle_settings(jobs=1)) as local:
        assert local.cached_measurement(config, benches, "lmbench") is None
        assert not local._measurements  # the probe computed nothing
        values = local.measure(config, benches)
        assert local.cached_measurement(config, benches, "lmbench") == values
