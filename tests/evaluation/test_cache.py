"""Disk cache and parallel measurement: persistence, keying, merge order."""

import json

import pytest

from repro.core.config import PibeConfig
from repro.evaluation.cache import DiskCache, cache_key, canonicalize
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


def _settings(tmp_path=None, **kw):
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        cache_dir=str(tmp_path) if tmp_path is not None else None,
        **kw,
    )


BENCHES = (BY_NAME["null"], BY_NAME["read"])
CONFIGS = [
    PibeConfig.lto_baseline(),
    PibeConfig.hardened(DefenseConfig.retpolines_only()),
    PibeConfig.hardened(DefenseConfig.retpolines_only(), icp_budget=0.99),
]


# -- DiskCache primitives ----------------------------------------------------


def test_put_get_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    key = cache_key("measure", {"a": 1})
    assert cache.get("measure", key) is None
    cache.put("measure", key, {"null": 1.5})
    assert cache.get("measure", key) == {"null": 1.5}
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "corrupt": 0,
        "by_kind": {"measure": {"hits": 1, "misses": 1, "corrupt": 0}},
    }


def test_corrupt_entry_is_quarantined(tmp_path):
    cache = DiskCache(tmp_path)
    key = cache_key("x")
    cache.put("measure", key, {"v": 1})
    path = tmp_path / "measure" / f"{key}.json"
    path.write_text("{truncated", encoding="utf-8")
    # first lookup: counted as corrupt + miss, entry moved aside
    assert cache.get("measure", key) is None
    assert cache.stats() == {
        "hits": 0,
        "misses": 1,
        "corrupt": 1,
        "by_kind": {"measure": {"hits": 0, "misses": 1, "corrupt": 1}},
    }
    assert not path.exists()
    quarantined = list(cache.quarantine_dir().iterdir())
    assert [p.name for p in quarantined] == [f"measure-{key}.json"]
    assert quarantined[0].read_text(encoding="utf-8") == "{truncated"
    # second lookup: a plain miss, the corrupt file is not re-parsed
    assert cache.get("measure", key) is None
    assert cache.stats() == {
        "hits": 0,
        "misses": 2,
        "corrupt": 1,
        "by_kind": {"measure": {"hits": 0, "misses": 2, "corrupt": 1}},
    }
    # a fresh put repopulates the slot cleanly
    cache.put("measure", key, {"v": 2})
    assert cache.get("measure", key) == {"v": 2}


def test_cache_key_canonical_and_order_sensitive():
    # dict ordering doesn't matter; value changes and list order do
    assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})
    assert cache_key({"a": 1}) != cache_key({"a": 2})
    assert cache_key([1, 2]) != cache_key([2, 1])
    # dataclasses (configs) and frozensets canonicalize deterministically
    a = canonicalize(PibeConfig.lax(DefenseConfig.all_defenses()))
    b = canonicalize(PibeConfig.lax(DefenseConfig.all_defenses()))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert cache_key(PibeConfig.lto_baseline()) != cache_key(
        PibeConfig.pibe_baseline()
    )


# -- harness integration -----------------------------------------------------


def test_warm_cache_skips_profiling_and_measurement(tmp_path):
    config = PibeConfig.hardened(
        DefenseConfig.retpolines_only(), icp_budget=0.99
    )
    cold = EvalContext(_settings(tmp_path))
    baseline = cold.measure(config, BENCHES)
    assert cold.cache.stats()["hits"] == 0

    warm = EvalContext(_settings(tmp_path))
    repeat = warm.measure(config, BENCHES)
    assert repeat == baseline
    # served entirely from disk: measurement hit, no profiling run
    assert warm.cache.stats()["hits"] == 1
    assert "lmbench" not in warm._profiles
    # a second in-process kernel build gets different site ids, so the
    # site-keyed cached profile is correctly NOT replayed against it...
    profile = warm.profile("lmbench")
    stats = warm.cache.stats()
    assert (stats["hits"], stats["misses"], stats["corrupt"]) == (1, 1, 0)
    # ...though the id-independent content agrees
    assert profile.invocations == cold.profile("lmbench").invocations


def test_cache_keys_isolate_settings(tmp_path):
    config = PibeConfig.lto_baseline()
    a = EvalContext(_settings(tmp_path))
    a.measure(config, BENCHES)
    # different measurement scale -> different cell, not a stale hit
    b = EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.05,
            measure_ops_scale=0.2,
            cache_dir=str(tmp_path),
        )
    )
    b.measure(config, BENCHES)
    assert b.cache.stats()["hits"] == 0


def test_measure_many_sequential_matches_measure(tmp_path):
    ctx = EvalContext(_settings())
    many = ctx.measure_many(CONFIGS, BENCHES)
    singles = [ctx.measure(c, BENCHES) for c in CONFIGS]
    assert many == singles


def test_measure_many_parallel_matches_sequential(tmp_path):
    parallel_ctx = EvalContext(_settings(tmp_path / "par", jobs=2))
    parallel = parallel_ctx.measure_many(CONFIGS, BENCHES)
    sequential_ctx = EvalContext(_settings())
    sequential = sequential_ctx.measure_many(CONFIGS, BENCHES)
    assert parallel == sequential
    # merged results are now in the parent's in-memory cache
    for config, expected in zip(CONFIGS, sequential):
        assert parallel_ctx.measure(config, BENCHES) == expected


def test_engines_share_no_cache_entries(tmp_path):
    config = PibeConfig.lto_baseline()
    compiled = EvalContext(_settings(tmp_path, engine="compiled"))
    reference = EvalContext(_settings(tmp_path, engine="reference"))
    first = compiled.measure(config, BENCHES)
    assert reference.cache.stats()["hits"] == 0
    second = reference.measure(config, BENCHES)
    assert reference.cache.stats()["hits"] == 0  # engine keyed separately
    assert first == second  # ...even though the results agree


def test_disk_usage_reflects_other_writers(tmp_path):
    writer = DiskCache(tmp_path)
    writer.put("measure", "k1", {"cycles": 1})
    writer.put("measure", "k2", {"cycles": 2})
    writer.put("prefix", "p1", {"module": {}})

    # a fresh handle (another process, conceptually) sees the same files
    reader = DiskCache(tmp_path)
    usage = reader.disk_usage()
    assert usage["measure"]["entries"] == 2
    assert usage["prefix"]["entries"] == 1
    assert usage["measure"]["bytes"] > 0
    assert reader.stats()["hits"] == 0  # disk_usage is not a cache access

    # an empty root reports nothing rather than crashing
    assert DiskCache(tmp_path / "nowhere").disk_usage() == {}
