"""Disk cache and parallel measurement: persistence, keying, merge order."""

import json

import pytest

from repro.core.config import PibeConfig
from repro.evaluation.cache import DiskCache, cache_key, canonicalize
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


def _settings(tmp_path=None, **kw):
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        cache_dir=str(tmp_path) if tmp_path is not None else None,
        **kw,
    )


BENCHES = (BY_NAME["null"], BY_NAME["read"])
CONFIGS = [
    PibeConfig.lto_baseline(),
    PibeConfig.hardened(DefenseConfig.retpolines_only()),
    PibeConfig.hardened(DefenseConfig.retpolines_only(), icp_budget=0.99),
]


# -- DiskCache primitives ----------------------------------------------------


def test_put_get_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    key = cache_key("measure", {"a": 1})
    assert cache.get("measure", key) is None
    cache.put("measure", key, {"null": 1.5})
    assert cache.get("measure", key) == {"null": 1.5}
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "corrupt": 0,
        "by_kind": {"measure": {"hits": 1, "misses": 1, "corrupt": 0}},
    }


def test_corrupt_entry_is_quarantined(tmp_path):
    cache = DiskCache(tmp_path)
    key = cache_key("x")
    cache.put("measure", key, {"v": 1})
    path = tmp_path / "measure" / f"{key}.json"
    path.write_text("{truncated", encoding="utf-8")
    # first lookup: counted as corrupt + miss, entry moved aside
    assert cache.get("measure", key) is None
    assert cache.stats() == {
        "hits": 0,
        "misses": 1,
        "corrupt": 1,
        "by_kind": {"measure": {"hits": 0, "misses": 1, "corrupt": 1}},
    }
    assert not path.exists()
    quarantined = list(cache.quarantine_dir().iterdir())
    assert [p.name for p in quarantined] == [f"measure-{key}.json"]
    assert quarantined[0].read_text(encoding="utf-8") == "{truncated"
    # second lookup: a plain miss, the corrupt file is not re-parsed
    assert cache.get("measure", key) is None
    assert cache.stats() == {
        "hits": 0,
        "misses": 2,
        "corrupt": 1,
        "by_kind": {"measure": {"hits": 0, "misses": 2, "corrupt": 1}},
    }
    # a fresh put repopulates the slot cleanly
    cache.put("measure", key, {"v": 2})
    assert cache.get("measure", key) == {"v": 2}


def test_cache_key_canonical_and_order_sensitive():
    # dict ordering doesn't matter; value changes and list order do
    assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})
    assert cache_key({"a": 1}) != cache_key({"a": 2})
    assert cache_key([1, 2]) != cache_key([2, 1])
    # dataclasses (configs) and frozensets canonicalize deterministically
    a = canonicalize(PibeConfig.lax(DefenseConfig.all_defenses()))
    b = canonicalize(PibeConfig.lax(DefenseConfig.all_defenses()))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert cache_key(PibeConfig.lto_baseline()) != cache_key(
        PibeConfig.pibe_baseline()
    )


# -- harness integration -----------------------------------------------------


def test_warm_cache_skips_profiling_and_measurement(tmp_path):
    config = PibeConfig.hardened(
        DefenseConfig.retpolines_only(), icp_budget=0.99
    )
    cold = EvalContext(_settings(tmp_path))
    baseline = cold.measure(config, BENCHES)
    assert cold.cache.stats()["hits"] == 0

    warm = EvalContext(_settings(tmp_path))
    repeat = warm.measure(config, BENCHES)
    assert repeat == baseline
    # served entirely from disk: measurement hit, no profiling run
    assert warm.cache.stats()["hits"] == 1
    assert "lmbench" not in warm._profiles
    # a second in-process kernel build gets different site ids, so the
    # site-keyed cached profile is correctly NOT replayed against it...
    profile = warm.profile("lmbench")
    stats = warm.cache.stats()
    assert (stats["hits"], stats["misses"], stats["corrupt"]) == (1, 1, 0)
    # ...though the id-independent content agrees
    assert profile.invocations == cold.profile("lmbench").invocations


def test_cache_keys_isolate_settings(tmp_path):
    config = PibeConfig.lto_baseline()
    a = EvalContext(_settings(tmp_path))
    a.measure(config, BENCHES)
    # different measurement scale -> different cell, not a stale hit
    b = EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.05,
            measure_ops_scale=0.2,
            cache_dir=str(tmp_path),
        )
    )
    b.measure(config, BENCHES)
    assert b.cache.stats()["hits"] == 0


def test_measure_many_sequential_matches_measure(tmp_path):
    ctx = EvalContext(_settings())
    many = ctx.measure_many(CONFIGS, BENCHES)
    singles = [ctx.measure(c, BENCHES) for c in CONFIGS]
    assert many == singles


def test_measure_many_parallel_matches_sequential(tmp_path):
    parallel_ctx = EvalContext(_settings(tmp_path / "par", jobs=2))
    parallel = parallel_ctx.measure_many(CONFIGS, BENCHES)
    sequential_ctx = EvalContext(_settings())
    sequential = sequential_ctx.measure_many(CONFIGS, BENCHES)
    assert parallel == sequential
    # merged results are now in the parent's in-memory cache
    for config, expected in zip(CONFIGS, sequential):
        assert parallel_ctx.measure(config, BENCHES) == expected


def test_engines_share_no_cache_entries(tmp_path):
    config = PibeConfig.lto_baseline()
    compiled = EvalContext(_settings(tmp_path, engine="compiled"))
    reference = EvalContext(_settings(tmp_path, engine="reference"))
    first = compiled.measure(config, BENCHES)
    assert reference.cache.stats()["hits"] == 0
    second = reference.measure(config, BENCHES)
    assert reference.cache.stats()["hits"] == 0  # engine keyed separately
    assert first == second  # ...even though the results agree


def test_disk_usage_reflects_other_writers(tmp_path):
    writer = DiskCache(tmp_path)
    writer.put("measure", "k1", {"cycles": 1})
    writer.put("measure", "k2", {"cycles": 2})
    writer.put("prefix", "p1", {"module": {}})

    # a fresh handle (another process, conceptually) sees the same files
    reader = DiskCache(tmp_path)
    usage = reader.disk_usage()
    assert usage["measure"]["entries"] == 2
    assert usage["prefix"]["entries"] == 1
    assert usage["measure"]["bytes"] > 0
    assert reader.stats()["hits"] == 0  # disk_usage is not a cache access

    # an empty root reports nothing rather than crashing
    assert DiskCache(tmp_path / "nowhere").disk_usage() == {}


# -- cross-process concurrency (the serve/CI sharing story) ------------------
#
# Module-level workers: ProcessPoolExecutor pickles the callable, and the
# children must import it fresh.


def _hammer_same_key(args):
    """Write and read one key repeatedly; return observed payload values."""
    root, key, worker_id, iterations = args
    cache = DiskCache(root)
    seen = set()
    for i in range(iterations):
        cache.put("measure", key, {"writer": worker_id, "round": i})
        entry = cache.get("measure", key)
        if entry is not None:  # a concurrent quarantine would yield None
            assert set(entry) == {"writer", "round"}
            seen.add(entry["writer"])
    return {"seen": sorted(seen), "stats": cache.stats()}


def _read_under_corruption(args):
    """Race the quarantine path: alternate corrupting and reading."""
    root, key, iterations = args
    cache = DiskCache(root)
    path = cache.root / "measure" / f"{key}.json"
    outcomes = {"valid": 0, "miss": 0}
    for i in range(iterations):
        if i % 2:
            try:
                path.write_text("{torn write", encoding="utf-8")
            except OSError:
                pass
        else:
            cache.put("measure", key, {"v": i})
        entry = cache.get("measure", key)
        outcomes["valid" if entry is not None else "miss"] += 1
    outcomes["stats"] = cache.stats()
    return outcomes


def test_concurrent_writers_same_key_race_free(tmp_path):
    """Two processes hammering one key never tear it: the atomic
    tempfile + rename publish means every read parses and carries a
    complete payload from one writer or the other."""
    from concurrent.futures import ProcessPoolExecutor

    key = cache_key("contended")
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(
            pool.map(
                _hammer_same_key,
                [(str(tmp_path), key, wid, 150) for wid in (1, 2)],
            )
        )
    for result in results:
        # no reader ever saw a corrupt entry
        assert result["stats"]["corrupt"] == 0
    # the slot holds one complete, parseable payload at the end
    final = DiskCache(tmp_path).get("measure", key)
    assert final is not None and final["writer"] in (1, 2)


def test_quarantine_under_contention(tmp_path):
    """Concurrent readers of a corrupted entry each either quarantine it
    or take a clean miss — never an exception — and the counters add up
    to what each process observed."""
    from concurrent.futures import ProcessPoolExecutor

    key = cache_key("corruptible")
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(
            pool.map(
                _read_under_corruption,
                [(str(tmp_path), key, 100)] * 2,
            )
        )
    for outcome in results:
        stats = outcome["stats"]
        # every lookup is accounted for exactly once
        assert stats["hits"] + stats["misses"] == 100
        assert outcome["valid"] + outcome["miss"] == 100
        assert stats["corrupt"] <= stats["misses"]
    assert sum(r["stats"]["corrupt"] for r in results) >= 1
    # quarantined copies are preserved for inspection, names are unique
    cache = DiskCache(tmp_path)
    quarantined = list(cache.quarantine_dir().glob("*.json"))
    assert quarantined, "no corrupt entry was preserved"
    # and the slot itself recovers with a fresh put
    cache.put("measure", key, {"v": "clean"})
    assert cache.get("measure", key) == {"v": "clean"}
