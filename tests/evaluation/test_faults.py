"""Fault injection against the evaluation stack: crashes, hangs,
transient exceptions and cache corruption must cost at most the affected
cell, never the regeneration."""

import json

import pytest

from repro import faults
from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings, cell_label
from repro.faults import FaultPlan, FaultSpec, InjectedFault, default_stress_plan
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME

BENCHES = (BY_NAME["null"],)


@pytest.fixture(autouse=True)
def _isolated_faults():
    """Never leak a plan into (or out of) a test."""
    faults.clear()
    yield
    faults.clear()


def _settings(tmp_path=None, **kw):
    kw.setdefault("retry_backoff", 0.01)
    kw.setdefault("cell_timeout", 60.0)
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        cache_dir=str(tmp_path) if tmp_path is not None else None,
        **kw,
    )


def _configs(n):
    """``n`` distinct measurement cells (a baseline plus budget variants)."""
    budgets = (0.9, 0.99, 0.999, 0.9999, 0.99999, 0.999999)
    pool = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(DefenseConfig.retpolines_only()),
    ]
    for b in budgets:
        pool.append(
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=b, inline_budget=b
            )
        )
    for b in budgets:
        pool.append(
            PibeConfig.hardened(
                DefenseConfig.all_defenses(), icp_budget=b, inline_budget=b
            )
        )
    assert n <= len(pool)
    return pool[:n]


# -- plan / runtime primitives ----------------------------------------------


def test_plan_json_roundtrip():
    plan = default_stress_plan()
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.specs == plan.specs


def test_plan_from_env_inline_and_file(tmp_path, monkeypatch):
    plan = FaultPlan(specs=[FaultSpec(point="p", mode="raise", times=None)])
    monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
    assert FaultPlan.from_env().specs == plan.specs
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    monkeypatch.setenv(faults.ENV_VAR, str(path))
    assert FaultPlan.from_env().specs == plan.specs
    monkeypatch.delenv(faults.ENV_VAR)
    assert FaultPlan.from_env() is None


def test_bad_spec_rejected():
    with pytest.raises(ValueError):
        FaultSpec(point="p", mode="explode")
    with pytest.raises(ValueError):
        FaultSpec(point="p", mode="raise", times=0)


def test_fire_counts_activations_and_matches_labels():
    faults.install(
        FaultPlan(specs=[FaultSpec(point="p", mode="raise", match="hot*", times=2)])
    )
    assert faults.fire("p", "cold cell") is None  # label mismatch
    assert faults.fire("other", "hot cell") is None  # point mismatch
    with pytest.raises(InjectedFault):
        faults.fire("p", "hot cell")
    with pytest.raises(InjectedFault):
        faults.fire("p", "hot cell")
    assert faults.fire("p", "hot cell") is None  # budget exhausted


def test_data_modes_returned_not_raised():
    faults.install(
        FaultPlan(specs=[FaultSpec(point="cache.put", mode="corrupt", times=1)])
    )
    spec = faults.fire("cache.put", "measure")
    assert spec is not None and spec.mode == "corrupt"
    assert faults.fire("cache.put", "measure") is None


def test_crash_softened_outside_workers():
    faults.install(
        FaultPlan(specs=[FaultSpec(point="p", mode="crash", times=None)])
    )
    # in the orchestrator process a crash must never kill the process
    with pytest.raises(InjectedFault):
        faults.fire("p", "x")


# -- measure_many under faults ----------------------------------------------


def test_transient_exception_retries_to_success_sequential():
    configs = _configs(2)
    faults.install(
        FaultPlan(specs=[FaultSpec(point="measure.cell", mode="raise", times=1)])
    )
    ctx = EvalContext(_settings(max_retries=2))
    results = ctx.measure_many(configs, BENCHES, jobs=1)
    report = results.failure_report
    assert all(r is not None for r in results)
    assert report.ok
    assert report.retries == 1
    assert report.total_cells == 2


def test_permanent_failure_reported_sequential():
    configs = _configs(3)
    bad = cell_label(configs[1], "lmbench")
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="measure.cell", mode="raise", match=bad, times=None
                )
            ]
        )
    )
    ctx = EvalContext(_settings(max_retries=1))
    results = ctx.measure_many(configs, BENCHES, jobs=1)
    report = results.failure_report
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    assert report.failed_labels() == [bad]
    assert report.failed_indices() == [1]
    failure = report.failures[0]
    assert failure.kind == "exception"
    assert failure.attempts == 2  # initial + max_retries
    assert "injected fault" in failure.error


def test_crashing_worker_completed_cells_survive(tmp_path):
    """A worker crash mid-batch costs a pool rebuild, not the results."""
    configs = _configs(4)
    crash = cell_label(configs[2], "lmbench")
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="measure.cell", mode="crash", match=crash, times=1
                )
            ]
        )
    )
    ctx = EvalContext(_settings(tmp_path, jobs=2, max_retries=2))
    results = ctx.measure_many(configs, BENCHES)
    report = results.failure_report
    assert all(r is not None for r in results)
    assert report.ok
    assert report.retries >= 1  # the crashed cell was resubmitted
    # identical to an undisturbed sequential run
    faults.clear()
    baseline = EvalContext(_settings()).measure_many(configs, BENCHES, jobs=1)
    assert list(results) == list(baseline)


def test_hanging_worker_times_out_and_recovers(tmp_path):
    configs = _configs(3)
    hang = cell_label(configs[1], "lmbench")
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="measure.cell",
                    mode="hang",
                    match=hang,
                    times=1,
                    seconds=30.0,
                )
            ]
        )
    )
    ctx = EvalContext(_settings(tmp_path, jobs=2, max_retries=2))
    results = ctx.measure_many(configs, BENCHES, cell_timeout=2.0)
    report = results.failure_report
    assert all(r is not None for r in results)
    assert report.ok
    assert report.retries >= 1


def test_corrupt_cache_entry_quarantined_and_recomputed(tmp_path):
    config = _configs(1)[0]
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="cache.put", mode="corrupt", match="measure", times=1
                )
            ]
        )
    )
    cold = EvalContext(_settings(tmp_path))
    baseline = cold.measure(config, BENCHES)
    faults.clear()
    # warm run meets the corrupt entry: quarantined, recomputed, rewritten
    warm = EvalContext(_settings(tmp_path))
    assert warm.measure(config, BENCHES) == baseline
    assert warm.cache.stats()["corrupt"] == 1
    assert list(warm.cache.quarantine_dir().iterdir())
    # third run: the rewritten entry serves a clean hit
    third = EvalContext(_settings(tmp_path))
    assert third.measure(config, BENCHES) == baseline
    stats = third.cache.stats()
    assert (stats["hits"], stats["misses"], stats["corrupt"]) == (1, 0, 0)


def test_truncated_write_also_quarantined(tmp_path):
    config = _configs(1)[0]
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="cache.put", mode="truncate", match="measure", times=1
                )
            ]
        )
    )
    cold = EvalContext(_settings(tmp_path))
    baseline = cold.measure(config, BENCHES)
    faults.clear()
    warm = EvalContext(_settings(tmp_path))
    assert warm.measure(config, BENCHES) == baseline
    assert warm.cache.stats()["corrupt"] == 1


def test_acceptance_scenario_partial_table_with_exact_failures(tmp_path):
    """The issue's acceptance bar: crash one worker, corrupt one cache
    entry, one transient and one permanent fault over >= 8 configs; every
    non-failed cell has a result, the transient retries to success, and
    the report lists exactly the permanent failure."""
    configs = _configs(8)
    crash = cell_label(configs[3], "lmbench")
    transient = cell_label(configs[5], "lmbench")
    permanent = cell_label(configs[6], "lmbench")
    faults.install(
        FaultPlan(
            specs=[
                FaultSpec(
                    point="measure.cell", mode="crash", match=crash, times=1
                ),
                FaultSpec(
                    point="measure.cell",
                    mode="raise",
                    match=transient,
                    times=2,
                ),
                FaultSpec(
                    point="measure.cell",
                    mode="raise",
                    match=permanent,
                    times=None,
                ),
                FaultSpec(
                    point="cache.put", mode="corrupt", match="measure", times=1
                ),
            ]
        )
    )
    ctx = EvalContext(_settings(tmp_path, jobs=2, max_retries=2))
    results = ctx.measure_many(configs, BENCHES)
    report = results.failure_report

    assert len(results) == 8
    for i, values in enumerate(results):
        if i == 6:
            assert values is None
        else:
            assert values is not None, f"cell {i} lost"
    assert report.failed_labels() == [permanent]
    assert report.retries >= 3  # crash resubmit + 2 transient retries
    assert not report.ok
    # the report serializes for the CLI artifact
    payload = json.loads(report.to_json())
    assert payload["total_cells"] == 8
    assert payload["completed_cells"] == 7
    assert [f["label"] for f in payload["failures"]] == [permanent]

    # non-failed cells match an undisturbed sequential regeneration
    faults.clear()
    baseline = EvalContext(_settings()).measure_many(configs, BENCHES, jobs=1)
    for i in range(8):
        if i != 6:
            assert results[i] == baseline[i]


def test_no_faults_parallel_identical_to_sequential(tmp_path):
    configs = _configs(3)
    par = EvalContext(_settings(tmp_path, jobs=2)).measure_many(
        configs, BENCHES
    )
    seq = EvalContext(_settings()).measure_many(configs, BENCHES, jobs=1)
    assert list(par) == list(seq)
    assert par.failure_report.ok
    assert par.failure_report.retries == 0
    assert seq.failure_report.ok
