"""The grid sweep engine: dedup, aggregation, Pareto/crossover analysis,
and deterministic renderings.

The expensive end-to-end sweep runs once on a deliberately small grid
(module-scoped); analysis-layer tests use synthetic cells so their edge
cases don't need measurements.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.sweepengine import (
    DEFAULT_GRID,
    FAST_GRID,
    SweepCell,
    SweepGrid,
    SweepRunResult,
    defense_from_name,
    find_crossovers,
    grid_from_spec,
    llvm_cfi_only,
    mark_pareto_frontier,
    measure_deduped,
    run_sweep,
)
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


# -- grid construction and parsing -------------------------------------------


def test_grid_validation():
    retp = (DefenseConfig.retpolines_only(),)
    with pytest.raises(ValueError, match=">= 1 budget"):
        SweepGrid(budgets=(), defenses=retp)
    with pytest.raises(ValueError, match="out of range"):
        SweepGrid(budgets=(0.0,), defenses=retp)
    with pytest.raises(ValueError, match="out of range"):
        SweepGrid(budgets=(1.5,), defenses=retp)
    with pytest.raises(ValueError, match="unknown workload"):
        SweepGrid(budgets=(0.9,), defenses=retp, workloads=("specint",))
    with pytest.raises(ValueError, match="unknown scale"):
        SweepGrid(budgets=(0.9,), defenses=retp, scales=("huge",))
    with pytest.raises(ValueError, match="seeds"):
        SweepGrid(budgets=(0.9,), defenses=retp, seeds=0)


def test_presets_meet_acceptance_shape():
    # The fast grid must keep >= 3 defenses x 3 budgets x 2 workloads and
    # 2 seeds (the acceptance shape), and both presets must include the
    # crossover pair: retpolines against the cheap-per-branch CFI.
    for grid in (FAST_GRID, DEFAULT_GRID):
        assert llvm_cfi_only() in grid.defenses
        assert DefenseConfig.retpolines_only() in grid.defenses
        assert 0.5 in grid.budgets
    assert len(FAST_GRID.defenses) >= 3
    assert len(FAST_GRID.budgets) >= 3
    assert len(FAST_GRID.workloads) == 2
    assert FAST_GRID.seeds == 2
    assert FAST_GRID.cell_count == 18


def test_defense_from_name():
    assert defense_from_name("retpolines") == DefenseConfig.retpolines_only()
    assert defense_from_name("llvm-cfi") == llvm_cfi_only()
    with pytest.raises(ValueError, match="unknown defense"):
        defense_from_name("fineibt")


def test_grid_from_spec_preset_and_inline_json():
    assert grid_from_spec("fast") is FAST_GRID
    grid = grid_from_spec(
        '{"budgets": [0.5, 0.99], "defenses": ["retpolines", "llvm-cfi"],'
        ' "workloads": ["apache"], "seeds": 4}'
    )
    assert grid.budgets == (0.5, 0.99)
    assert grid.defenses == (DefenseConfig.retpolines_only(), llvm_cfi_only())
    assert grid.workloads == ("apache",)
    assert grid.seeds == 4
    # unspecified fields inherit from the fast preset
    assert grid.scales == FAST_GRID.scales


def test_grid_from_spec_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps({"budgets": [0.9], "seeds": 1}))
    grid = grid_from_spec(str(path))
    assert grid.budgets == (0.9,)
    assert grid.seeds == 1


def test_grid_from_spec_rejects_garbage(tmp_path):
    with pytest.raises(ValueError, match="neither a preset"):
        grid_from_spec(str(tmp_path / "missing.json"))
    with pytest.raises(ValueError, match="invalid grid JSON"):
        grid_from_spec("{not json")
    listfile = tmp_path / "list.json"
    listfile.write_text("[1, 2]")
    with pytest.raises(ValueError, match="must be an object"):
        grid_from_spec(str(listfile))
    with pytest.raises(ValueError, match="unknown grid field"):
        grid_from_spec('{"budget": [0.9]}')


# -- seed aggregation ---------------------------------------------------------


def test_cell_aggregation_hand_fixture():
    cell = SweepCell("small", "lmbench", "retpolines", 0.99)
    cell.geomeans = [0.05, 0.03, 0.07]
    cell.aggregate()
    assert cell.median == 0.05
    assert cell.q1 == 0.03
    assert cell.q3 == 0.07
    assert cell.iqr == pytest.approx(0.04)
    assert cell.failed_seeds == 0


def test_cell_aggregation_skips_failed_seeds():
    cell = SweepCell("small", "lmbench", "retpolines", 0.99)
    cell.geomeans = [0.05, None, 0.03]
    cell.aggregate()
    assert cell.failed_seeds == 1
    # two good seeds: nearest-rank median/q1 = lower, q3 = upper
    assert cell.median == 0.03
    assert cell.q3 == 0.05
    all_failed = SweepCell("small", "lmbench", "retpolines", 0.9)
    all_failed.geomeans = [None, None]
    all_failed.aggregate()
    assert all_failed.median is None


# -- Pareto frontier ----------------------------------------------------------


def _cell(median, air, workload="lmbench"):
    cell = SweepCell("small", workload, "d", 0.9)
    cell.median = median
    cell.air = air
    return cell


def test_frontier_basic_dominance():
    best = _cell(0.01, 0.99)
    dominated = _cell(0.02, 0.98)
    tradeoff = _cell(0.005, 0.90)  # faster but less secure: stays
    unscored = _cell(None, 0.99)
    cells = [best, dominated, tradeoff, unscored]
    mark_pareto_frontier(cells)
    assert best.on_frontier
    assert not dominated.on_frontier
    assert tradeoff.on_frontier
    assert not unscored.on_frontier


def test_frontier_is_per_slice():
    a = _cell(0.02, 0.98, workload="lmbench")
    b = _cell(0.01, 0.99, workload="apache")  # would dominate a cross-slice
    mark_pareto_frontier([a, b])
    assert a.on_frontier and b.on_frontier


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-0.5, max_value=2.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=200)
def test_frontier_never_contains_dominated_point(points):
    cells = [_cell(m, a) for m, a in points]
    mark_pareto_frontier(cells)

    def dominates(x, y):
        return (
            x.median <= y.median
            and x.air >= y.air
            and (x.median < y.median or x.air > y.air)
        )

    for cell in cells:
        dominated = any(
            dominates(other, cell) for other in cells if other is not cell
        )
        # frontier membership is exactly non-dominance
        assert cell.on_frontier == (not dominated)


# -- crossovers ---------------------------------------------------------------


def _grid_cells(series, budgets):
    """series: {defense_label: [median per budget]} -> synthetic cells."""
    cells = []
    for label, medians in series.items():
        for budget, median in zip(budgets, medians):
            cell = SweepCell("small", "lmbench", label, budget)
            cell.median = median
            cells.append(cell)
    return cells


def _synthetic_grid(budgets):
    return SweepGrid(
        budgets=budgets,
        defenses=(DefenseConfig.retpolines_only(),),
        scales=("small",),
    )


def test_crossover_interpolation():
    budgets = (0.5, 0.9)
    cells = _grid_cells({"a": [0.10, 0.00], "b": [0.00, 0.10]}, budgets)
    (x,) = find_crossovers(cells, _synthetic_grid(budgets))
    assert (x.defense_a, x.defense_b) == ("a", "b")
    assert x.budget_low == 0.5 and x.budget_high == 0.9
    # deltas +0.1 -> -0.1: crossing at the midpoint
    assert x.budget_cross == pytest.approx(0.7)
    assert x.delta_low == pytest.approx(0.10)
    assert x.delta_high == pytest.approx(-0.10)


def test_crossover_exact_zero_at_grid_point():
    budgets = (0.5, 0.9, 0.99)
    cells = _grid_cells(
        {"a": [0.10, 0.05, 0.01], "b": [0.20, 0.05, 0.00]}, budgets
    )
    (x,) = find_crossovers(cells, _synthetic_grid(budgets))
    assert x.budget_cross == 0.9
    assert x.budget_low == x.budget_high == 0.9


def test_no_crossover_when_totally_ordered():
    budgets = (0.5, 0.9)
    cells = _grid_cells({"a": [0.10, 0.05], "b": [0.20, 0.15]}, budgets)
    assert find_crossovers(cells, _synthetic_grid(budgets)) == []


def test_crossover_skips_unmeasured_cells():
    budgets = (0.5, 0.9)
    cells = _grid_cells({"a": [0.10, None], "b": [0.00, 0.10]}, budgets)
    assert find_crossovers(cells, _synthetic_grid(budgets)) == []


# -- deterministic renderings on synthetic results ---------------------------


def _synthetic_result():
    budgets = (0.5, 0.9)
    cells = _grid_cells({"a": [0.10, 0.00], "b": [0.00, 0.10]}, budgets)
    for cell in cells:
        cell.geomeans = [cell.median]
        cell.q1 = cell.q3 = cell.median
        cell.iqr = 0.0
        cell.air = 0.98
        cell.residual_total = 100
        cell.residual_mean = 2.5
    grid = _synthetic_grid(budgets)
    mark_pareto_frontier(cells)
    return SweepRunResult(
        grid=grid,
        cells=sorted(cells, key=lambda c: c.key),
        crossovers=find_crossovers(cells, grid),
    )


def test_csv_shape_and_stability():
    result = _synthetic_result()
    csv = result.to_csv()
    lines = csv.splitlines()
    assert lines[0].startswith("scale,workload,defense,budget,")
    assert len(lines) == 1 + len(result.cells)
    assert csv == result.to_csv()  # rendering is pure
    row = lines[1].split(",")
    assert row[:5] == ["small", "lmbench", "a", "0.5", "50%"]
    assert row[-1] in ("0", "1")


def test_report_formats():
    result = _synthetic_result()
    text = result.render_report("text")
    assert "Sweep slice: scale=small workload=lmbench" in text
    assert "Pareto frontier" in text
    assert "Budget crossover points" in text
    assert "70.00%" in text  # the interpolated crossover
    md = result.render_report("markdown")
    assert "### Pareto frontier" in md
    assert "| --- |" in md
    with pytest.raises(ValueError, match="unknown report format"):
        result.render_report("html")


# -- measurement-layer integration -------------------------------------------


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.1,
            measure_ops_scale=0.1,
            cache_dir=str(tmp_path_factory.mktemp("sweep-cache")),
        )
    )


def test_measure_deduped_collapses_equal_configs(ctx):
    benches = (BY_NAME["read"],)
    config = PibeConfig.hardened(
        DefenseConfig.retpolines_only(), icp_budget=0.99, inline_budget=0.99
    )
    deduped = measure_deduped(
        ctx, [config, PibeConfig.lto_baseline(), config], benches
    )
    assert deduped.cells_requested == 3
    assert deduped.cells_evaluated == 2
    assert deduped.dedup_hits == 1
    assert deduped.results[0] == deduped.results[2]
    assert deduped.results[0] is not None
    assert deduped.results[1] is not None


def test_run_sweep_end_to_end(ctx):
    grid = SweepGrid(
        budgets=(0.5, 0.999999),
        defenses=(DefenseConfig.retpolines_only(), llvm_cfi_only()),
        workloads=("lmbench",),
        scales=("small",),
        seeds=2,
    )
    benches = [BY_NAME[n] for n in ("read", "write", "pipe")]
    result = run_sweep(grid, ctx.settings, benches=benches)
    assert len(result.cells) == 4
    for cell in result.cells:
        assert len(cell.geomeans) == 2
        assert cell.failed_seeds == 0
        assert cell.median is not None
        assert 0.0 < cell.air <= 1.0
        assert cell.residual_total >= 0
    # Security moves monotonically with budget: promotions leave guarded
    # fallback icalls behind, so residual targets grow and AIR shrinks as
    # the budget rises (matching the recorded fast-grid sweep).
    by_key = {c.key: c for c in result.cells}
    low = by_key[("small", "lmbench", "retpolines", 0.5)]
    high = by_key[("small", "lmbench", "retpolines", 0.999999)]
    assert high.residual_total > low.residual_total
    assert high.air < low.air
    assert result.frontier()
    assert result.stats["failed_cells"] == 0
    assert result.stats["cells_requested"] == 2 * (4 + 1)  # + lto baseline
    # warm rerun from the shared cache: byte-identical analysis output
    again = run_sweep(grid, ctx.settings, benches=benches)
    assert again.to_csv() == result.to_csv()
    assert again.render_report("text") == result.render_report("text")
    assert again.stats["disk_cache"]["hits"] > 0
