"""Nearest-rank order statistics: the shared percentile helper.

These are regression tests for the server's former ``_percentile``,
which indexed ``sorted[int(f * n)]`` and so overstated the percentile
by one rank whenever ``f * n`` landed on an integer — p50 of an
even-length window returned the upper middle sample, p99 of a
100-sample window returned the maximum.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.stats import iqr, median, nearest_rank, quartiles


def test_even_window_median_is_lower_middle():
    # int(0.5 * 4) == 2 would pick 3; nearest-rank picks 2.
    assert nearest_rank([1, 2, 3, 4], 0.50) == 2


def test_p99_of_100_samples_is_99th_not_max():
    window = list(range(1, 101))  # 1..100, sorted
    # int(0.99 * 100) == 99 indexed the maximum; ceil(99) - 1 = 98.
    assert nearest_rank(window, 0.99) == 99
    assert nearest_rank(window, 1.00) == 100


def test_fraction_edges_clamp():
    assert nearest_rank([5.0], 0.0) == 5.0
    assert nearest_rank([5.0], 1.0) == 5.0
    assert nearest_rank([1.0, 2.0], 0.0) == 1.0


def test_empty_sequence_rejected():
    with pytest.raises(ValueError):
        nearest_rank([], 0.5)


def test_two_seed_aggregation_shape():
    # The sweep engine's default fast grid uses 2 seeds: median and q1
    # are the lower sample, q3 the upper, IQR their spread.
    q = quartiles([0.07, 0.03])
    assert q == {"q1": 0.03, "median": 0.03, "q3": 0.07}
    assert median([0.07, 0.03]) == 0.03
    assert iqr([0.07, 0.03]) == pytest.approx(0.04)


def test_quartiles_hand_fixture():
    q = quartiles([4.0, 1.0, 3.0, 2.0, 5.0])
    assert q == {"q1": 2.0, "median": 3.0, "q3": 4.0}


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=1.0))
def test_nearest_rank_returns_actual_sample(values, fraction):
    ordered = sorted(values)
    result = nearest_rank(ordered, fraction)
    assert result in ordered


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=50))
def test_rank_monotone_in_fraction(values):
    ordered = sorted(values)
    samples = [nearest_rank(ordered, f / 10.0) for f in range(11)]
    assert samples == sorted(samples)


def test_server_snapshot_uses_nearest_rank():
    # EndpointStats integration: an even window's p50 must be the lower
    # middle sample (the pre-fix code returned the upper one).
    from repro.serve.server import EndpointStats

    stats = EndpointStats()
    for seconds in (0.010, 0.020, 0.030, 0.040):
        stats.record(seconds, ok=True)
    snap = stats.snapshot()
    assert snap["p50_ms"] == pytest.approx(20.0)
    assert snap["p99_ms"] == pytest.approx(40.0)
