"""Budget-sweep utility."""

import pytest

from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.sweeps import budget_sweep
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.workloads.lmbench import BY_NAME


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(
        EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.15,
            measure_ops_scale=0.1,
        )
    )


def test_sweep_is_roughly_monotone(ctx):
    benches = [BY_NAME[n] for n in ("read", "write", "pipe", "select_tcp")]
    result = budget_sweep(
        ctx,
        DefenseConfig.all_defenses(),
        budgets=(0.9, 0.999, 0.999999),
        benches=benches,
    )
    geomeans = [p.geomean for p in result.points]
    # higher budget never makes things much worse
    for lower, higher in zip(geomeans, geomeans[1:]):
        assert higher <= lower + 0.03
    # and every point beats the unoptimized reference
    assert all(g < result.baseline_geomean for g in geomeans)
    assert result.baseline_geomean > 0.5


def test_sweep_table_rendering(ctx):
    benches = [BY_NAME["read"]]
    result = budget_sweep(
        ctx,
        DefenseConfig.retpolines_only(),
        budgets=(0.99,),
        benches=benches,
    )
    text = result.to_table().to_text()
    assert "Budget sweep: retpolines" in text
    assert "99%" in text
    assert "unoptimized reference" in text


def test_sweep_points_carry_per_bench_overheads(ctx):
    benches = [BY_NAME["read"], BY_NAME["pipe"]]
    result = budget_sweep(
        ctx,
        DefenseConfig.lvi_only(),
        budgets=(0.999,),
        benches=benches,
    )
    assert set(result.points[0].overheads) == {"read", "pipe"}


def test_sweep_dedups_repeated_budgets(ctx):
    benches = [BY_NAME["read"], BY_NAME["write"]]
    result = budget_sweep(
        ctx,
        DefenseConfig.retpolines_only(),
        budgets=(0.99, 0.99, 0.999),
        benches=benches,
    )
    # Every requested budget still gets a point...
    assert [p.budget for p in result.points] == [0.99, 0.99, 0.999]
    assert result.points[0].geomean == result.points[1].geomean
    assert result.points[0].overheads == result.points[1].overheads
    # ...but the duplicate cell ran once: lto baseline + unoptimized
    # reference + 2 unique budgets, not the 5 requested configs.
    assert result.cells_evaluated == 4
