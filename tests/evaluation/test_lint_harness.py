"""EvalContext.lint: memoization, disk-cache reuse across variants,
parallel sharding over the persistent pool, serve integration."""

from __future__ import annotations

from repro.core.config import PibeConfig
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.hardening.defenses import DefenseConfig
from repro.kernel.spec import SmallSpec
from repro.static import analyze_module


def _settings(tmp_path=None, **kw):
    return EvalSettings(
        spec=SmallSpec(),
        profile_iterations=1,
        profile_ops_scale=0.05,
        measure_ops_scale=0.1,
        cache_dir=str(tmp_path) if tmp_path is not None else None,
        **kw,
    )


def test_lint_matches_direct_analysis_and_memoizes():
    ctx = EvalContext(_settings())
    try:
        config = PibeConfig.hardened(DefenseConfig.all_defenses())
        report = ctx.lint(config)
        assert ctx.lint(config) is report
        direct = analyze_module(ctx.variant(config).module)
        assert report.to_json() == direct.to_json()
    finally:
        ctx.close()


def test_lint_optimized_variant_uses_profile():
    ctx = EvalContext(_settings())
    try:
        config = PibeConfig.lax(DefenseConfig.all_defenses())
        report = ctx.lint(config)
        # Profile-gated rules ran (flow conservation needs the profile).
        assert "profile-flow-conservation" in report.rules
        direct = analyze_module(
            ctx.variant(config).module, profile=ctx.profile("lmbench")
        )
        assert report.to_json() == direct.to_json()
    finally:
        ctx.close()


def test_sweep_variants_share_lint_cache(tmp_path):
    ctx = EvalContext(_settings(tmp_path))
    try:
        cold = ctx.lint(PibeConfig.hardened(DefenseConfig.retpolines_only()))
        assert cold.stats["cache_misses"] > 0
        # A different defense stamp over the same prefix: the
        # speculation rule's env changes (config differs) but the
        # defense-insensitive rules (structural/targets/pointsto...)
        # still re-lint; the report must stay correct regardless.
        other = ctx.lint(PibeConfig.hardened(DefenseConfig.all_defenses()))
        direct = analyze_module(
            ctx.variant(PibeConfig.hardened(DefenseConfig.all_defenses())).module
        )
        assert other.to_json() == direct.to_json()
    finally:
        ctx.close()


def test_lint_warm_across_contexts(tmp_path):
    config = PibeConfig.hardened(DefenseConfig.all_defenses())
    a = EvalContext(_settings(tmp_path))
    try:
        cold = a.lint(config)
    finally:
        a.close()
    b = EvalContext(_settings(tmp_path))
    try:
        warm = b.lint(config)
        assert warm.to_json() == cold.to_json()
    finally:
        b.close()


def test_parallel_lint_matches_inline(tmp_path):
    config = PibeConfig.lax(DefenseConfig.all_defenses())
    par = EvalContext(_settings(tmp_path / "par", jobs=2))
    seq = EvalContext(_settings())
    try:
        parallel = par.lint(config, jobs=2)
        inline = seq.lint(config)
        assert parallel.to_json() == inline.to_json()
    finally:
        par.close()
        seq.close()


def test_rule_scoped_lint_memo_key_is_distinct():
    ctx = EvalContext(_settings())
    try:
        config = PibeConfig.hardened(DefenseConfig.all_defenses())
        full = ctx.lint(config)
        scoped = ctx.lint(config, rules=["PIBE5"])
        assert scoped is not full
        assert scoped.rules != full.rules
    finally:
        ctx.close()
