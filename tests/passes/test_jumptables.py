"""Switch lowering: jump tables vs cmp chains."""

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.passes.jumptables import JUMP_TABLE_MIN_CASES, LowerSwitches


def _switch_module(cases=5, weights=None, attrs=None):
    module = Module("m")
    func = Function("f", attrs=set(attrs) if attrs else None)
    b = IRBuilder(func)
    case_blocks = [b.new_block(f"c{i}") for i in range(cases)]
    b.switch([blk.label for blk in case_blocks], weights=weights)
    join = b.new_block("join")
    for i, blk in enumerate(case_blocks):
        b.at(blk).arith(i + 1)
        b.at(blk).jmp(join.label)
    b.at(join).ret()
    module.add_function(func)
    return module


def test_jump_table_lowering_emits_ijump():
    module = _switch_module(cases=5)
    report = LowerSwitches(allow_jump_tables=True).run(module)
    validate_module(module)
    assert report.jump_tables_emitted == 1
    ijumps = list(module.indirect_jump_sites())
    assert len(ijumps) == 1
    assert len(ijumps[0].targets) == 5
    # bounds check + table load precede the dispatch
    entry = module.get("f").entry
    opcodes = [i.opcode for i in entry.instructions]
    assert opcodes[-3:] == [Opcode.CMP, Opcode.LOAD, Opcode.IJUMP]


def test_small_switch_becomes_cmp_chain_even_when_allowed():
    module = _switch_module(cases=JUMP_TABLE_MIN_CASES - 1)
    report = LowerSwitches(allow_jump_tables=True).run(module)
    assert report.cmp_chains_emitted == 1
    assert list(module.indirect_jump_sites()) == []


def test_disabled_jump_tables_yield_cmp_chain():
    module = _switch_module(cases=6)
    report = LowerSwitches(allow_jump_tables=False).run(module)
    validate_module(module)
    assert report.jump_tables_emitted == 0
    assert report.cmp_chains_emitted == 1
    assert list(module.indirect_jump_sites()) == []
    # 5 guards for 6 cases
    cmps = sum(
        1 for i in module.get("f").instructions() if i.opcode == Opcode.CMP
    )
    assert cmps == 5


def test_single_case_switch_becomes_jmp():
    module = _switch_module(cases=1)
    LowerSwitches(allow_jump_tables=False).run(module)
    validate_module(module)
    term = module.get("f").entry.terminator
    assert term.opcode == Opcode.JMP


def test_asm_function_switch_never_becomes_table():
    module = _switch_module(cases=6, attrs=[FunctionAttr.INLINE_ASM])
    report = LowerSwitches(allow_jump_tables=True).run(module)
    assert report.jump_tables_emitted == 0


def _case_histogram(module, runs=600, seed=3):
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=seed).run_function("f", times=runs)
    total = sum(e[1] for e in rec.of_kind("mix"))
    return total


def test_cmp_chain_preserves_case_distribution():
    weights = [0.5, 0.25, 0.15, 0.07, 0.03]
    table = _switch_module(cases=5, weights=weights)
    chain = _switch_module(cases=5, weights=weights)
    LowerSwitches(allow_jump_tables=True).run(table)
    LowerSwitches(allow_jump_tables=False).run(chain)
    # expected per-run arith = sum((i+1) * w): compare the two lowerings
    t = _case_histogram(table) / 600
    c = _case_histogram(chain) / 600
    expected = sum((i + 1) * w for i, w in enumerate(weights))
    assert abs(t - expected) < 0.3
    assert abs(c - expected) < 0.3
