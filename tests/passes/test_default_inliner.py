"""LLVM-style bottom-up baseline inliner."""

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.passes.default_inliner import DefaultInliner
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile


def _module(callee_work, counts=None):
    module = Module("m")
    counts = counts or {}
    caller = Function("caller")
    b = IRBuilder(caller)
    profile = EdgeProfile()
    for name, work in callee_work.items():
        module.add_function(build_leaf(name, work=work))
        inst = b.call(name, num_args=0)
        if name in counts:
            profile.record_direct(inst.site_id, counts[name])
    b.ret()
    module.add_function(caller)
    lift_profile(module, profile)
    return module, profile


def _remaining(module):
    return {
        i.callee
        for i in module.get("caller").call_sites()
        if i.opcode == Opcode.CALL
    }


def test_small_cold_callees_inlined():
    module, profile = _module({"tiny": 2})
    report = DefaultInliner(profile).run(module)
    validate_module(module)
    assert _remaining(module) == set()
    assert report.inlined_sites == 1


def test_size_threshold_blocks_large_callees_regardless_of_heat():
    module, profile = _module({"large": 200}, counts={"large": 10_000})
    DefaultInliner(profile).run(module)
    # cost ~1000 exceeds even the hot threshold: never inlined, no matter
    # how hot the profile says it is (the paper's core criticism)
    assert _remaining(module) == {"large"}


def test_hot_threshold_bump_applies_to_profiled_sites():
    # cost ~ 5*(12+3) = 75: above the cold threshold (45), below hot (90)
    module, profile = _module(
        {"warm": 12, "cold_twin": 12}, counts={"warm": 50}
    )
    DefaultInliner(profile).run(module)
    assert _remaining(module) == {"cold_twin"}


def test_caller_growth_limit_stops_inlining():
    module, profile = _module({f"f{i}": 4 for i in range(40)})
    # caller starts at cost 205; each inline adds ~40 -> only the first few
    # sites fit under the growth limit
    DefaultInliner(profile, caller_growth_limit=300).run(module)
    assert 30 < len(_remaining(module)) < 40


def test_noinline_and_recursive_skipped():
    module = Module("m")
    module.add_function(
        build_leaf("locked", work=2, attrs=[FunctionAttr.NOINLINE])
    )
    rec = Function("rec")
    b = IRBuilder(rec)
    b.call("rec")
    b.ret()
    module.add_function(rec)
    caller = Function("caller")
    b = IRBuilder(caller)
    b.call("locked")
    b.call("rec")
    b.ret()
    module.add_function(caller)
    report = DefaultInliner().run(module)
    assert _remaining(module) == {"locked", "rec"}
    assert report.inlined_sites == 0


def test_bottom_up_composition():
    """leaf inlined into mid first, then the grown mid into caller (if it
    still fits)."""
    module = Module("m")
    module.add_function(build_leaf("leaf", work=2))
    mid = Function("mid")
    b = IRBuilder(mid)
    b.call("leaf", num_args=0)
    b.ret()
    module.add_function(mid)
    caller = Function("caller")
    b = IRBuilder(caller)
    b.call("mid")
    b.ret()
    module.add_function(caller)
    report = DefaultInliner().run(module)
    validate_module(module)
    assert report.inlined_sites == 2
    assert _remaining(module) == set()
