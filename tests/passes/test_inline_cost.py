"""InlineCost analysis: the paper's Section 5.2 cost model."""

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode
from repro.passes.inline_cost import (
    InlineCostCache,
    STANDARD_INSTRUCTION_COST,
    function_cost,
    instruction_cost,
)


def test_standard_instruction_cost_is_five():
    assert STANDARD_INSTRUCTION_COST == 5
    assert instruction_cost(Instruction(Opcode.ARITH)) == 5
    assert instruction_cost(Instruction(Opcode.LOAD)) == 5
    assert instruction_cost(Instruction(Opcode.RET)) == 5


def test_call_cost_scales_with_arguments():
    # paper: a nested call costs 5 + 5 * num_args
    assert instruction_cost(Instruction(Opcode.CALL, callee="f", num_args=0)) == 5
    assert instruction_cost(Instruction(Opcode.CALL, callee="f", num_args=3)) == 20
    assert instruction_cost(Instruction(Opcode.ICALL, num_args=2)) == 15


def test_function_cost_sums_instructions():
    func = Function("f")
    b = IRBuilder(func)
    b.arith(3)            # 15
    b.call("g", num_args=2)  # 15
    b.ret()               # 5
    assert function_cost(func) == 35


def test_cache_returns_and_invalidates():
    func = Function("f")
    b = IRBuilder(func)
    b.arith(1)
    b.ret()
    cache = InlineCostCache()
    assert cache.cost(func) == 10
    # mutate behind the cache's back: stale until invalidated
    func.entry.instructions.insert(0, Instruction(Opcode.ARITH))
    assert cache.cost(func) == 10
    cache.invalidate("f")
    assert cache.cost(func) == 15


def test_cache_add_delta():
    func = Function("f")
    b = IRBuilder(func)
    b.ret()
    cache = InlineCostCache()
    assert cache.add_delta("f", 100) is None  # not cached yet
    cache.cost(func)
    assert cache.add_delta("f", 100) == 105
    assert cache.cost(func) == 105
