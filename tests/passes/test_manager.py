"""Pass manager sequencing, reporting and validation hooks."""

import pytest

from repro.ir.builder import build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.validate import ValidationError
from repro.passes.manager import FunctionPass, ModulePass, PassManager, run_pipeline


class _CountingPass(ModulePass):
    name = "counting"

    def run(self, module):
        return len(module)


class _BreakingPass(ModulePass):
    name = "breaking"

    def run(self, module):
        module.add_function(Function("broken"))  # no blocks -> invalid
        return None


class _SizingPass(FunctionPass):
    name = "sizing"

    def run_on_function(self, func, module):
        return func.size()


def _module():
    module = Module("m")
    module.add_function(build_leaf("a"))
    module.add_function(build_leaf("b"))
    return module


def test_reports_keyed_by_pass_name():
    reports = run_pipeline(_module(), [_CountingPass()])
    assert reports == {"counting": 2}


def test_records_include_timing():
    manager = PassManager()
    manager.add(_CountingPass())
    manager.run(_module())
    assert len(manager.records) == 1
    record = manager.records[0]
    assert record.name == "counting"
    assert record.seconds >= 0
    assert record.report == 2


def test_validation_after_each_pass_catches_breakage():
    manager = PassManager(validate_after_each=True)
    manager.add(_BreakingPass())
    with pytest.raises(ValidationError):
        manager.run(_module())


def test_validation_can_be_disabled():
    manager = PassManager(validate_after_each=False)
    manager.add(_BreakingPass())
    manager.run(_module())  # no exception


def test_function_pass_visits_every_function():
    reports = run_pipeline(_module(), [_SizingPass()])
    assert reports["sizing"] == {"a": 7, "b": 7}


def test_base_pass_requires_run_implementation():
    with pytest.raises(NotImplementedError):
        ModulePass().run(_module())
    with pytest.raises(NotImplementedError):
        FunctionPass().run(_module())
