"""PIBE's greedy inliner: budget, rules, inheritance, accounting."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import ATTR_EDGE_COUNT, FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.passes.inliner import PibeInliner
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile


def _make_module(counts, callee_sizes=None, callee_attrs=None):
    """One caller with a direct call per entry of ``counts``."""
    callee_sizes = callee_sizes or {}
    callee_attrs = callee_attrs or {}
    module = Module("m")
    profile = EdgeProfile()
    caller = Function("caller")
    b = IRBuilder(caller)
    for name, count in counts.items():
        size = callee_sizes.get(name, 3)
        module.add_function(
            build_leaf(name, work=size, attrs=callee_attrs.get(name))
        )
        inst = b.call(name, num_args=0)
        profile.record_direct(inst.site_id, count)
        profile.record_invocation(name, count)
    b.ret()
    module.add_function(caller)
    profile.record_invocation("caller", max(counts.values(), default=1))
    lift_profile(module, profile)
    return module, profile


def _remaining_callees(module):
    return {
        inst.callee
        for inst in module.get("caller").call_sites()
        if inst.opcode == Opcode.CALL
    }


def test_inlines_everything_at_full_budget():
    module, profile = _make_module({"a": 100, "b": 50, "c": 10})
    report = PibeInliner(profile, budget=1.0).run(module)
    validate_module(module)
    assert _remaining_callees(module) == set()
    assert report.inlined_sites == 3
    assert report.inlined_weight == 160
    assert report.returns_elided_sites == 3
    assert report.returns_elided_weight == 160


def test_budget_excludes_cold_tail():
    counts = {"hot": 9000, "warm": 900, "cold": 10}
    module, profile = _make_module(counts)
    PibeInliner(profile, budget=0.99).run(module)
    # hot+warm cover 99.9% of weight; cold is outside the 99% budget
    assert _remaining_callees(module) == {"cold"}


def test_rule2_blocks_fat_callers():
    module, profile = _make_module({"a": 100})
    # caller body (call + ret) costs 10, strictly above a threshold of 5
    report = PibeInliner(
        profile, budget=1.0, caller_threshold=5
    ).run(module)
    assert _remaining_callees(module) == {"a"}
    assert report.blocked_rule2_sites == 1
    assert report.blocked_rule2_weight == 100


def test_rule3_blocks_fat_callees():
    module, profile = _make_module(
        {"big": 100, "small": 90}, callee_sizes={"big": 500, "small": 2}
    )
    report = PibeInliner(
        profile, budget=1.0, callee_threshold=100
    ).run(module)
    assert _remaining_callees(module) == {"big"}
    assert report.blocked_rule3_sites == 1
    assert report.blocked_rule3_weight == 100
    assert report.inlined_sites == 1


def test_noinline_counts_as_other():
    module, profile = _make_module(
        {"locked": 80, "free": 70},
        callee_attrs={"locked": [FunctionAttr.NOINLINE]},
    )
    report = PibeInliner(profile, budget=1.0).run(module)
    assert _remaining_callees(module) == {"locked"}
    assert report.blocked_other_sites == 1
    assert report.blocked_other_weight == 80


def test_optnone_caller_blocked():
    module, profile = _make_module({"a": 50})
    module.get("caller").attrs.add(FunctionAttr.OPTNONE)
    report = PibeInliner(profile, budget=1.0).run(module)
    assert report.blocked_other_sites == 1
    assert _remaining_callees(module) == {"a"}


def test_recursive_callee_blocked():
    module = Module("m")
    rec = Function("rec")
    b = IRBuilder(rec)
    b.call("rec")
    b.ret()
    module.add_function(rec)
    caller = Function("caller")
    b = IRBuilder(caller)
    inst = b.call("rec")
    b.ret()
    module.add_function(caller)
    profile = EdgeProfile()
    profile.record_direct(inst.site_id, 10)
    lift_profile(module, profile)
    report = PibeInliner(profile, budget=1.0).run(module)
    assert report.blocked_other_sites >= 1
    assert report.inlined_sites == 0


def test_lax_heuristics_disable_rules_for_hot_prefix():
    module, profile = _make_module(
        {"big": 1000, "tiny": 1}, callee_sizes={"big": 500}
    )
    report = PibeInliner(
        profile,
        budget=0.999999,
        callee_threshold=100,
        lax_heuristics=True,
        lax_budget=0.99,
    ).run(module)
    # 'big' is inside the 99% prefix: Rule 3 is waived for it
    assert "big" not in _remaining_callees(module)
    assert report.blocked_rule3_weight == 0 or "tiny" in _remaining_callees(module)


def test_hottest_first_ordering():
    """Hotter sites must be inlined before colder ones can exhaust the
    caller budget (the core Rule 1 motivation)."""
    module, profile = _make_module(
        {"hot": 1000, "cold": 10},
        callee_sizes={"hot": 30, "cold": 30},
    )
    # caller budget only fits one of the two inlines (the caller costs
    # 15 before inlining and ~180 after absorbing one 33-instruction body)
    PibeInliner(
        profile, budget=1.0, caller_threshold=100
    ).run(module)
    assert "hot" not in _remaining_callees(module)
    assert "cold" in _remaining_callees(module)


def test_constant_ratio_inheritance_requeues_nested_sites():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    mid = Function("mid")
    b = IRBuilder(mid)
    nested = b.call("leaf", num_args=0)
    b.ret()
    module.add_function(mid)
    caller = Function("caller")
    b = IRBuilder(caller)
    outer = b.call("mid")
    b.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    profile.record_direct(outer.site_id, 100)
    profile.record_direct(nested.site_id, 200)  # mid also called elsewhere
    profile.record_invocation("caller", 100)
    profile.record_invocation("mid", 200)
    profile.record_invocation("leaf", 200)
    lift_profile(module, profile)

    report = PibeInliner(profile, budget=1.0).run(module)
    validate_module(module)
    # hottest-first: the nested site (200) is inlined into mid, then mid
    # (100) into the caller — no direct calls survive anywhere hot
    assert report.inlined_sites == 2
    assert _remaining_callees(module) == set()
    assert report.inlined_weight == 300


def test_inherited_value_profiles_scaled():
    module = Module("m")
    module.add_function(build_leaf("t1"))
    module.add_function(build_leaf("t2"))
    mid = Function("mid", attrs=set())
    b = IRBuilder(mid)
    icall = b.icall({"t1": 1, "t2": 1})
    b.ret()
    module.add_function(mid)
    caller = Function("caller")
    b = IRBuilder(caller)
    outer = b.call("mid")
    b.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    profile.record_direct(outer.site_id, 50)
    profile.record_indirect(icall.site_id, "t1", 60)
    profile.record_indirect(icall.site_id, "t2", 40)
    profile.record_invocation("mid", 100)
    lift_profile(module, profile)
    PibeInliner(profile, budget=1.0).run(module)

    cloned_icalls = [
        inst
        for inst in module.get("caller").call_sites()
        if inst.opcode == Opcode.ICALL
    ]
    assert len(cloned_icalls) == 1
    from repro.ir.types import ATTR_VALUE_PROFILE

    # ratio = 50 / 100 = 0.5
    assert cloned_icalls[0].attrs[ATTR_VALUE_PROFILE] == [("t1", 30), ("t2", 20)]


def test_bad_budget_rejected():
    with pytest.raises(ValueError):
        PibeInliner(EdgeProfile(), budget=0.0)
    with pytest.raises(ValueError):
        PibeInliner(EdgeProfile(), budget=1.5)


def test_report_candidate_accounting():
    module, profile = _make_module({"a": 70, "b": 20, "c": 10})
    report = PibeInliner(profile, budget=0.9).run(module)
    assert report.total_profiled_sites == 3
    assert report.total_profiled_weight == 100
    # 90% budget: a (70%) then b (90%) reach the limit
    assert report.candidate_sites == 2
    assert report.candidate_weight == 90


def test_inherit_counts_round_half_up():
    """Plain int() truncation bled one count per inheritance level; the
    regression: counts and value profiles round half-up."""
    from repro.ir.types import ATTR_VALUE_PROFILE

    caller = Function("f")
    b = IRBuilder(caller)
    inst = b.call("g")
    inst.attrs[ATTR_EDGE_COUNT] = 5
    inst.attrs[ATTR_VALUE_PROFILE] = [("t1", 3), ("t2", 1)]
    PibeInliner._inherit_counts(inst, 0.5)
    assert inst.attrs[ATTR_EDGE_COUNT] == 3  # 2.5 rounds up, not down to 2
    assert inst.attrs[ATTR_VALUE_PROFILE] == [("t1", 2), ("t2", 1)]


def test_inheritance_conserves_weight_across_clones():
    """Two equal-ratio clones of an odd-count nested site must not lose
    weight in aggregate (5 -> 3 + 3, never 2 + 2)."""
    module = Module("m")
    # leaf is too fat to inline, so the cloned sites survive inspection
    module.add_function(build_leaf("leaf", work=400))
    mid = Function("mid")
    b = IRBuilder(mid)
    nested = b.call("leaf", num_args=0)
    b.ret()
    module.add_function(mid)
    caller = Function("caller")
    b = IRBuilder(caller)
    first = b.call("mid")
    second = b.call("mid")
    b.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    profile.record_direct(first.site_id, 10)
    profile.record_direct(second.site_id, 10)
    profile.record_direct(nested.site_id, 5)
    profile.record_invocation("caller", 10)
    profile.record_invocation("mid", 20)
    profile.record_invocation("leaf", 5)
    lift_profile(module, profile)

    PibeInliner(profile, budget=1.0, callee_threshold=100).run(module)
    validate_module(module)
    cloned = [
        inst
        for inst in module.get("caller").call_sites()
        if inst.callee == "leaf"
    ]
    # first inline: ratio 10/20 = 0.5, and 5 * 0.5 rounds UP to 3 (the
    # truncating regression produced 2); second inline: mid's residual
    # invocation count is 10, ratio 1.0, the clone keeps the full 5
    assert [inst.attrs[ATTR_EDGE_COUNT] for inst in cloned] == [3, 5]
    assert sum(inst.attrs[ATTR_EDGE_COUNT] for inst in cloned) >= 5


def test_deep_inline_chain_keeps_index_consistent():
    """A 5-deep call chain fully collapses: the incremental site index
    must keep locating sites as blocks split, tails move to continuation
    blocks and cloned callee bodies appear."""
    module = Module("m")
    names = [f"fn{i}" for i in range(5)]
    profile = EdgeProfile()
    module.add_function(build_leaf(names[-1], work=2))
    for i in reversed(range(4)):
        func = Function(names[i])
        b = IRBuilder(func)
        b.arith(2)
        inst = b.call(names[i + 1], num_args=0)
        b.arith(1)
        b.ret()
        module.add_function(func)
        profile.record_direct(inst.site_id, 100)
    for name in names:
        profile.record_invocation(name, 100)
    lift_profile(module, profile)

    report = PibeInliner(profile, budget=1.0).run(module)
    validate_module(module)
    assert report.inlined_sites == 4
    top = module.get("fn0")
    assert not any(inst.opcode == Opcode.CALL for inst in top.instructions())
