"""LTO cleanup passes: dead-function elimination and CFG simplification."""

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import validate_module
from repro.passes.lto import DeadFunctionElimination, SimplifyCFG


def _reachability_module():
    module = Module("m")
    module.add_function(build_leaf("used_leaf"))
    module.add_function(build_leaf("dead_leaf"))
    module.add_function(build_leaf("table_leaf"))
    module.add_function(
        build_leaf("boot_fn", attrs=[FunctionAttr.BOOT_ONLY])
    )
    handler = Function("sys_x", attrs={FunctionAttr.SYSCALL_ENTRY})
    b = IRBuilder(handler)
    b.call("used_leaf")
    b.ret()
    module.add_function(handler)
    module.register_syscall("x", "sys_x")
    module.add_fptr_table(FunctionPointerTable("ops", ["table_leaf"]))
    return module


def test_dce_removes_only_unreachable():
    module = _reachability_module()
    report = DeadFunctionElimination().run(module)
    assert report.removed_functions == 1
    assert "dead_leaf" not in module
    # roots survive: syscall path, table entries, boot code
    for name in ("sys_x", "used_leaf", "table_leaf", "boot_fn"):
        assert name in module
    validate_module(module)


def test_dce_keeps_transitive_callees_of_tables():
    module = _reachability_module()
    callee = build_leaf("probe_helper")
    module.add_function(callee)
    table_fn = module.get("table_leaf")
    # rebuild table_leaf to call the helper
    table_fn.blocks.clear()
    table_fn.entry_label = None
    b = IRBuilder(table_fn)
    b.call("probe_helper")
    b.ret()
    DeadFunctionElimination().run(module)
    assert "probe_helper" in module


def test_simplify_cfg_merges_jump_chains():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    middle = b.new_block("middle")
    end = b.new_block("end")
    b.arith(1)
    b.jmp(middle.label)
    b.at(middle).arith(1)
    b.at(middle).jmp(end.label)
    b.at(end).ret()
    module.add_function(func)

    report = SimplifyCFG().run(module)
    validate_module(module)
    assert report.merged_blocks == 2
    assert len(func.blocks) == 1
    opcodes = [i.opcode for i in func.entry.instructions]
    assert opcodes == [Opcode.ARITH, Opcode.ARITH, Opcode.RET]


def test_simplify_cfg_keeps_shared_blocks():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    shared = b.new_block("shared")
    other = b.new_block("other")
    b.br(shared.label, other.label, p_taken=0.5)
    b.at(other).jmp(shared.label)
    b.at(shared).ret()
    module.add_function(func)
    report = SimplifyCFG().run(module)
    # 'shared' has two predecessors: must not be merged into 'other'
    assert "shared" in func.blocks
    validate_module(module)


def test_simplify_cfg_ignores_self_loops():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    loop = b.new_block("loop")
    b.jmp(loop.label)
    b.at(loop).jmp(loop.label)
    module.add_function(func)
    SimplifyCFG().run(module)  # must terminate
    assert "loop" in func.blocks
