"""Indirect call promotion: selection, guard-chain materialization,
semantics preservation, and reporting."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_EDGE_COUNT,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    FunctionAttr,
    Opcode,
)
from repro.ir.validate import validate_module
from repro.passes.icp import IndirectCallPromotion
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile


def _make_module(observed, ground_truth=None, vcall=False, asm=False):
    """A caller with one indirect call; ``observed`` is the value profile."""
    module = Module("m")
    ground_truth = ground_truth or dict(observed)
    for target in set(observed) | set(ground_truth):
        module.add_function(build_leaf(target, work=2))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.arith(1)
    icall = b.icall(ground_truth, num_args=1, vcall=vcall, asm=asm)
    b.arith(1)
    b.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    for target, count in observed.items():
        profile.record_indirect(icall.site_id, target, count)
    lift_profile(module, profile)
    return module, icall


def test_promotes_all_targets_within_budget():
    module, icall = _make_module({"a": 70, "b": 30})
    report = IndirectCallPromotion(budget=1.0).run(module)
    validate_module(module)
    assert report.promoted_sites == 1
    assert report.promoted_targets == 2
    assert report.promoted_weight == 100
    caller = module.get("caller")
    promoted = [
        inst
        for inst in caller.call_sites()
        if inst.opcode == Opcode.CALL and inst.attrs.get(ATTR_PROMOTED)
    ]
    assert {p.callee for p in promoted} == {"a", "b"}
    # promoted calls carry the observed counts for the inliner
    assert {p.attrs[ATTR_EDGE_COUNT] for p in promoted} == {70, 30}


def test_budget_limits_promoted_targets():
    module, icall = _make_module({"a": 95, "b": 4, "c": 1})
    report = IndirectCallPromotion(budget=0.95).run(module)
    # hottest-first greedy: 'a' alone covers the 95% budget
    assert report.promoted_targets == 1
    assert report.records[0].targets == ("a",)


def test_fallback_icall_remains_with_residual_targets():
    module, icall = _make_module({"a": 80, "b": 20})
    IndirectCallPromotion(budget=0.8).run(module)
    caller = module.get("caller")
    fallbacks = [
        i for i in caller.call_sites() if i.opcode == Opcode.ICALL
    ]
    assert len(fallbacks) == 1
    assert fallbacks[0].attrs[ATTR_TARGETS] == {"b": 20}
    assert ATTR_VALUE_PROFILE not in fallbacks[0].attrs


def test_full_promotion_keeps_fallback_with_original_dist():
    module, icall = _make_module({"a": 50, "b": 50})
    IndirectCallPromotion(budget=1.0).run(module)
    caller = module.get("caller")
    fallbacks = [i for i in caller.call_sites() if i.opcode == Opcode.ICALL]
    assert len(fallbacks) == 1
    # residual empty -> fallback keeps the full distribution (and is
    # unreachable because the last guard probability is 1.0)
    assert fallbacks[0].attrs[ATTR_TARGETS] == {"a": 50, "b": 50}


def test_semantics_preserved_after_promotion():
    """The guard chain must preserve the call distribution and the
    surrounding computation."""
    module, icall = _make_module({"a": 3, "b": 1})
    baseline = TraceRecorder()
    Interpreter(module, [baseline], seed=5).run_function("caller", times=400)

    IndirectCallPromotion(budget=1.0).run(module)
    validate_module(module)
    transformed = TraceRecorder()
    Interpreter(module, [transformed], seed=5).run_function(
        "caller", times=400
    )

    def leaf_entries(rec):
        return {
            name: sum(1 for e in rec.events if e[0] == "enter" and e[1] == name)
            for name in ("a", "b")
        }

    before = leaf_entries(baseline)
    after = leaf_entries(transformed)
    # distribution approximately preserved (stochastic, generous bounds)
    assert after["a"] + after["b"] == 400
    assert abs(before["a"] - after["a"]) < 80
    # arith work unchanged: 2 in caller + 2 per leaf call
    assert sum(e[1] for e in transformed.of_kind("mix")) == sum(
        e[1] for e in baseline.of_kind("mix")
    )


def test_vcall_chain_gets_vtable_load():
    module, icall = _make_module({"a": 1}, vcall=True)
    IndirectCallPromotion(budget=1.0).run(module)
    caller = module.get("caller")
    entry = caller.entry
    opcodes = [i.opcode for i in entry.instructions]
    assert Opcode.LOAD in opcodes  # vtable fetch before the first guard
    assert Opcode.CMP in opcodes


def test_asm_sites_never_promoted():
    module, icall = _make_module({"a": 100}, asm=True)
    report = IndirectCallPromotion(budget=1.0).run(module)
    assert report.promoted_sites == 0
    assert report.total_sites == 0


def test_optnone_function_skipped():
    module, icall = _make_module({"a": 100})
    module.get("caller").attrs.add(FunctionAttr.OPTNONE)
    report = IndirectCallPromotion(budget=1.0).run(module)
    assert report.promoted_sites == 0


def test_max_targets_per_site_cap():
    module, icall = _make_module({"a": 40, "b": 30, "c": 30})
    report = IndirectCallPromotion(
        budget=1.0, max_targets_per_site=1
    ).run(module)
    assert report.promoted_targets == 1


def _make_two_site_module(site_a, site_b):
    """Two callers, one profiled indirect call each."""
    module = Module("m")
    for target in {*site_a, *site_b}:
        module.add_function(build_leaf(target, work=2))
    icalls = []
    for name, observed in (("caller_a", site_a), ("caller_b", site_b)):
        caller = Function(name)
        b = IRBuilder(caller)
        b.arith(1)
        icalls.append(b.icall(dict(observed), num_args=1))
        b.ret()
        module.add_function(caller)
    profile = EdgeProfile()
    for icall, observed in zip(icalls, (site_a, site_b)):
        for target, count in observed.items():
            profile.record_indirect(icall.site_id, target, count)
    lift_profile(module, profile)
    return module


def test_capped_site_weight_does_not_consume_budget():
    """Regression: weight skipped at a capped site must not be charged
    against the budget, or colder sites get starved before the promoted
    weight reaches the requested fraction."""
    # Hottest-first order: a(50) at site A, b(30) at site A, c(20) at B.
    # With a 55% budget and one target per site, 'b' is skipped by the
    # cap; the promoted weight is only 50/100, so selection must continue
    # to 'c'. The old accounting charged the skipped 30 and stopped.
    module = _make_two_site_module({"a": 50, "b": 30}, {"c": 20})
    report = IndirectCallPromotion(
        budget=0.55, max_targets_per_site=1
    ).run(module)
    validate_module(module)
    promoted = {t for r in report.records for t in r.targets}
    assert promoted == {"a", "c"}
    assert report.promoted_weight == 70
    # the promoted weight actually reaches the budget fraction
    assert report.promoted_weight >= report.total_weight * 0.55


def test_capped_coverage_matches_uncapped_at_full_budget():
    """At budget 1.0 a per-site cap must still promote every site's
    hottest target — capping one site cannot starve another."""
    capped = _make_two_site_module({"a": 80, "b": 15}, {"c": 5})
    capped_report = IndirectCallPromotion(
        budget=1.0, max_targets_per_site=1
    ).run(capped)
    uncapped = _make_two_site_module({"a": 80, "b": 15}, {"c": 5})
    uncapped_report = IndirectCallPromotion(budget=1.0).run(uncapped)
    assert capped_report.promoted_sites == uncapped_report.promoted_sites == 2
    # cap drops only the capped site's colder targets, nothing else
    assert {t for r in capped_report.records for t in r.targets} == {"a", "c"}


def test_empty_ground_truth_fallback_carries_promoted_distribution():
    """Regression: a site with an empty ATTR_TARGETS ground truth must not
    emit a fallback ICALL with an empty distribution (weighted_choice
    raises on one; the static analyzer flags it as PIBE106)."""
    module = Module("m")
    for target in ("a", "b"):
        module.add_function(build_leaf(target, work=2))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.arith(1)
    icall = b.icall({}, num_args=1)  # no ground truth at this site
    b.ret()
    module.add_function(caller)
    profile = EdgeProfile()
    profile.record_indirect(icall.site_id, "a", 60)
    profile.record_indirect(icall.site_id, "b", 40)
    lift_profile(module, profile)

    report = IndirectCallPromotion(budget=1.0).run(module)
    assert report.promoted_sites == 1
    fallbacks = [
        i for i in module.get("caller").call_sites() if i.opcode == Opcode.ICALL
    ]
    assert len(fallbacks) == 1
    # fallback carries the promoted-profile distribution, never {}
    assert fallbacks[0].attrs[ATTR_TARGETS] == {"a": 60, "b": 40}
    validate_module(module)
    # and the transformed function still executes without ValueError
    Interpreter(module, [TraceRecorder()], seed=3).run_function(
        "caller", times=50
    )


def test_sites_without_value_profile_untouched():
    module = Module("m")
    module.add_function(build_leaf("t"))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.icall({"t": 1})
    b.ret()
    module.add_function(caller)
    report = IndirectCallPromotion(budget=1.0).run(module)
    assert report.total_sites == 0
    assert report.promoted_sites == 0


def test_bad_budget_rejected():
    with pytest.raises(ValueError):
        IndirectCallPromotion(budget=0.0)
    with pytest.raises(ValueError):
        IndirectCallPromotion(budget=1.0001)


def test_report_fractions():
    module, icall = _make_module({"a": 90, "b": 10})
    report = IndirectCallPromotion(budget=0.9).run(module)
    assert report.weight_fraction == pytest.approx(0.9)
    assert report.site_fraction == pytest.approx(1.0)
    assert report.target_fraction == pytest.approx(0.5)
