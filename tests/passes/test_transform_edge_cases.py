"""Edge cases in the transformation passes: multiple sites per block,
loops, interleavings of ICP and inlining."""

import pytest

from repro.engine.interpreter import ExecutionError, Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.validate import validate_module
from repro.passes.icp import IndirectCallPromotion
from repro.passes.inliner import PibeInliner
from repro.passes.lto import SimplifyCFG
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile


def _mix_total(module, entry, times=200, seed=6):
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=seed).run_function(entry, times=times)
    return sum(e[1] for e in rec.of_kind("mix"))


def test_two_icalls_in_one_block_both_promoted():
    module = Module("m")
    module.add_function(build_leaf("a", work=1))
    module.add_function(build_leaf("b", work=2))
    caller = Function("caller")
    builder = IRBuilder(caller)
    first = builder.icall({"a": 1})
    second = builder.icall({"b": 1})
    builder.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    profile.record_indirect(first.site_id, "a", 50)
    profile.record_indirect(second.site_id, "b", 50)
    lift_profile(module, profile)

    report = IndirectCallPromotion(budget=1.0).run(module)
    validate_module(module)
    # the second site moved into the first promotion's continuation block
    # and must still be found and promoted
    assert report.promoted_sites == 2
    # execution is deterministic (singleton targets): 1 + 2 work units/run
    assert _mix_total(module, "caller", times=10) == 30


def test_promotion_then_inlining_flattens_everything():
    module = Module("m")
    module.add_function(build_leaf("a", work=3, loads=0, stores=0))
    caller = Function("caller")
    builder = IRBuilder(caller)
    icall = builder.icall({"a": 1})
    builder.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    profile.record_indirect(icall.site_id, "a", 100)
    profile.record_invocation("caller", 100)
    profile.record_invocation("a", 100)
    lift_profile(module, profile)

    IndirectCallPromotion(budget=1.0).run(module)
    inline_report = PibeInliner(profile, budget=1.0).run(module)
    SimplifyCFG().run(module)
    validate_module(module)
    # the promoted direct call was inlined: hot path has no calls at all
    assert inline_report.inlined_sites == 1
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=1).run_function("caller", times=20)
    assert rec.of_kind("call") == []
    # the fallback icall is unreachable (guard p=1.0)
    assert rec.of_kind("icall") == []


def test_inlining_call_inside_loop_body():
    module = Module("m")
    module.add_function(build_leaf("work_item", work=2, loads=0, stores=0))
    caller = Function("caller")
    builder = IRBuilder(caller)
    head = builder.new_block("head")
    after = builder.new_block("after")
    builder.jmp(head.label)
    builder.set_block(head)
    call = builder.call("work_item")
    builder.br(head.label, after.label, trip=3)
    builder.at(after).ret()
    module.add_function(caller)

    before = _mix_total(module, "caller", times=5)
    profile = EdgeProfile()
    profile.record_direct(call.site_id, 400)
    profile.record_invocation("caller", 100)
    profile.record_invocation("work_item", 400)
    lift_profile(module, profile)
    PibeInliner(profile, budget=1.0).run(module)
    validate_module(module)
    # loop trip semantics survive the splice: same total work
    assert _mix_total(module, "caller", times=5) == before
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=6).run_function("caller", times=5)
    assert rec.of_kind("call") == []
    # 4 body executions per run x 5 runs x 2 arith = 40 from the callee,
    # confirming the loop still iterates 4 times
    assert sum(e[1] for e in rec.of_kind("mix")) == 40


def test_inliner_max_operations_safety_valve():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    caller = Function("caller")
    builder = IRBuilder(caller)
    sites = [builder.call("leaf") for _ in range(10)]
    builder.ret()
    module.add_function(caller)
    profile = EdgeProfile()
    for site in sites:
        profile.record_direct(site.site_id, 100)
    lift_profile(module, profile)
    report = PibeInliner(profile, budget=1.0, max_operations=3).run(module)
    # stopped early, cleanly
    assert report.inlined_sites <= 3
    validate_module(module)


def test_interpreter_reports_undefined_direct_callee():
    module = Module("m")
    func = Function("f")
    builder = IRBuilder(func)
    builder.call("ghost")
    builder.ret()
    module.add_function(func)
    with pytest.raises(ExecutionError, match="undefined @ghost"):
        Interpreter(module).run_function("f")


def test_interpreter_reports_undefined_icall_target():
    module = Module("m")
    func = Function("f")
    builder = IRBuilder(func)
    builder.icall({"phantom": 1})
    builder.ret()
    module.add_function(func)
    with pytest.raises(ExecutionError, match="undefined @phantom"):
        Interpreter(module).run_function("f")


def test_icp_preserves_num_args_on_promoted_calls():
    module = Module("m")
    module.add_function(build_leaf("a"))
    caller = Function("caller")
    builder = IRBuilder(caller)
    icall = builder.icall({"a": 1}, num_args=3)
    builder.ret()
    module.add_function(caller)
    profile = EdgeProfile()
    profile.record_indirect(icall.site_id, "a", 10)
    lift_profile(module, profile)
    IndirectCallPromotion(budget=1.0).run(module)
    from repro.ir.types import ATTR_PROMOTED, Opcode

    promoted = [
        i
        for i in caller.call_sites()
        if i.opcode == Opcode.CALL and i.attrs.get(ATTR_PROMOTED)
    ]
    assert promoted[0].num_args == 3
