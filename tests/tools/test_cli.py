"""CLI toolchain: the full build -> profile -> optimize -> benchmark ->
attack workflow through `python -m repro`."""

import json

import pytest

from repro.tools.cli import build_parser, main


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("cli")


@pytest.fixture(scope="module")
def kernel_file(workdir):
    path = workdir / "kernel.ir"
    assert main(["build-kernel", "--small", "-o", str(path)]) == 0
    assert path.exists()
    return path


@pytest.fixture(scope="module")
def profile_file(workdir, kernel_file):
    path = workdir / "profile.json"
    assert (
        main(
            [
                "profile",
                "-k",
                str(kernel_file),
                "--iterations",
                "1",
                "--ops-scale",
                "0.02",
                "-o",
                str(path),
            ]
        )
        == 0
    )
    return path


@pytest.fixture(scope="module")
def hardened_file(workdir, kernel_file, profile_file):
    path = workdir / "hardened.ir"
    assert (
        main(
            [
                "optimize",
                "-k",
                str(kernel_file),
                "-p",
                str(profile_file),
                "--defenses",
                "all",
                "--icp-budget",
                "0.999999",
                "--inline-budget",
                "0.999999",
                "--lax",
                "-o",
                str(path),
            ]
        )
        == 0
    )
    return path


def test_build_kernel_dump_is_parseable(kernel_file):
    from repro.ir.parser import parse_module
    from repro.ir.validate import validate_module

    module = parse_module(kernel_file.read_text())
    validate_module(module)
    assert module.syscalls


def test_profile_json_is_loadable(profile_file):
    data = json.loads(profile_file.read_text())
    assert data["direct"]
    assert data["indirect"]


def test_optimize_emits_hardened_image(hardened_file, capsys):
    text = hardened_file.read_text()
    assert "!defense=" in text
    assert "defenses retpolines=1 ret_retpolines=1 lvi_cfi=1" in text


def test_stats_command(kernel_file, capsys):
    assert main(["stats", "-k", str(kernel_file)]) == 0
    out = capsys.readouterr().out
    assert "functions" in out
    assert "attack surface" in out


def test_benchmark_with_baseline(kernel_file, hardened_file, capsys):
    assert (
        main(
            [
                "benchmark",
                "-k",
                str(hardened_file),
                "--baseline",
                str(kernel_file),
                "--suite",
                "table3",
                "--ops-scale",
                "0.05",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "geomean" in out
    assert "overhead" in out


def test_attack_command(hardened_file, capsys):
    assert main(["attack", "-k", str(hardened_file), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "defenses applied: all-defenses" in out
    assert "ret2spec: 0 hijackable" in out
    assert "spectre_v2" in out


def test_hotspots_command(kernel_file, capsys):
    assert (
        main(
            ["hotspots", "-k", str(kernel_file), "--ops", "5", "--top", "5",
             "-s", "read"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "self%" in out
    # vfs_read dominates the read path's top-5
    assert "vfs_read" in out


def test_hotspots_unknown_syscall(kernel_file, capsys):
    assert (
        main(["hotspots", "-k", str(kernel_file), "-s", "frobnicate"]) == 2
    )


def test_diff_command(kernel_file, hardened_file, capsys):
    assert main(["diff", str(kernel_file), str(hardened_file)]) == 0
    out = capsys.readouterr().out
    assert "size:" in out
    assert "defense" in out


def test_evaluate_single_experiment(capsys):
    assert main(["evaluate", "--fast", "-e", "figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_evaluate_unknown_experiment(capsys):
    assert main(["evaluate", "--fast", "-e", "table99"]) == 2


def test_parser_rejects_missing_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_clean_kernel_text(kernel_file, capsys):
    assert main(["lint", "-k", str(kernel_file)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_hardened_with_profile_json(hardened_file, profile_file, capsys):
    assert (
        main(
            [
                "lint",
                "-k",
                str(hardened_file),
                "-p",
                str(profile_file),
                "--format",
                "json",
            ]
        )
        == 0
    )
    record = json.loads(capsys.readouterr().out)
    assert record["counts"]["error"] == 0
    assert "profile-flow-conservation" in record["rules"]
    assert "speculation-coverage" in record["rules"]


def test_lint_rule_selection(kernel_file, capsys):
    assert main(["lint", "-k", str(kernel_file), "-r", "PIBE1"]) == 0
    out = capsys.readouterr().out
    assert "from 1 rule(s)" in out


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "guard-chain-shape" in out
    assert "PIBE304" in out


def test_lint_fails_on_corrupted_image(workdir, hardened_file, capsys):
    text = hardened_file.read_text()
    # Strip every defense tag: hardening promises are now unmet.
    corrupted = workdir / "corrupted.ir"
    corrupted.write_text(text.replace(" !defense=fenced_retpoline", ""))
    assert main(["lint", "-k", str(corrupted)]) == 1
    out = capsys.readouterr().out
    assert "PIBE501" in out
    assert main(["lint", "-k", str(corrupted), "--fail-on", "never"]) == 0
    capsys.readouterr()


def test_lint_output_file(workdir, kernel_file):
    path = workdir / "lint.json"
    assert (
        main(["lint", "-k", str(kernel_file), "--format", "json", "-o", str(path)])
        == 0
    )
    assert json.loads(path.read_text())["counts"]["error"] == 0


def test_faults_stress_subcommand(workdir, capsys):
    """`repro faults` runs a plan, prints per-cell status and writes the
    FailureReport artifact; --expect-failures gates the exit code."""
    from repro.faults import FaultPlan, FaultSpec

    plan_path = workdir / "plan.json"
    plan_path.write_text(
        FaultPlan(
            specs=[FaultSpec(point="measure.cell", mode="raise", times=1)]
        ).to_json()
    )
    report_path = workdir / "failure-report.json"
    assert (
        main(
            [
                "faults",
                "--plan",
                str(plan_path),
                "--configs",
                "3",
                "--jobs",
                "2",
                "--max-retries",
                "2",
                "--expect-failures",
                "0",
                "-o",
                str(report_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "[ok    ]" in out and "FAILED" not in out
    report = json.loads(report_path.read_text())
    assert report["total_cells"] == 3
    assert report["completed_cells"] == 3
    assert report["failures"] == []
    # the transient fault really fired: at least one recovery happened
    assert report["retries"] + len(report["degraded"]) >= 1


def test_faults_expect_failures_mismatch_fails(workdir, capsys):
    from repro.faults import FaultPlan, FaultSpec

    plan_path = workdir / "noop-plan.json"
    plan_path.write_text(FaultPlan(specs=[]).to_json())
    assert (
        main(
            [
                "faults",
                "--plan",
                str(plan_path),
                "--configs",
                "2",
                "--expect-failures",
                "1",
            ]
        )
        == 1
    )
    capsys.readouterr()


def test_cache_stats_empty(tmp_path, capsys):
    assert (
        main(["cache", "stats", "--cache-dir", str(tmp_path / "missing")])
        == 0
    )
    assert "no cache at" in capsys.readouterr().out


def test_cache_stats_reports_kinds(tmp_path, capsys):
    from repro.evaluation.cache import DiskCache

    cache = DiskCache(tmp_path)
    cache.put("measure", "a", {"cycles": 1})
    cache.put("prefix", "b", {"module": {}})
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "measure" in out and "prefix" in out and "total" in out


def test_cache_stats_json_counts_quarantine(tmp_path, capsys):
    from repro.evaluation.cache import DiskCache

    cache = DiskCache(tmp_path)
    cache.put("measure", "good", {"cycles": 1})
    cache.put("measure", "bad", {"cycles": 2})
    # corrupt one entry, then read it so it gets quarantined
    bad_path = cache._path("measure", "bad")
    bad_path.write_text("{not json")
    assert cache.get("measure", "bad") is None

    assert (
        main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["kinds"]["measure"]["entries"] == 1
    assert payload["total_entries"] == 1
    assert payload["quarantined"] == 1


def test_cache_stats_json_is_byte_stable(tmp_path, capsys):
    """`repro cache stats --json` is a deterministic snapshot: repeated
    invocations over the same cache state render identical bytes (sorted
    keys, stable kind ordering), so CI jobs and docs can diff it."""
    from repro.evaluation.cache import DiskCache

    cache = DiskCache(tmp_path)
    # populate kinds in non-sorted order; output must not depend on it
    cache.put("prefix", "p", {"module": {}})
    cache.put("measure", "m", {"cycles": 1})
    cache.put("lint", "l", {"ok": True})

    assert (
        main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    )
    first = capsys.readouterr().out
    assert (
        main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"]) == 0
    )
    second = capsys.readouterr().out
    assert first == second

    payload = json.loads(first)
    assert list(payload["kinds"]) == ["lint", "measure", "prefix"]
    # key order inside the document is sorted too (byte-stability, not
    # just dict equality)
    assert first == json.dumps(payload, indent=2, sort_keys=True) + "\n"
