"""RSB refilling scenario matrix (Section 6.4)."""

from repro.baselines.rsb_refill import (
    RSBAttackScenario,
    SCENARIO_MATRIX,
    simulate_refill_scenario,
)


def test_matrix_covers_all_scenarios():
    assert set(SCENARIO_MATRIX) == set(RSBAttackScenario)


def test_return_retpolines_defend_everything():
    assert all(
        outcome.defended_by_return_retpoline
        for outcome in SCENARIO_MATRIX.values()
    )


def test_refill_only_defends_some_scenarios():
    defended = {
        s for s, o in SCENARIO_MATRIX.items() if o.defended_by_refill
    }
    assert RSBAttackScenario.CROSS_CONTEXT_REUSE in defended
    assert RSBAttackScenario.SPECULATIVE_POLLUTION not in defended
    assert RSBAttackScenario.DIRECT_OVERWRITE not in defended


def test_simulation_agrees_with_matrix():
    for scenario, outcome in SCENARIO_MATRIX.items():
        attack_lands = simulate_refill_scenario(scenario)
        assert attack_lands == (not outcome.defended_by_refill), scenario
