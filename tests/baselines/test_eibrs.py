"""eIBRS hardware-mitigation baseline (Section 6.4)."""

import dataclasses

from repro.baselines.eibrs import (
    BTBPoisoningOrigin,
    EIBRS_MATRIX,
    EIBRSTimingModel,
    eibrs_blocks,
    simulate_eibrs_poisoning,
)
from repro.cpu.costs import DEFAULT_COSTS
from repro.cpu.timing import TimingModel
from repro.engine.interpreter import Interpreter
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module

NO_ENTRY = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)


def test_matrix_covers_all_origins():
    assert set(EIBRS_MATRIX) == set(BTBPoisoningOrigin)


def test_cross_mode_training_blocked():
    assert eibrs_blocks(BTBPoisoningOrigin.USERSPACE)
    assert eibrs_blocks(BTBPoisoningOrigin.GUEST)
    assert not simulate_eibrs_poisoning(BTBPoisoningOrigin.USERSPACE)
    assert not simulate_eibrs_poisoning(BTBPoisoningOrigin.GUEST)


def test_in_kernel_training_bypasses_eibrs():
    """The paper's caveat: eIBRS does not prevent attacks that train on
    kernel execution — retpolines (and PIBE) still matter on new CPUs."""
    assert not eibrs_blocks(BTBPoisoningOrigin.KERNEL_EXECUTION)
    assert simulate_eibrs_poisoning(BTBPoisoningOrigin.KERNEL_EXECUTION)


def _module():
    module = Module("m")
    module.add_function(build_leaf("t", work=2))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"t": 1})
    b.ret()
    module.add_function(func)
    return module


def test_eibrs_taxes_indirect_branches():
    module = _module()

    def run(model):
        Interpreter(module, [model], seed=1).run_function("f", times=20)
        return model.cycles

    base = run(TimingModel(module, costs=NO_ENTRY, model_icache=False))
    eibrs = run(EIBRSTimingModel(module, costs=NO_ENTRY, model_icache=False))
    # 1 icall and 2 rets per run, at the module's tax constants
    import pytest

    from repro.baselines.eibrs import EIBRS_ICALL_TAX, EIBRS_RET_TAX

    assert eibrs - base == pytest.approx(
        20 * (EIBRS_ICALL_TAX + 2 * EIBRS_RET_TAX)
    )


def test_eibrs_cheaper_than_retpolines_but_weaker():
    """eIBRS costs less than software retpolines on this workload, but
    leaves same-mode training open — the trade-off of Section 6.4."""
    from repro.hardening.defenses import DefenseConfig
    from repro.hardening.harden import HardeningPass

    module = _module()
    retpolined = _module()
    HardeningPass(DefenseConfig.retpolines_only()).run(retpolined)

    def run(model, mod):
        Interpreter(mod, [model], seed=1).run_function("f", times=50)
        return model.cycles

    eibrs = run(
        EIBRSTimingModel(module, costs=NO_ENTRY, model_icache=False), module
    )
    retp = run(
        TimingModel(retpolined, costs=NO_ENTRY, model_icache=False),
        retpolined,
    )
    assert eibrs < retp
    assert simulate_eibrs_poisoning(BTBPoisoningOrigin.KERNEL_EXECUTION)
