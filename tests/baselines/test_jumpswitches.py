"""JumpSwitches runtime-promotion baseline."""

from repro.baselines.jumpswitches import JumpSwitchParams, JumpSwitchTimingModel
from repro.cpu.costs import DEFAULT_COSTS
from repro.cpu.timing import TimingModel
from repro.engine.interpreter import Interpreter
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module

import dataclasses

NO_ENTRY = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)


def _retpolined_module(targets):
    module = Module("m")
    for name in targets:
        module.add_function(build_leaf(name, work=2))
    func = Function("f")
    b = IRBuilder(func)
    b.icall(targets)
    b.ret()
    module.add_function(func)
    HardeningPass(DefenseConfig.retpolines_only()).run(module)
    return module


def _run(module, model, times, seed=4):
    Interpreter(module, [model], seed=seed).run_function("f", times=times)
    return model


def test_single_target_site_beats_retpolines():
    module = _retpolined_module({"only": 1})
    js = _run(
        module,
        JumpSwitchTimingModel(module, costs=NO_ENTRY, model_icache=False),
        times=500,
    )
    retp = _run(
        module,
        TimingModel(module, costs=NO_ENTRY, model_icache=False),
        times=500,
    )
    # after the initial learn+patch, every call is a cheap compare
    assert js.cycles < retp.cycles
    assert js.total_patches >= 1


def test_multi_target_relearning_penalty():
    params = JumpSwitchParams(relearn_period=64, learning_window=8)
    multi = _retpolined_module({"a": 1, "b": 1, "c": 1})
    js = _run(
        multi,
        JumpSwitchTimingModel(
            multi, costs=NO_ENTRY, params=params, model_icache=False
        ),
        times=2000,
    )
    # periodic downgrades happened and retpoline-mode calls were paid
    assert js.total_patches > 2
    assert js.learning_invocations > 0


def test_single_target_site_never_relearns():
    params = JumpSwitchParams(relearn_period=64, learning_window=8)
    module = _retpolined_module({"only": 1})
    js = _run(
        module,
        JumpSwitchTimingModel(
            module, costs=NO_ENTRY, params=params, model_icache=False
        ),
        times=2000,
    )
    # one learning phase at startup, then stable
    assert js.learning_invocations <= params.learning_window


def test_fallback_on_unlearned_target():
    params = JumpSwitchParams(max_inline_targets=1, relearn_period=10**9)
    module = _retpolined_module({"a": 1, "b": 1})
    js = _run(
        module,
        JumpSwitchTimingModel(
            module, costs=NO_ENTRY, params=params, model_icache=False
        ),
        times=500,
    )
    site_state = next(iter(js._sites.values()))
    # with capacity 1, the sticky-but-alternating targets keep missing
    assert site_state.fallback_hits > 0


def test_unprotected_icalls_use_base_model():
    module = Module("m")
    module.add_function(build_leaf("t"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"t": 1})
    b.ret()
    module.add_function(func)  # no hardening at all
    js = _run(
        module,
        JumpSwitchTimingModel(module, costs=NO_ENTRY, model_icache=False),
        times=100,
    )
    assert js.total_patches == 0
    assert js.counters["defended_icalls"] == 0
    assert js.btb.accesses == 100
