"""Property tests over the hardening/parsing pipeline."""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.parser import dump_module, parse_module
from repro.ir.types import Opcode
from repro.ir.validate import validate_module
from repro.passes.lto import DeadFunctionElimination

from .strategies import deterministic_modules

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIGS = st.sampled_from(
    [
        DefenseConfig.none(),
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        DefenseConfig.all_defenses(),
    ]
)


@given(deterministic_modules(), _CONFIGS)
@_SETTINGS
def test_hardening_is_idempotent(module, config):
    """Applying the same defense config twice changes nothing."""
    HardeningPass(config).run(module)
    tags_once = [inst.defense for inst in module.instructions()]
    report_twice = HardeningPass(config).run(module)
    tags_twice = [inst.defense for inst in module.instructions()]
    assert tags_once == tags_twice
    assert report_twice.vulnerable_rets == 0 or config.backward_defense() is None


@given(deterministic_modules(), _CONFIGS)
@_SETTINGS
def test_hardening_preserves_behaviour(module, config):
    """Tagging branches never changes execution semantics."""

    def observe(mod):
        rec = TraceRecorder()
        Interpreter(mod, [rec], seed=0).run_function("fn0", times=2)
        return [
            e for e in rec.events if e[0] in ("enter", "mix", "ret", "call")
        ]

    before = observe(module)
    HardeningPass(config).run(module)
    assert observe(module) == before


@given(deterministic_modules(), _CONFIGS)
@_SETTINGS
def test_hardening_covers_every_eligible_branch(module, config):
    HardeningPass(config).run(module)
    fwd = config.forward_defense()
    bwd = config.backward_defense()
    for func in module:
        for inst in func.instructions():
            if inst.opcode == Opcode.ICALL and func.is_instrumentable:
                assert (inst.defense is not None) == (fwd is not None)
            if inst.opcode == Opcode.RET:
                assert (inst.defense is not None) == (bwd is not None)


@given(deterministic_modules())
@_SETTINGS
def test_parse_dump_roundtrip_preserves_execution(module):
    """Textual round trip is behaviour-preserving."""
    validate_module(module)

    def observe(mod):
        rec = TraceRecorder()
        Interpreter(mod, [rec], seed=3).run_function("fn0", times=3)
        return rec.events

    before = observe(module)
    restored = parse_module(dump_module(module))
    validate_module(restored)
    assert observe(restored) == before
    assert restored.size() == module.size()


@given(deterministic_modules())
@_SETTINGS
def test_dce_preserves_entry_behaviour(module):
    """DCE never changes what the surviving entry points compute."""
    module.register_syscall("main", "fn0")

    def observe(mod):
        rec = TraceRecorder()
        Interpreter(mod, [rec], seed=1).run_syscall("main", times=2)
        return [e for e in rec.events if e[0] == "mix"]

    before = observe(module)
    DeadFunctionElimination().run(module)
    validate_module(module)
    assert observe(module) == before
    assert "fn0" in module


@given(deterministic_modules(), _CONFIGS)
@_SETTINGS
def test_defenses_never_speed_up_execution(module, config):
    """Adding defenses is monotone in cycles (same seed, same paths)."""
    import dataclasses

    from repro.cpu.costs import DEFAULT_COSTS
    from repro.cpu.timing import TimingModel

    costs = dataclasses.replace(DEFAULT_COSTS, kernel_entry=0.0)

    def cycles(mod):
        timing = TimingModel(mod, costs=costs, model_icache=False)
        Interpreter(mod, [timing], seed=2).run_function("fn0", times=2)
        return timing.cycles

    baseline = cycles(module)
    hardened = copy.deepcopy(module)
    HardeningPass(config).run(hardened)
    assert cycles(hardened) >= baseline - 1e-9
