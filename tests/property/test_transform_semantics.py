"""Property: PIBE's transformations preserve program behaviour.

On deterministic modules the observable execution — total instruction
mix and the multiset of leaf-work executed — must be *exactly* identical
before and after ICP, inlining, switch lowering and CFG simplification.
This is the reproduction's equivalent of differential testing a compiler
pass pipeline.
"""

import copy

from hypothesis import HealthCheck, given, settings

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.validate import validate_module
from repro.passes.icp import IndirectCallPromotion
from repro.passes.inliner import PibeInliner
from repro.passes.lto import SimplifyCFG
from repro.profiling.lifting import lift_profile
from repro.profiling.profiler import KernelProfiler

from .strategies import deterministic_modules

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _observable(module, entry="fn0", times=3):
    """Total executed instruction mix (exact for deterministic modules)."""
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=0).run_function(entry, times=times)
    mix = [0] * 6
    for event in rec.of_kind("mix"):
        for i in range(6):
            mix[i] += event[1 + i]
    return tuple(mix)


def _profile(module, entry="fn0", times=5):
    profiler = KernelProfiler()
    Interpreter(module, [profiler], seed=0).run_function(entry, times=times)
    return profiler.finish()


@given(deterministic_modules())
@_SETTINGS
def test_inlining_preserves_observable_mix(module):
    validate_module(module)
    before = _observable(module)
    profile = _profile(module)
    lift_profile(module, profile)
    PibeInliner(profile, budget=1.0).run(module)
    validate_module(module)
    assert _observable(module) == before


@given(deterministic_modules())
@_SETTINGS
def test_icp_preserves_observable_mix_modulo_guards(module):
    validate_module(module)
    before = _observable(module)
    profile = _profile(module)
    lift_profile(module, profile)
    IndirectCallPromotion(budget=1.0).run(module)
    validate_module(module)
    after = _observable(module)
    # arith/load/store/fence identical; guard cmps and branches may be added
    assert after[0] == before[0]  # arith
    assert after[1] == before[1]  # load (no vcalls generated)
    assert after[2] == before[2]  # store
    assert after[4] == before[4]  # fence
    assert after[3] >= before[3]  # cmp may grow


@given(deterministic_modules())
@_SETTINGS
def test_full_pipeline_preserves_work(module):
    validate_module(module)
    before = _observable(module)
    profile = _profile(module)
    lift_profile(module, profile)
    IndirectCallPromotion(budget=1.0).run(module)
    PibeInliner(profile, budget=1.0).run(module)
    SimplifyCFG().run(module)
    validate_module(module)
    after = _observable(module)
    assert after[0] == before[0]
    assert after[2] == before[2]


@given(deterministic_modules())
@_SETTINGS
def test_inlining_never_increases_dynamic_branches(module):
    """Inlining strictly removes dynamic calls and returns."""
    def dynamic_calls(mod):
        rec = TraceRecorder()
        Interpreter(mod, [rec], seed=0).run_function("fn0", times=2)
        return len(rec.of_kind("call")) + len(rec.of_kind("icall")), len(
            rec.of_kind("ret")
        )

    before_calls, before_rets = dynamic_calls(module)
    profile = _profile(module)
    lift_profile(module, profile)
    PibeInliner(profile, budget=1.0).run(module)
    after_calls, after_rets = dynamic_calls(module)
    assert after_calls <= before_calls
    assert after_rets <= before_rets


@given(deterministic_modules())
@_SETTINGS
def test_simplifycfg_never_changes_size_upward(module):
    before = module.size()
    SimplifyCFG().run(module)
    validate_module(module)
    assert module.size() <= before
