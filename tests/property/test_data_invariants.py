"""Property tests on core data structures and algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.behavior import guard_probabilities, residual_distribution
from repro.cpu.btb import BTB
from repro.cpu.rsb import RSB
from repro.ir.clone import inline_call
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.passes.inline_cost import function_cost, instruction_cost
from repro.profiling.profile_data import EdgeProfile

from .strategies import deterministic_modules, edge_profiles

_SETTINGS = settings(max_examples=60, deadline=None)


# -- EdgeProfile -------------------------------------------------------------


@given(edge_profiles())
@_SETTINGS
def test_profile_serialization_roundtrip(profile):
    restored = EdgeProfile.from_json(profile.to_json())
    assert restored.direct == profile.direct
    assert {k: dict(v) for k, v in restored.indirect.items()} == {
        k: dict(v) for k, v in profile.indirect.items()
    }
    assert restored.total_weight() == profile.total_weight()
    assert restored.runs == profile.runs


@given(edge_profiles(), edge_profiles())
@_SETTINGS
def test_profile_merge_weight_additivity(a, b):
    total = a.total_weight() + b.total_weight()
    a.merge(b)
    assert a.total_weight() == total


@given(edge_profiles())
@_SETTINGS
def test_value_profiles_sorted_descending(profile):
    for site in profile.indirect:
        counts = [c for _, c in profile.value_profile(site)]
        assert counts == sorted(counts, reverse=True)


# -- guard-chain algebra -------------------------------------------------------


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(1, 1000),
        min_size=1,
        max_size=4,
    ),
    st.integers(0, 3),
)
@_SETTINGS
def test_guard_chain_reconstructs_marginals(dist, promote_n):
    """P(guard_i fires) computed by telescoping the conditional chain must
    equal the original marginal probability of each promoted target."""
    promoted = sorted(dist, key=dist.get, reverse=True)[:promote_n]
    guards = guard_probabilities(dist, promoted)
    total = sum(dist.values())
    reach = 1.0
    for target, p_conditional in guards:
        marginal = reach * p_conditional
        assert abs(marginal - dist.get(target, 0) / total) < 1e-9
        reach *= 1.0 - p_conditional
    residual = residual_distribution(dist, promoted)
    assert abs(reach - sum(residual.values()) / total) < 1e-9


# -- predictors ------------------------------------------------------------------


@given(st.lists(st.integers(1, 10_000), min_size=1, max_size=30))
@_SETTINGS
def test_rsb_balanced_sequences_always_predict(tokens):
    rsb = RSB(capacity=64)
    for token in tokens:
        rsb.push(token)
    for token in reversed(tokens):
        assert rsb.pop_predict(token)
    assert rsb.misses == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.sampled_from(["f", "g", "h"])),
        min_size=1,
        max_size=50,
    )
)
@_SETTINGS
def test_btb_always_predicts_last_trained_target(history):
    btb = BTB(num_entries=16)
    last_by_slot = {}
    for site, target in history:
        btb.access(site, target)
        last_by_slot[site % 16] = target
    for slot, target in last_by_slot.items():
        assert btb.predict(slot) == target


# -- InlineCost / inline size algebra -----------------------------------------------


@given(deterministic_modules())
@_SETTINGS
def test_function_cost_is_sum_of_instruction_costs(module):
    for func in module:
        assert function_cost(func) == sum(
            instruction_cost(i) for i in func.instructions()
        )


@given(deterministic_modules(max_functions=4))
@_SETTINGS
def test_inline_size_identity(module):
    """inline_call grows the caller by exactly the callee's size: the call
    is replaced by a jmp (1:1) and every callee ret becomes a jmp (1:1)."""
    for caller in list(module):
        for block in list(caller.blocks.values()):
            for idx, inst in enumerate(block.instructions):
                if inst.opcode.value == "call" and inst.callee in module:
                    callee = module.get(inst.callee)
                    before = caller.size()
                    inline_call(caller, block.label, idx, callee)
                    assert caller.size() == before + callee.size()
                    return  # one inline per generated example
