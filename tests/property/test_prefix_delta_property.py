"""Property: ANY budget ladder, visited in ANY order, built through the
delta prefix engine (one shared decision basis per profile/jump-table
axis) is bit-identical to independent cold builds of the same configs.
This is the differential safety net behind the incremental engine's perf
claims — order-insensitivity is the part the example-based ladder tests
cannot cover."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline, deterministic_build_ids
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.ir.printer import format_module
from repro.ir.validate import validate_module

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: none keeps jump tables, retpolines disables them — the two decision
#: basis axes of the delta engine.
_DEFENSES = st.sampled_from(
    [DefenseConfig.none(), DefenseConfig.retpolines_only()]
)

_BUDGETS = st.lists(
    st.floats(min_value=0.05, max_value=1.0),
    min_size=1,
    max_size=4,
    unique=True,
)


@given(
    budgets=_BUDGETS,
    defenses=_DEFENSES,
    lax=st.booleans(),
    default_inliner=st.booleans(),
)
@_SETTINGS
def test_random_ladder_delta_matches_cold(
    small_kernel,
    small_profile,
    budgets,
    defenses,
    lax,
    default_inliner,
):
    # fresh pipelines per example: bit-identity requires prefixes minted
    # inside this example's own id checkpoints
    delta = PibePipeline(small_kernel)
    cold = PibePipeline(small_kernel, incremental=False)
    for budget in budgets:  # hypothesis shuffles the ladder order
        config = PibeConfig(
            defenses=defenses,
            icp_budget=budget,
            inline_budget=budget,
            lax_heuristics=lax,
            use_default_inliner=default_inliner,
        )
        with deterministic_build_ids():
            d = delta.build_variant(config, small_profile, staged=True)
        with deterministic_build_ids():
            c = cold.build_variant(config, small_profile, staged=True)
        validate_module(d.module)
        assert module_fingerprint(
            d.module, include_sites=True
        ) == module_fingerprint(c.module, include_sites=True)
        assert format_module(d.module) == format_module(c.module)
    assert delta.stats["prefix_delta_builds"] == len(budgets)
    assert len(delta._basis_memo) == 1
