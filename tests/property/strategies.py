"""Hypothesis strategies for random, deterministic IR modules.

Generated modules form an acyclic call graph with deterministic control
flow (branch probabilities 0/1, fixed loop trips, single- or multi-target
indirect calls). Determinism lets properties assert *exact* observable
equality across transformations.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module


@st.composite
def deterministic_modules(draw, max_functions=6, deterministic_icalls=True):
    """A module whose execution from 'fn0' is fully deterministic."""
    n = draw(st.integers(min_value=1, max_value=max_functions))
    module = Module("prop")
    names = [f"fn{i}" for i in range(n)]

    # build bottom-up: fn_i may only call fn_j with j > i (acyclic)
    for i in reversed(range(n)):
        func = Function(names[i], num_params=draw(st.integers(0, 3)))
        b = IRBuilder(func)
        body_len = draw(st.integers(0, 4))
        for _ in range(body_len):
            kind = draw(st.sampled_from(["arith", "load", "store", "call", "icall", "loop"]))
            callees = names[i + 1 :]
            if kind == "arith":
                b.arith(draw(st.integers(1, 4)))
            elif kind == "load":
                b.load(draw(st.integers(1, 2)))
            elif kind == "store":
                b.store(1)
            elif kind == "call" and callees:
                b.call(draw(st.sampled_from(callees)), num_args=draw(st.integers(0, 2)))
            elif kind == "icall" and callees:
                if deterministic_icalls:
                    target = draw(st.sampled_from(callees))
                    b.icall({target: 1})
                else:
                    count = draw(st.integers(1, min(3, len(callees))))
                    targets = draw(
                        st.lists(
                            st.sampled_from(callees),
                            min_size=count,
                            max_size=count,
                            unique=True,
                        )
                    )
                    b.icall({t: draw(st.integers(1, 5)) for t in targets})
            elif kind == "loop":
                trips = draw(st.integers(1, 3))
                arith = draw(st.integers(1, 2))
                head = b.new_block("head")
                after = b.new_block("after")
                b.jmp(head.label)
                b.set_block(head)
                b.arith(arith)
                b.br(head.label, after.label, trip=trips - 1)
                b.set_block(after)
        b.ret()
        module.add_function(func)
    return module


@st.composite
def tabled_modules(draw, max_functions=6):
    """A deterministic module whose icall target sets are registered as
    function-pointer tables — some declared at their sites, some not.

    With tables present the address-taken census is active, so points-to
    properties (feasible ⊆ census, truth ⊆ feasible) are non-vacuous;
    the undeclared sites exercise the constraint solve.
    """
    from repro.ir.module import FunctionPointerTable
    from repro.ir.types import ATTR_FPTR_TABLE, ATTR_TARGETS, Opcode

    module = draw(
        deterministic_modules(
            max_functions=max_functions, deterministic_icalls=False
        )
    )
    count = 0
    for func in module:
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode != Opcode.ICALL:
                    continue
                targets = sorted(inst.attrs.get(ATTR_TARGETS) or {})
                if not targets:
                    continue
                count += 1
                name = f"tbl{count}"
                module.add_fptr_table(FunctionPointerTable(name, targets))
                if draw(st.booleans()):
                    inst.attrs[ATTR_FPTR_TABLE] = name
    return module


@st.composite
def edge_profiles(draw):
    """Random edge profiles for serialization/merge properties."""
    from repro.profiling.profile_data import EdgeProfile

    profile = EdgeProfile(workload=draw(st.sampled_from(["a", "b", ""])))
    for site in draw(st.lists(st.integers(1, 50), max_size=8, unique=True)):
        profile.record_direct(site, draw(st.integers(1, 10_000)))
    for site in draw(st.lists(st.integers(51, 99), max_size=5, unique=True)):
        for target in draw(
            st.lists(st.sampled_from(["t1", "t2", "t3"]), min_size=1, max_size=3, unique=True)
        ):
            profile.record_indirect(site, target, draw(st.integers(1, 1000)))
    profile.runs = draw(st.integers(0, 3))
    return profile
