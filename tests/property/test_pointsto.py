"""Points-to soundness properties over random modules × defense configs.

The two anchors from :mod:`repro.analysis.pointsto`:

- **refinement** — with a census defined, every site's feasible set is a
  subset of the address-taken census (the analysis refines the PIBE2xx
  universe, never invents targets);
- **soundness** — no dynamically-observed indirect edge is ever ruled
  out: everything the interpreter actually dispatched at a site is in
  that site's feasible set, before and after hardening.
"""

from __future__ import annotations

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.pointsto import analyze_pointsto
from repro.engine.interpreter import Interpreter
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.profiling.profiler import KernelProfiler

from .strategies import tabled_modules

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIGS = st.sampled_from(
    [
        DefenseConfig.none(),
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        DefenseConfig.all_defenses(),
    ]
)


def _observed_edges(module):
    """(site -> targets) the interpreter actually dispatched."""
    profiler = KernelProfiler()
    Interpreter(module, [profiler], seed=0).run_function("fn0", times=2)
    profile = profiler.finish()
    return {
        site: set(targets)
        for site, targets in profile.indirect.items()
        if targets
    }


@given(module=tabled_modules(), defenses=_CONFIGS)
@_SETTINGS
def test_feasible_refines_census_and_keeps_truth(module, defenses):
    HardeningPass(defenses).run(module)
    pt = analyze_pointsto(module)
    for st_ in pt.sites.values():
        # Soundness backstop: ground truth survives every filter.
        assert st_.truth <= (st_.feasible or st_.truth)
        if pt.census_known:
            assert st_.feasible is not None
            assert st_.feasible <= pt.census


@given(module=tabled_modules(), defenses=_CONFIGS)
@_SETTINGS
def test_observed_targets_never_ruled_out(module, defenses):
    observed = _observed_edges(copy.deepcopy(module))
    HardeningPass(defenses).run(module)
    pt = analyze_pointsto(module)
    for site, targets in observed.items():
        st_ = pt.site(site)
        assert st_ is not None, f"site {site} disappeared from analysis"
        if st_.feasible is None:
            continue  # unbounded is trivially sound
        missing = targets - st_.feasible
        assert not missing, (
            f"points-to ruled out executed edge(s) {sorted(missing)} "
            f"at site {site}"
        )


@given(module=tabled_modules())
@_SETTINGS
def test_declared_sites_bounded_by_their_table(module):
    from repro.ir.types import ATTR_FPTR_TABLE, Opcode

    pt = analyze_pointsto(module)
    for func in module:
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode != Opcode.ICALL:
                    continue
                table = inst.attrs.get(ATTR_FPTR_TABLE)
                if table is None:
                    continue
                st_ = pt.site(inst.site_id)
                entries = set(module.fptr_tables[table].entries)
                assert st_.feasible is not None
                assert st_.feasible <= entries | st_.truth


@given(module=tabled_modules(), defenses=_CONFIGS)
@_SETTINGS
def test_hardening_does_not_change_pointsto(module, defenses):
    before = analyze_pointsto(module).digest()
    HardeningPass(defenses).run(module)
    after = analyze_pointsto(module).digest()
    assert before == after
