"""Property: for ANY (budget, defense) configuration the staged build —
prefix cache, copy-on-write stamp and all — is bit-identical to the
monolithic build of the same config. This is the differential-testing
safety net behind the staged engine's perf claims."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline, deterministic_build_ids
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.ir.printer import format_module
from repro.ir.validate import validate_module

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIGS = st.sampled_from(
    [
        DefenseConfig.none(),
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        DefenseConfig.all_defenses(),
    ]
)


@given(
    icp_budget=st.one_of(st.none(), st.floats(min_value=0.05, max_value=1.0)),
    inline_budget=st.one_of(
        st.none(), st.floats(min_value=0.05, max_value=1.0)
    ),
    defenses=_CONFIGS,
    lax=st.booleans(),
)
@_SETTINGS
def test_staged_matches_monolithic_for_any_config(
    small_kernel,
    small_profile,
    icp_budget,
    inline_budget,
    defenses,
    lax,
):
    # a per-example pipeline: bit-identity requires prefixes minted inside
    # this example's own id checkpoints, never some earlier allocator state
    fresh_pipeline = PibePipeline(small_kernel)
    config = PibeConfig(
        defenses=defenses,
        icp_budget=icp_budget,
        inline_budget=inline_budget,
        lax_heuristics=lax,
    )
    with deterministic_build_ids():
        mono = fresh_pipeline.build_variant(
            config, small_profile, staged=False
        )
    with deterministic_build_ids():
        staged = fresh_pipeline.build_variant(
            config, small_profile, staged=True
        )
    validate_module(staged.module)
    assert module_fingerprint(
        staged.module, include_sites=True
    ) == module_fingerprint(mono.module, include_sites=True)
    assert format_module(staged.module) == format_module(mono.module)
