"""Property: no (budget, threshold, defense) combination over the
generated kernel ever produces an error-severity diagnostic — the
transformations and the analyzer agree on every reachable configuration."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.hardening.defenses import DefenseConfig
from repro.static import analyze_module

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIGS = st.sampled_from(
    [
        DefenseConfig.none(),
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        DefenseConfig.all_defenses(),
    ]
)


@given(
    icp_budget=st.floats(min_value=0.05, max_value=1.0),
    inline_budget=st.floats(min_value=0.05, max_value=1.0),
    caller_threshold=st.integers(min_value=200, max_value=20_000),
    callee_threshold=st.integers(min_value=50, max_value=5_000),
    defenses=_CONFIGS,
    lax=st.booleans(),
)
@_SETTINGS
def test_random_budgets_never_break_invariants(
    small_pipeline,
    small_profile,
    icp_budget,
    inline_budget,
    caller_threshold,
    callee_threshold,
    defenses,
    lax,
):
    config = PibeConfig(
        defenses=defenses,
        icp_budget=icp_budget,
        inline_budget=inline_budget,
        caller_threshold=caller_threshold,
        callee_threshold=callee_threshold,
        lax_heuristics=lax,
    )
    build = small_pipeline.build_variant(config, small_profile)
    report = analyze_module(build.module, profile=small_profile)
    assert not report.errors(), report.to_text()


@given(defenses=_CONFIGS, use_default=st.booleans())
@_SETTINGS
def test_inliner_choice_never_breaks_invariants(
    small_pipeline, small_profile, defenses, use_default
):
    config = PibeConfig(
        defenses=defenses,
        icp_budget=0.95,
        inline_budget=0.95,
        use_default_inliner=use_default,
    )
    build = small_pipeline.build_variant(config, small_profile)
    report = analyze_module(build.module, profile=small_profile)
    assert not report.errors(), report.to_text()
