"""Seed-fuzzing the kernel generator and the full pipeline."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.hardening.defenses import DefenseConfig
from repro.ir.validate import validate_module
from repro.kernel.generator import build_kernel, kernel_stats
from repro.kernel.spec import SmallSpec

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(st.integers(min_value=0, max_value=10_000))
@_SETTINGS
def test_any_seed_builds_a_valid_kernel(seed):
    module = build_kernel(SmallSpec(seed=seed))
    validate_module(module)
    stats = kernel_stats(module)
    assert stats.syscalls >= 20
    assert stats.ijump_sites == SmallSpec().num_asm_ijumps


@given(st.integers(min_value=0, max_value=10_000))
@_SETTINGS
def test_any_seed_survives_the_full_pipeline(seed):
    module = build_kernel(SmallSpec(seed=seed))
    pipeline = PibePipeline(module)
    from repro.workloads.lmbench import lmbench_workload

    profile = pipeline.profile(
        lmbench_workload(ops_scale=0.01), iterations=1, seed=seed
    )
    build = pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), profile
    )
    validate_module(build.module)
    report = build.reports["hardening"]
    assert report.vulnerable_rets == 0


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=4),
)
@_SETTINGS
def test_spec_knobs_scale_census(num_drivers, lsm_modules):
    spec = dataclasses.replace(
        SmallSpec(), num_drivers=num_drivers, lsm_modules=lsm_modules
    )
    module = build_kernel(spec)
    validate_module(module)
    hook = module.get("security_file_permission")
    from repro.ir.types import Opcode

    icalls = [i for i in hook.call_sites() if i.opcode == Opcode.ICALL]
    assert len(icalls) == lsm_modules
