"""Call graph construction, reachability and bottom-up ordering."""

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.callgraph import CallGraph
from repro.ir.function import Function
from repro.ir.module import Module


def _chain_module():
    """a -> b -> c, plus d calling c indirectly, plus isolated e."""
    module = Module("m")
    module.add_function(build_leaf("c"))
    b_func = Function("b")
    bb = IRBuilder(b_func)
    bb.call("c")
    bb.ret()
    module.add_function(b_func)
    a_func = Function("a")
    ab = IRBuilder(a_func)
    ab.call("b")
    ab.ret()
    module.add_function(a_func)
    d_func = Function("d")
    db = IRBuilder(d_func)
    db.icall({"c": 1})
    db.ret()
    module.add_function(d_func)
    module.add_function(build_leaf("e"))
    return module


def test_direct_and_indirect_edges():
    cg = CallGraph(_chain_module())
    assert cg.callees("a") == {"b"}
    assert cg.callees("b") == {"c"}
    assert cg.callees("d") == {"c"}
    assert cg.callers("c") == {"b", "d"}
    indirect = [e for e in cg.edges if e.indirect]
    assert len(indirect) == 1
    assert indirect[0].caller == "d"


def test_edges_to_unknown_functions_skipped():
    module = Module("m")
    f = Function("f")
    b = IRBuilder(f)
    b.call("ghost")  # undefined
    b.ret()
    module.add_function(f)
    cg = CallGraph(module)
    assert cg.callees("f") == set()


def test_reachable_from():
    cg = CallGraph(_chain_module())
    assert cg.reachable_from(["a"]) == {"a", "b", "c"}
    assert cg.reachable_from(["d"]) == {"d", "c"}
    assert cg.reachable_from(["e"]) == {"e"}
    assert cg.reachable_from(["missing"]) == set()


def test_bottom_up_order_places_callees_first():
    cg = CallGraph(_chain_module())
    order = cg.bottom_up_order()
    assert set(order) == {"a", "b", "c", "d", "e"}
    assert order.index("c") < order.index("b") < order.index("a")
    assert order.index("c") < order.index("d")


def test_bottom_up_order_handles_recursion():
    module = Module("m")
    f = Function("f")
    b = IRBuilder(f)
    b.call("f")
    b.ret()
    module.add_function(f)
    order = CallGraph(module).bottom_up_order()
    assert order == ["f"]


def test_site_location_lookup():
    module = _chain_module()
    cg = CallGraph(module)
    edge = next(e for e in cg.edges if e.caller == "a")
    func_name, inst = cg.site_location(edge.site_id)
    assert func_name == "a"
    assert inst.callee == "b"
