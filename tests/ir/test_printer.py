"""Textual IR dump sanity."""

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.printer import format_function, format_instruction, format_module
from repro.ir.types import ATTR_EDGE_COUNT, ATTR_PROMOTED, FunctionAttr


def _func():
    func = Function("demo", num_params=2, attrs={FunctionAttr.NOINLINE})
    b = IRBuilder(func)
    b.arith(1)
    call = b.call("target", num_args=1)
    call.attrs[ATTR_EDGE_COUNT] = 42
    call.attrs[ATTR_PROMOTED] = True
    icall = b.icall({"t1": 3, "t2": 1}, num_args=2)
    icall.defense = "fenced_retpoline"
    b.ret()
    return func


def test_format_instruction_shows_metadata():
    func = _func()
    call_text = format_instruction(func.entry.instructions[1])
    assert "@target" in call_text
    assert "!promoted" in call_text
    assert "!count=42" in call_text

    icall_text = format_instruction(func.entry.instructions[2])
    assert "icall" in icall_text
    assert "t1" in icall_text
    assert "!defense=fenced_retpoline" in icall_text


def test_format_function_includes_attrs_and_blocks():
    text = format_function(_func())
    assert text.startswith("define @demo(2 params) [noinline] {")
    assert "entry:" in text
    assert text.endswith("}")


def test_format_module_lists_tables():
    from repro.ir.builder import build_leaf

    module = Module("m")
    module.add_function(_func())
    module.add_function(build_leaf("target"))
    module.add_fptr_table(FunctionPointerTable("ops", ["target"]))
    text = format_module(module)
    assert "; module m: 2 functions" in text
    assert "@ops = fptr_table [target]" in text
    assert "define @demo" in text


def test_format_module_respects_max_functions():
    from repro.ir.builder import build_leaf

    module = Module("m")
    for i in range(5):
        module.add_function(build_leaf(f"f{i}"))
    text = format_module(module, max_functions=2)
    assert "define @f0" in text
    assert "define @f4" not in text
