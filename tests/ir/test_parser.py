"""Textual IR parser: hand-written sources and printer round-trips."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.parser import ParseError, dump_module, parse_instruction, parse_module
from repro.ir.printer import format_instruction
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_EDGE_COUNT,
    ATTR_P_TAKEN,
    ATTR_TARGETS,
    ATTR_TRIP,
    ATTR_VALUE_PROFILE,
    ATTR_VCALL,
    FunctionAttr,
    Opcode,
)
from repro.ir.validate import validate_module

SOURCE = """
; module handwritten: 2 functions
@ops = fptr_table [helper]

define @helper(1 params) {
entry:
  arith
  load
  ret
}

define @main(0 params) [noinline] {
entry:
  call @helper(1 args) !count=42
  icall *ptr(2 args) ;; may-target {'helper': 3} !vcall
  br then, other !p=0.25 !trip=3
then:
  ret
other:
  ret !defense=ret_retpoline
}

syscall main -> @main
"""


def test_parse_handwritten_module():
    module = parse_module(SOURCE)
    validate_module(module)
    assert module.name == "handwritten"
    assert "ops" in module.fptr_tables
    assert module.syscalls == {"main": "main"}
    main = module.get("main")
    assert main.has_attr(FunctionAttr.NOINLINE)
    call, icall, br = main.entry.instructions
    assert call.callee == "helper"
    assert call.attrs[ATTR_EDGE_COUNT] == 42
    assert icall.attrs[ATTR_TARGETS] == {"helper": 3}
    assert icall.attrs[ATTR_VCALL] is True
    assert br.attrs[ATTR_P_TAKEN] == 0.25
    assert br.attrs[ATTR_TRIP] == 3
    other_ret = main.blocks["other"].instructions[0]
    assert other_ret.defense == "ret_retpoline"


def test_parsed_module_executes():
    from repro.engine.interpreter import Interpreter
    from repro.engine.trace import TraceRecorder

    module = parse_module(SOURCE)
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=0).run_syscall("main", times=2)
    assert len(rec.of_kind("call")) == 2
    assert len(rec.of_kind("icall")) == 2


def _roundtrip(module):
    text = dump_module(module)
    return parse_module(text)


def test_roundtrip_preserves_structure():
    module = Module("rt")
    module.add_function(build_leaf("leaf", work=3))
    func = Function("f", num_params=2, attrs={FunctionAttr.BOOT_ONLY})
    b = IRBuilder(func)
    call = b.call("leaf", num_args=2)
    call.attrs[ATTR_EDGE_COUNT] = 7
    icall = b.icall({"leaf": 9}, num_args=1, vcall=True, asm=True)
    icall.attrs[ATTR_VALUE_PROFILE] = [("leaf", 9)]
    then = b.new_block("then")
    other = b.new_block("other")
    b.br(then.label, other.label, p_taken=0.75, trip=2)
    b.at(then).arith(2)
    b.at(then).ret()
    b.at(other).switch(["then"], weights=[1.0])
    module.add_function(func)
    module.register_syscall("go", "f")

    restored = _roundtrip(module)
    validate_module(restored)
    assert set(restored.functions) == set(module.functions)
    assert restored.syscalls == module.syscalls
    rf = restored.get("f")
    assert rf.has_attr(FunctionAttr.BOOT_ONLY)
    r_call, r_icall, r_br = rf.entry.instructions
    assert r_call.attrs[ATTR_EDGE_COUNT] == 7
    assert r_icall.attrs[ATTR_TARGETS] == {"leaf": 9}
    assert r_icall.attrs[ATTR_VCALL]
    assert r_icall.attrs[ATTR_ASM_SITE]
    assert r_icall.attrs[ATTR_VALUE_PROFILE] == [("leaf", 9)]
    assert r_br.attrs[ATTR_P_TAKEN] == 0.75
    assert r_br.attrs[ATTR_TRIP] == 2


def test_roundtrip_preserves_table_declaration():
    from repro.ir.module import FunctionPointerTable
    from repro.ir.types import ATTR_FPTR_TABLE

    module = Module("rt-table")
    module.add_function(build_leaf("leaf", work=1))
    module.add_fptr_table(FunctionPointerTable("ops", ["leaf"]))
    func = Function("f", num_params=0)
    b = IRBuilder(func)
    b.icall({"leaf": 3}, num_args=1, fptr_table="ops")
    b.ret()
    module.add_function(func)

    restored = _roundtrip(module)
    validate_module(restored)
    r_icall = restored.get("f").entry.instructions[0]
    assert r_icall.attrs[ATTR_FPTR_TABLE] == "ops"


def test_roundtrip_small_kernel_sizes(small_kernel):
    restored = _roundtrip(small_kernel)
    validate_module(restored)
    assert len(restored) == len(small_kernel)
    assert restored.size() == small_kernel.size()
    assert set(restored.fptr_tables) == set(small_kernel.fptr_tables)
    assert restored.syscalls == small_kernel.syscalls


def test_roundtrip_hardened_module(hardened_build):
    restored = _roundtrip(hardened_build.module)
    validate_module(restored)

    def tags(module):
        from collections import Counter

        return Counter(
            inst.defense
            for inst in module.instructions()
            if inst.defense is not None
        )

    assert tags(restored) == tags(hardened_build.module)


def test_parse_instruction_each_simple_opcode():
    for text, opcode in (
        ("arith", Opcode.ARITH),
        ("cmp", Opcode.CMP),
        ("load", Opcode.LOAD),
        ("store", Opcode.STORE),
        ("fence", Opcode.FENCE),
        ("ret", Opcode.RET),
        ("ijump", Opcode.IJUMP),
    ):
        assert parse_instruction(text).opcode == opcode


def test_parse_jump_table_ijump():
    inst = parse_instruction("ijump [a, b] !weights=[0.5, 0.5]")
    assert inst.opcode == Opcode.IJUMP
    assert inst.targets == ("a", "b")


def _strip_site(text):
    import re

    return re.sub(r"\s*;;\s*site\s+\d+", "", text)


def test_format_parse_format_fixpoint():
    """print(parse(print(x))) == print(parse(x)) for instruction lines
    (modulo the fresh site id each parsed call receives)."""
    for text in (
        "call @f(2 args) !promoted !count=5",
        "icall *ptr(0 args) ;; may-target {'g': 1} !defense=retpoline",
        "br a, b !p=0.125",
        "switch [x, y] !weights=[0.9, 0.1]",
        "ret !defense=ret_retpoline_lvi",
    ):
        once = _strip_site(format_instruction(parse_instruction(text)))
        twice = _strip_site(format_instruction(parse_instruction(once)))
        assert once == twice


def test_parse_errors():
    with pytest.raises(ParseError, match="unrecognized instruction"):
        parse_instruction("frobnicate %rax")
    with pytest.raises(ParseError, match="outside function"):
        parse_module("arith")
    with pytest.raises(ParseError, match="before block label"):
        parse_module("define @f(0 params) {\narith\n}")
    with pytest.raises(ParseError, match="unknown attribute"):
        parse_module("define @f(0 params) [sparkly] {\nentry:\n  ret\n}")
    with pytest.raises(ParseError, match="unterminated function"):
        parse_module("define @f(0 params) {\nentry:\n  ret")
    with pytest.raises(ParseError, match="unknown handler"):
        parse_module("syscall x -> @ghost")
    with pytest.raises(ParseError, match="unmatched closing"):
        parse_module("}")
