"""IRBuilder emission semantics."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_P_TAKEN,
    ATTR_TARGETS,
    ATTR_TRIP,
    ATTR_VCALL,
    Opcode,
)


def test_builder_creates_entry_block():
    func = Function("f")
    IRBuilder(func)
    assert func.entry_label == "entry"


def test_builder_attaches_to_existing_block():
    func = Function("f")
    func.new_block("entry")
    b = IRBuilder(func)
    b.ret()
    assert len(func.blocks) == 1


def test_mix_emission_counts():
    func = Function("f")
    b = IRBuilder(func)
    b.arith(3)
    b.load(2)
    b.store(1)
    b.cmp()
    b.fence()
    b.ret()
    opcodes = [i.opcode for i in func.entry.instructions]
    assert opcodes.count(Opcode.ARITH) == 3
    assert opcodes.count(Opcode.LOAD) == 2
    assert opcodes.count(Opcode.STORE) == 1
    assert opcodes.count(Opcode.CMP) == 1
    assert opcodes.count(Opcode.FENCE) == 1


def test_icall_attrs():
    func = Function("f")
    b = IRBuilder(func)
    inst = b.icall(
        {"g": 3, "h": 1}, num_args=2, fptr_table="ops", vcall=True, asm=True
    )
    b.ret()
    assert inst.attrs[ATTR_TARGETS] == {"g": 3, "h": 1}
    assert inst.attrs[ATTR_VCALL] is True
    assert inst.attrs[ATTR_ASM_SITE] is True
    assert inst.num_args == 2


def test_br_records_probability_and_trip():
    func = Function("f")
    b = IRBuilder(func)
    inst = b.br("a", "b", p_taken=0.25, trip=4)
    assert inst.attrs[ATTR_P_TAKEN] == 0.25
    assert inst.attrs[ATTR_TRIP] == 4
    assert inst.targets == ("a", "b")


def test_switch_weights_validated():
    func = Function("f")
    b = IRBuilder(func)
    with pytest.raises(ValueError, match="weights must match"):
        b.switch(["a", "b"], weights=[1.0])


def test_new_block_gets_unique_name():
    func = Function("f")
    b = IRBuilder(func)
    first = b.new_block("loop")
    second = b.new_block("loop")
    assert first.label != second.label


def test_build_leaf_shape():
    leaf = build_leaf("leaf", work=2, loads=1, stores=1)
    assert leaf.size() == 5  # 2 arith + load + store + ret
    assert leaf.returns()
