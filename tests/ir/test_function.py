"""Function-level structure, attributes and queries."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.types import FunctionAttr, Opcode


def test_first_block_is_entry():
    func = Function("f")
    func.new_block("start")
    func.new_block("next")
    assert func.entry_label == "start"
    assert func.entry.label == "start"


def test_duplicate_block_label_rejected():
    func = Function("f")
    func.new_block("a")
    with pytest.raises(ValueError, match="duplicate block"):
        func.new_block("a")


def test_entry_of_empty_function_raises():
    func = Function("f")
    with pytest.raises(ValueError, match="no blocks"):
        _ = func.entry


def test_unique_label_generation():
    func = Function("f")
    func.new_block("loop")
    assert func.unique_label("loop") == "loop.1"
    func.new_block("loop.1")
    assert func.unique_label("loop") == "loop.2"
    assert func.unique_label("fresh") == "fresh"


def test_inlinable_according_to_attrs():
    assert Function("f").is_inlinable
    assert not Function("f", attrs={FunctionAttr.NOINLINE}).is_inlinable
    assert not Function("f", attrs={FunctionAttr.OPTNONE}).is_inlinable
    assert not Function("f", attrs={FunctionAttr.INLINE_ASM}).is_inlinable


def test_instrumentable_according_to_attrs():
    assert Function("f").is_instrumentable
    assert not Function("f", attrs={FunctionAttr.INLINE_ASM}).is_instrumentable
    # noinline alone does not block hardening
    assert Function("f", attrs={FunctionAttr.NOINLINE}).is_instrumentable


def test_call_sites_and_returns():
    func = Function("f")
    b = IRBuilder(func)
    b.call("g")
    b.icall({"h": 1})
    b.ret()
    sites = list(func.call_sites())
    assert len(sites) == 2
    assert [s.opcode for s in sites] == [Opcode.CALL, Opcode.ICALL]
    assert len(func.returns()) == 1


def test_size_counts_all_instructions():
    func = Function("f")
    b = IRBuilder(func)
    b.arith(3)
    b.ret()
    assert func.size() == 4


def test_recursion_detection():
    func = Function("f")
    b = IRBuilder(func)
    b.call("f")
    b.ret()
    assert func.is_recursive()

    other = Function("g")
    b = IRBuilder(other)
    b.call("f")
    b.ret()
    assert not other.is_recursive()
