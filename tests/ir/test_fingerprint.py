"""Module fingerprints: cache keys for profiles and measurements."""

from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_module
from repro.ir.fingerprint import function_fingerprint, module_fingerprint
from repro.ir.function import Function
from repro.ir.module import Module
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec


def _module():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(2)
    b.icall({"g": 1})
    b.ret()
    module.add_function(func)
    g = Function("g")
    IRBuilder(g).ret()
    module.add_function(g)
    return module


def test_rebuilt_kernel_same_shape_different_sites():
    # two builds of the same spec are structurally identical, but the
    # global site counter assigns them different ids: the shape-only
    # fingerprint matches (measurement cache keys), the site-sensitive
    # one doesn't (profile cache keys)
    first = build_kernel(SmallSpec())
    second = build_kernel(SmallSpec())
    assert module_fingerprint(
        first, include_sites=False
    ) == module_fingerprint(second, include_sites=False)
    assert module_fingerprint(
        first, include_sites=True
    ) != module_fingerprint(second, include_sites=True)


def test_fingerprint_sensitive_to_ir_changes():
    module = _module()
    before = module_fingerprint(module)
    module.get("g").entry.instructions.insert(
        0, module.get("f").entry.instructions[0].clone()
    )
    assert module_fingerprint(module) != before


def test_fingerprint_sensitive_to_attrs():
    module = _module()
    before = module_fingerprint(module)
    icall = module.get("f").entry.instructions[1]
    icall.attrs["targets"] = {"g": 2}
    assert module_fingerprint(module) != before


def test_clone_preserves_site_sensitive_fingerprint():
    module = build_kernel(SmallSpec())
    clone = clone_module(module)
    assert module_fingerprint(
        clone, include_sites=True
    ) == module_fingerprint(module, include_sites=True)


def test_function_fingerprint_differs_between_functions():
    module = _module()
    assert function_fingerprint(module.get("f")) != function_fingerprint(
        module.get("g")
    )
