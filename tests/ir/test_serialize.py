"""The exact JSON codec behind the disk-cached optimized prefix.

The contract is stronger than the textual printer/parser pair: a
``module_from_dict(module_to_dict(m))`` round trip must fingerprint
identically to ``m`` with ``include_sites=True``, because variants are
stamped directly onto disk-loaded prefixes and must stay bit-identical
to ones stamped on freshly built prefixes."""

import json

import pytest

from repro.hardening.defenses import DefenseConfig
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.fingerprint import module_fingerprint
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.printer import format_module
from repro.ir.serialize import SERIAL_VERSION, module_from_dict, module_to_dict
from repro.ir.types import ATTR_VALUE_PROFILE, FunctionAttr, Opcode
from repro.ir.validate import validate_module


def _rich_module():
    """A module exercising every special case the codec must preserve."""
    module = Module("rich")
    module.add_function(build_leaf("t1"))
    module.add_function(build_leaf("t2", attrs=[FunctionAttr.NOINLINE]))
    main = Function(
        "main", num_params=2, stack_frame_size=96, subsystem="core"
    )
    b = IRBuilder(main)
    icall = b.icall({"t1": 3, "t2": 1})
    icall.attrs[ATTR_VALUE_PROFILE] = [("t1", 3), ("t2", 1)]
    b.call("t1", num_args=1)
    then = b.new_block("then")
    other = b.new_block("other")
    b.br("then", "other", p_taken=1.0)
    b.at(then).arith(1)
    b.at(then).ret()
    b.at(other).arith(2)
    b.at(other).ret()
    module.add_function(main)
    module.fptr_tables["ops"] = FunctionPointerTable("ops", ["t1", "t2"])
    module.syscalls["read"] = "main"
    module.metadata["defenses"] = DefenseConfig.all_defenses()
    module.metadata["note"] = {"b": 1, "a": 2}  # insertion order matters
    return module


def test_roundtrip_fingerprint_exact():
    module = _rich_module()
    restored = module_from_dict(module_to_dict(module))
    validate_module(restored)
    assert module_fingerprint(restored, include_sites=True) == (
        module_fingerprint(module, include_sites=True)
    )
    assert format_module(restored) == format_module(module)


def test_roundtrip_survives_json_text():
    """The payload must survive an actual dumps/loads cycle (the disk
    path), not just the in-memory dict."""
    module = _rich_module()
    payload = json.loads(json.dumps(module_to_dict(module)))
    restored = module_from_dict(payload)
    assert module_fingerprint(restored, include_sites=True) == (
        module_fingerprint(module, include_sites=True)
    )


def test_roundtrip_value_profiles_are_tuples():
    module = _rich_module()
    restored = module_from_dict(json.loads(json.dumps(module_to_dict(module))))
    (icall,) = [
        inst
        for inst in restored.get("main").instructions()
        if inst.opcode == Opcode.ICALL
    ]
    profile = icall.attrs[ATTR_VALUE_PROFILE]
    assert profile == [("t1", 3), ("t2", 1)]
    assert all(isinstance(entry, tuple) for entry in profile)


def test_roundtrip_defense_config_metadata():
    module = _rich_module()
    restored = module_from_dict(module_to_dict(module))
    assert restored.metadata["defenses"] == DefenseConfig.all_defenses()
    assert isinstance(restored.metadata["defenses"], DefenseConfig)
    assert list(restored.metadata["note"]) == ["b", "a"]


def test_site_ids_survive_and_allocator_advances():
    module = _rich_module()
    sites = [
        inst.site_id
        for inst in module.get("main").instructions()
        if inst.site_id is not None
    ]
    restored = module_from_dict(module_to_dict(module))
    restored_sites = [
        inst.site_id
        for inst in restored.get("main").instructions()
        if inst.site_id is not None
    ]
    assert restored_sites == sites
    # the global allocator was advanced past the restored maximum
    fresh = Instruction(Opcode.CALL, callee="t1")
    assert fresh.site_id > max(sites)


def test_version_mismatch_rejected():
    data = module_to_dict(_rich_module())
    data["serial_version"] = "ir-json-v0"
    with pytest.raises(ValueError, match=SERIAL_VERSION):
        module_from_dict(data)
    data.pop("serial_version")
    with pytest.raises(ValueError):
        module_from_dict(data)


def test_unencodable_metadata_raises_on_dumps():
    module = _rich_module()
    module.metadata["bad"] = object()
    with pytest.raises(TypeError):
        json.dumps(module_to_dict(module))
