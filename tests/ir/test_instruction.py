"""Instruction construction, classification, cloning and provenance."""

import pytest

from repro.ir.instruction import Instruction
from repro.ir.types import ATTR_CLONED_FROM, Opcode


def test_arith_has_no_site_id():
    inst = Instruction(Opcode.ARITH)
    assert inst.site_id is None
    assert not inst.is_call
    assert not inst.is_terminator


def test_calls_get_unique_site_ids():
    a = Instruction(Opcode.CALL, callee="f")
    b = Instruction(Opcode.CALL, callee="f")
    c = Instruction(Opcode.ICALL, attrs={"targets": {"f": 1}})
    ids = {a.site_id, b.site_id, c.site_id}
    assert None not in ids
    assert len(ids) == 3


def test_terminator_classification():
    assert Instruction(Opcode.RET).is_terminator
    assert Instruction(Opcode.JMP, targets=("b",)).is_terminator
    assert Instruction(Opcode.BR, targets=("a", "b")).is_terminator
    assert Instruction(Opcode.SWITCH, targets=("a",)).is_terminator
    assert Instruction(Opcode.IJUMP).is_terminator
    assert not Instruction(Opcode.CALL, callee="f").is_terminator


def test_indirect_branch_classification():
    assert Instruction(Opcode.ICALL).is_indirect_branch
    assert Instruction(Opcode.RET).is_indirect_branch
    assert Instruction(Opcode.IJUMP).is_indirect_branch
    assert not Instruction(Opcode.CALL, callee="f").is_indirect_branch
    assert not Instruction(Opcode.BR, targets=("a", "b")).is_indirect_branch


def test_defense_tag_roundtrip():
    inst = Instruction(Opcode.RET)
    assert inst.defense is None
    inst.defense = "retpoline"
    assert inst.defense == "retpoline"
    inst.defense = None
    assert inst.defense is None
    assert "defense" not in inst.attrs


def test_clone_gets_fresh_site_id_and_provenance():
    original = Instruction(Opcode.CALL, callee="f", num_args=2)
    clone = original.clone()
    assert clone.site_id != original.site_id
    assert clone.attrs[ATTR_CLONED_FROM] == original.site_id
    assert clone.callee == "f"
    assert clone.num_args == 2


def test_clone_without_fresh_id_preserves_site():
    original = Instruction(Opcode.ICALL, attrs={"targets": {"f": 1}})
    clone = original.clone(fresh_site_id=False)
    assert clone.site_id == original.site_id
    assert ATTR_CLONED_FROM not in clone.attrs


def test_clone_attrs_are_independent():
    original = Instruction(Opcode.ICALL, attrs={"targets": {"f": 1}})
    clone = original.clone()
    clone.attrs["targets"] = {"g": 2}
    assert original.attrs["targets"] == {"f": 1}


def test_clone_preserves_existing_provenance():
    original = Instruction(Opcode.CALL, callee="f")
    first = original.clone()
    second = first.clone()
    # provenance points at the oldest ancestor via setdefault
    assert second.attrs[ATTR_CLONED_FROM] == original.site_id


def test_retarget_rewrites_labels():
    inst = Instruction(Opcode.BR, targets=("old_a", "old_b"))
    inst.retarget({"old_a": "new_a"})
    assert inst.targets == ("new_a", "old_b")


def test_retarget_noop_for_non_branches():
    inst = Instruction(Opcode.ARITH)
    inst.retarget({"x": "y"})
    assert inst.targets == ()


def test_repr_mentions_callee_and_site():
    inst = Instruction(Opcode.CALL, callee="vfs_read")
    text = repr(inst)
    assert "vfs_read" in text
    assert str(inst.site_id) in text
