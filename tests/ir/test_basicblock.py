"""Basic block structure and mutation."""

import pytest

from repro.ir.basicblock import BasicBlock
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


def _ret():
    return Instruction(Opcode.RET)


def test_empty_block_has_no_terminator():
    block = BasicBlock("entry")
    assert block.terminator is None
    assert block.successors == ()
    assert len(block) == 0


def test_append_and_terminate():
    block = BasicBlock("entry")
    block.append(Instruction(Opcode.ARITH))
    block.append(_ret())
    assert block.terminator is not None
    assert block.terminator.opcode == Opcode.RET
    assert len(block) == 2


def test_append_after_terminator_rejected():
    block = BasicBlock("entry")
    block.append(_ret())
    with pytest.raises(ValueError, match="already terminated"):
        block.append(Instruction(Opcode.ARITH))


def test_successors_from_branch():
    block = BasicBlock("entry")
    block.append(Instruction(Opcode.BR, targets=("a", "b")))
    assert block.successors == ("a", "b")


def test_ret_has_no_successors():
    block = BasicBlock("entry")
    block.append(_ret())
    assert block.successors == ()


def test_body_excludes_terminator():
    block = BasicBlock("entry")
    arith = Instruction(Opcode.ARITH)
    block.append(arith)
    block.append(_ret())
    assert block.body() == [arith]


def test_body_of_unterminated_block():
    block = BasicBlock("entry")
    arith = Instruction(Opcode.ARITH)
    block.instructions.append(arith)
    assert block.body() == [arith]


def test_replace_instruction_with_sequence():
    block = BasicBlock("entry")
    block.append(Instruction(Opcode.ARITH))
    block.append(_ret())
    block.replace(0, [Instruction(Opcode.LOAD), Instruction(Opcode.STORE)])
    opcodes = [i.opcode for i in block.instructions]
    assert opcodes == [Opcode.LOAD, Opcode.STORE, Opcode.RET]


def test_clone_renames_and_deep_copies():
    block = BasicBlock("entry")
    block.append(Instruction(Opcode.CALL, callee="f"))
    block.append(_ret())
    clone = block.clone("copy")
    assert clone.label == "copy"
    assert len(clone) == 2
    assert clone.instructions[0] is not block.instructions[0]
    assert clone.instructions[0].callee == "f"
    # the cloned call received a fresh site id
    assert clone.instructions[0].site_id != block.instructions[0].site_id
