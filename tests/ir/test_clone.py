"""Inline splicing mechanics (the transformation of Listing 1)."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.clone import clone_function, clone_module, inline_call
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.ir.validate import validate_module


def _simple_module():
    module = Module("m")
    callee = Function("callee", stack_frame_size=40)
    b = IRBuilder(callee)
    b.arith(3)
    b.ret()
    module.add_function(callee)

    caller = Function("caller", stack_frame_size=64)
    b = IRBuilder(caller)
    b.arith(1)
    call = b.call("callee", num_args=1)
    b.arith(2)
    b.ret()
    module.add_function(caller)
    return module, call


def test_inline_removes_call_and_ret_from_dynamic_path():
    module, call = _simple_module()
    caller = module.get("caller")
    inline_call(caller, "entry", 1, module.get("callee"))
    validate_module(module)

    recorder = TraceRecorder()
    Interpreter(module, [recorder]).run_function("caller")
    # no call events, exactly one ret (the caller's own)
    assert recorder.of_kind("call") == []
    assert len(recorder.of_kind("ret")) == 1
    # the callee's work still executes: 1 + 3 + 2 = 6 arith
    total_arith = sum(e[1] for e in recorder.of_kind("mix"))
    assert total_arith == 6


def test_inline_wrong_instruction_rejected():
    module, _ = _simple_module()
    caller = module.get("caller")
    with pytest.raises(ValueError, match="not a direct call"):
        inline_call(caller, "entry", 0, module.get("callee"))


def test_inline_empty_callee_rejected():
    caller = Function("caller")
    b = IRBuilder(caller)
    b.call("hollow")
    b.ret()
    with pytest.raises(ValueError, match="empty function"):
        inline_call(caller, "entry", 0, Function("hollow"))


def test_inline_reports_new_call_sites():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    mid = Function("mid")
    b = IRBuilder(mid)
    inner = b.call("leaf", num_args=1)
    b.ret()
    module.add_function(mid)
    top = Function("top")
    b = IRBuilder(top)
    outer = b.call("mid")
    b.ret()
    module.add_function(top)

    result = inline_call(module.get("top"), "entry", 0, mid)
    assert inner.site_id in result.new_call_sites
    clones = result.new_call_sites[inner.site_id]
    assert len(clones) == 1
    assert clones[0].callee == "leaf"
    assert clones[0].site_id != inner.site_id
    validate_module(module)


def test_inline_merges_stack_frames_with_coloring():
    module, call = _simple_module()
    caller = module.get("caller")
    before = caller.stack_frame_size
    inline_call(caller, "entry", 1, module.get("callee"))
    # coloring reuses most of the absorbed frame, but growth is monotone
    assert caller.stack_frame_size > before
    assert caller.stack_frame_size <= before + module.get("callee").stack_frame_size


def test_inline_callee_left_untouched():
    module, call = _simple_module()
    callee = module.get("callee")
    size_before = callee.size()
    inline_call(module.get("caller"), "entry", 1, callee)
    assert callee.size() == size_before
    assert callee.returns()


def test_inline_multi_block_callee_with_branches():
    module = Module("m")
    callee = Function("branchy")
    b = IRBuilder(callee)
    then = b.new_block("then")
    other = b.new_block("other")
    b.br(then.label, other.label, p_taken=1.0)
    b.at(then).arith(1)
    b.at(then).ret()
    b.at(other).arith(2)
    b.at(other).ret()
    module.add_function(callee)

    caller = Function("caller")
    b = IRBuilder(caller)
    b.call("branchy")
    b.arith(1)
    b.ret()
    module.add_function(caller)

    result = inline_call(caller, "entry", 0, callee)
    validate_module(module)
    # both cloned rets became jumps to the continuation
    cont = caller.blocks[result.continuation_label]
    assert cont.terminator.opcode == Opcode.RET
    jmps_to_cont = [
        blk
        for blk in caller.blocks.values()
        for inst in blk.instructions
        if inst.opcode == Opcode.JMP and inst.targets == (result.continuation_label,)
    ]
    assert len(jmps_to_cont) == 2


def test_clone_function_is_independent():
    module, _ = _simple_module()
    original = module.get("caller")
    clone = clone_function(original, "caller_copy")
    assert clone.name == "caller_copy"
    assert clone.size() == original.size()
    clone.entry.instructions[0] = clone.entry.instructions[0]
    clone.blocks[clone.entry_label].instructions.pop(0)
    assert clone.size() == original.size() - 1


def test_clone_module_preserves_sites_and_behavior():
    module, _ = _simple_module()
    clone = clone_module(module)
    validate_module(clone)
    # same site ids (profiles lifted onto the clone stay valid)
    for func in module:
        for label, block in func.blocks.items():
            cloned_block = clone.get(func.name).blocks[label]
            for inst, cloned in zip(
                block.instructions, cloned_block.instructions
            ):
                assert cloned.site_id == inst.site_id
    # identical execution per seed
    streams = []
    for m in (module, clone):
        rec = TraceRecorder()
        Interpreter(m, [rec], seed=4).run_function("caller", times=20)
        streams.append(rec.events)
    assert streams[0] == streams[1]


def test_clone_module_is_independent():
    module, _ = _simple_module()
    clone = clone_module(module)
    cloned_first = clone.get("caller").entry.instructions[0]
    cloned_first.attrs["targets"] = {"poisoned": 1}
    original_first = module.get("caller").entry.instructions[0]
    assert original_first.attrs.get("targets") != {"poisoned": 1}
    clone.get("caller").entry.instructions.pop(0)
    assert module.get("caller").size() == clone.get("caller").size() + 1


# -- copy-on-write cloning (the staged build engine's stamp substrate) --------


def test_cow_clone_shares_functions():
    module, _ = _simple_module()
    clone = clone_module(module, cow=True)
    assert clone.cow_shared_count() == 2
    for func in module:
        assert clone.get(func.name) is func
        assert clone.is_cow_shared(func.name)
    # an eager clone shares nothing
    assert clone_module(module).cow_shared_count() == 0


def test_cow_mutable_materializes_private_copy():
    module, _ = _simple_module()
    clone = clone_module(module, cow=True)
    func = clone.mutable("caller")
    assert func is not module.get("caller")
    assert not clone.is_cow_shared("caller")
    assert clone.is_cow_shared("callee")
    # second call is a no-op returning the already-private copy
    assert clone.mutable("caller") is func
    # mutations stay private
    func.entry.instructions.pop(0)
    assert module.get("caller").size() == func.size() + 1


def test_cow_mutable_shell_shares_blocks():
    module, _ = _simple_module()
    clone = clone_module(module, cow=True)
    original = module.get("caller")
    shell = clone.mutable_shell("caller")
    assert shell is not original
    assert not clone.is_cow_shared("caller")
    # the shell owns its blocks *dict* but shares the block objects, so a
    # stamp pays only for the blocks it actually rewrites
    assert shell.blocks is not original.blocks
    for label, block in original.blocks.items():
        assert shell.blocks[label] is block
    # swapping in a private block leaves the original untouched
    from repro.ir.basicblock import BasicBlock
    from repro.ir.clone import clone_instruction_exact

    entry = shell.blocks[shell.entry_label]
    insts = list(entry.instructions)
    insts[0] = clone_instruction_exact(insts[0])
    insts[0].attrs["defense"] = "poisoned"
    shell.blocks[shell.entry_label] = BasicBlock(shell.entry_label, insts)
    assert original.entry.instructions[0].attrs.get("defense") != "poisoned"


def test_clone_instruction_exact_preserves_identity_fields():
    module, call = _simple_module()
    from repro.ir.clone import clone_instruction_exact

    call.attrs["targets"] = {"a": 1}
    copy_inst = clone_instruction_exact(call)
    assert copy_inst is not call
    assert copy_inst.site_id == call.site_id
    assert copy_inst.opcode == call.opcode
    assert copy_inst.attrs == call.attrs
    # attrs dict is one-level private: tagging the copy spares the original
    copy_inst.attrs["defense"] = "retpoline"
    assert "defense" not in call.attrs
