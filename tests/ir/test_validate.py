"""Module verifier coverage: every class of structural error."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import Opcode
from repro.ir.validate import ValidationError, validate_module


def _valid_module():
    module = Module("m")
    module.add_function(build_leaf("leaf"))
    func = Function("caller")
    b = IRBuilder(func)
    b.call("leaf")
    b.ret()
    module.add_function(func)
    return module


def test_valid_module_passes():
    validate_module(_valid_module())


def test_unterminated_block_detected():
    module = _valid_module()
    bad = Function("bad")
    block = bad.new_block("entry")
    block.instructions.append(Instruction(Opcode.ARITH))
    module.add_function(bad)
    with pytest.raises(ValidationError, match="not terminated"):
        validate_module(module)


def test_empty_function_detected():
    module = _valid_module()
    module.add_function(Function("empty"))
    with pytest.raises(ValidationError, match="no blocks"):
        validate_module(module)


def test_call_to_undefined_function_detected():
    module = _valid_module()
    func = Function("bad")
    b = IRBuilder(func)
    b.call("ghost")
    b.ret()
    module.add_function(func)
    with pytest.raises(ValidationError, match="undefined @ghost"):
        validate_module(module)


def test_icall_without_targets_detected():
    module = _valid_module()
    func = Function("bad")
    block = func.new_block("entry")
    block.append(Instruction(Opcode.ICALL))
    block.append(Instruction(Opcode.RET))
    module.add_function(func)
    with pytest.raises(ValidationError, match="without target metadata"):
        validate_module(module)


def test_icall_to_undefined_target_detected():
    module = _valid_module()
    func = Function("bad")
    b = IRBuilder(func)
    b.icall({"ghost": 1})
    b.ret()
    module.add_function(func)
    with pytest.raises(ValidationError, match="may-target undefined"):
        validate_module(module)


def test_branch_to_unknown_block_detected():
    module = _valid_module()
    func = Function("bad")
    b = IRBuilder(func)
    b.jmp("nowhere")
    module.add_function(func)
    with pytest.raises(ValidationError, match="unknown block"):
        validate_module(module)


def test_terminator_mid_block_detected():
    module = _valid_module()
    func = Function("bad")
    block = func.new_block("entry")
    block.instructions.append(Instruction(Opcode.RET))
    block.instructions.append(Instruction(Opcode.ARITH))
    block.instructions.append(Instruction(Opcode.RET))
    module.add_function(func)
    with pytest.raises(ValidationError, match="terminator mid-block"):
        validate_module(module)


def test_table_with_undefined_entry_detected():
    module = _valid_module()
    module.add_fptr_table(FunctionPointerTable("ops", ["ghost"]))
    with pytest.raises(ValidationError, match="undefined entry"):
        validate_module(module)


def test_syscall_with_undefined_handler_detected():
    module = _valid_module()
    module.syscalls["oops"] = "ghost"
    with pytest.raises(ValidationError, match="undefined handler"):
        validate_module(module)


def test_all_errors_collected_at_once():
    module = _valid_module()
    module.add_function(Function("empty"))
    module.syscalls["oops"] = "ghost"
    with pytest.raises(ValidationError) as excinfo:
        validate_module(module)
    assert len(excinfo.value.errors) == 2
