"""Module container behaviour: functions, tables, syscalls, queries."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import Opcode


def _module_with(*names):
    module = Module("m")
    for name in names:
        module.add_function(build_leaf(name))
    return module


def test_add_and_get_function():
    module = _module_with("a", "b")
    assert module.get("a").name == "a"
    assert "b" in module
    assert len(module) == 2


def test_duplicate_function_rejected():
    module = _module_with("a")
    with pytest.raises(ValueError, match="duplicate function"):
        module.add_function(build_leaf("a"))


def test_get_missing_function_raises_keyerror():
    module = _module_with("a")
    with pytest.raises(KeyError, match="no function named"):
        module.get("zzz")


def test_fptr_table_membership():
    table = FunctionPointerTable("ops", ["a", "b"])
    assert "a" in table
    assert "c" not in table
    table.add("c")
    table.add("c")  # idempotent
    assert len(table) == 3


def test_register_syscall_requires_handler():
    module = _module_with("sys_read")
    module.register_syscall("read", "sys_read")
    assert module.syscall_handler("read").name == "sys_read"
    with pytest.raises(KeyError):
        module.register_syscall("write", "missing")


def test_whole_module_site_queries():
    module = Module("m")
    callee = build_leaf("callee")
    module.add_function(callee)
    func = Function("caller")
    b = IRBuilder(func)
    b.icall({"callee": 1})
    b.ret()
    module.add_function(func)

    assert sum(1 for _ in module.indirect_call_sites()) == 1
    # both functions end in ret
    assert sum(1 for _ in module.return_sites()) == 2
    assert sum(1 for _ in module.indirect_jump_sites()) == 0


def test_find_call_site_by_id():
    module = Module("m")
    module.add_function(build_leaf("callee"))
    func = Function("caller")
    b = IRBuilder(func)
    call = b.call("callee")
    b.ret()
    module.add_function(func)
    assert module.find_call_site(call.site_id) is call
    assert module.find_call_site(-1) is None


def test_size_bytes_uses_instruction_units():
    module = _module_with("a")
    assert module.size_bytes() == module.size() * 5
