"""Reporting surfaces: SARIF export, baseline gating, deterministic
ordering and byte-stable JSON."""

from __future__ import annotations

import json

from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec
from repro.static import (
    analyze_module,
    load_baseline,
    new_diagnostics,
    to_sarif,
    to_sarif_json,
    write_baseline,
)
from repro.static.baseline import BASELINE_VERSION, baseline_from_report
from repro.static.diagnostics import Diagnostic, DiagnosticReport, Severity

from tests.static.conftest import make_promoted


def _dirty_report():
    """A report with real findings (corrupted promoted chain)."""
    module, profile, _ = make_promoted()
    caller = module.get("caller")
    for block in caller.blocks.values():
        for inst in block.instructions:
            if inst.callee == "a":
                inst.callee = "b"  # guard arm mismatch -> PIBE3xx
    module.bump_version()
    return analyze_module(module, profile=profile)


# -- determinism --------------------------------------------------------------


def test_report_json_is_byte_stable(chain):
    module, profile, _ = chain
    a = analyze_module(module, profile=profile).to_json()
    b = analyze_module(module, profile=profile).to_json()
    assert a == b


def test_kernel_report_json_snapshot_is_deterministic():
    # Two independently built kernels produce byte-identical reports
    # (site ids are allocator-relative but builds are deterministic
    # within one allocator run? No - ids differ; compare shape only
    # after stripping them).
    module = build_kernel(SmallSpec())
    report = analyze_module(module)
    again = analyze_module(build_kernel(SmallSpec()))
    strip = lambda text: json.loads(text)  # noqa: E731
    a, b = strip(report.to_json()), strip(again.to_json())
    assert a["module"] == b["module"]
    assert a["diagnostics"] == b["diagnostics"] == []


def test_diagnostics_sorted_canonically():
    report = _dirty_report()
    keys = [d.sort_key() for d in report.diagnostics]
    assert keys == sorted(keys)
    # to_json respects the same order
    codes = [d["code"] for d in json.loads(report.to_json())["diagnostics"]]
    assert codes == sorted(codes)


def test_sort_key_orders_by_code_then_location():
    d1 = Diagnostic("PIBE301", Severity.WARNING, "m", "r", function="z")
    d2 = Diagnostic("PIBE302", Severity.WARNING, "m", "r", function="a")
    d3 = Diagnostic("PIBE301", Severity.WARNING, "m", "r", function="a")
    assert sorted([d1, d2, d3], key=Diagnostic.sort_key) == [d3, d1, d2]


# -- SARIF --------------------------------------------------------------------


def test_sarif_structure():
    report = _dirty_report()
    doc = to_sarif(report)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"PIBE101", "PIBE601"} <= rule_ids
    assert run["results"], "expected findings in the dirty report"
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] in ("note", "warning", "error")
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].startswith("ir://")


def test_sarif_json_is_byte_stable():
    report = _dirty_report()
    assert to_sarif_json(report) == to_sarif_json(report)
    # and parses back
    json.loads(to_sarif_json(report))


def test_sarif_levels_match_severities():
    report = _dirty_report()
    doc = to_sarif(report)
    by_rule = {}
    for d in report.diagnostics:
        by_rule.setdefault(d.code, d.severity)
    level_of = {
        Severity.NOTE: "note",
        Severity.WARNING: "warning",
        Severity.ERROR: "error",
    }
    for result in doc["runs"][0]["results"]:
        want = level_of[by_rule[result["ruleId"]]]
        assert result["level"] == want


# -- baselines ----------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    report = _dirty_report()
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    doc = json.loads(path.read_text())
    assert doc["version"] == BASELINE_VERSION
    assert doc["suppressions"]
    baseline = load_baseline(path)
    assert new_diagnostics(report, baseline) == []


def test_missing_baseline_is_empty(tmp_path):
    report = _dirty_report()
    baseline = load_baseline(tmp_path / "does-not-exist.json")
    assert len(new_diagnostics(report, baseline)) == len(report.diagnostics)


def test_baseline_counts_absorb_exactly(tmp_path):
    report = _dirty_report()
    doc = baseline_from_report(report)
    # Halve one suppression's count: the overflow must surface as new.
    target = next(s for s in doc["suppressions"] if s["count"] >= 1)
    target["count"] -= 1
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(doc))
    fresh = new_diagnostics(report, load_baseline(path))
    assert len(fresh) == 1
    assert fresh[0].code == target["code"]


def test_baseline_ignores_site_ids(tmp_path):
    # Two builds of the same corrupted module get different site ids;
    # a baseline from one must fully cover the other.
    path = tmp_path / "baseline.json"
    write_baseline(path, _dirty_report())
    other = _dirty_report()
    assert new_diagnostics(other, load_baseline(path)) == []


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 999, "suppressions": []}))
    try:
        load_baseline(path)
    except ValueError as exc:
        assert "999" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


def test_empty_report_baseline(tmp_path):
    report = DiagnosticReport(module_name="clean", rules=[])
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    assert load_baseline(path) == {}
