"""Profile-flow conservation (PIBE4xx): inflate/duplicate/drop counts on a
real ICP chain and check each corruption is pinned."""

from repro.ir.instruction import Instruction
from repro.ir.types import (
    ATTR_CLONED_FROM,
    ATTR_EDGE_COUNT,
    ATTR_TARGETS,
    METADATA_INLINED_PROMOTED,
    Opcode,
)
from repro.static import Severity, analyze_module

from tests.static.conftest import (
    block_of,
    fallback_icalls,
    promoted_calls,
)


def _report(module, profile):
    return analyze_module(
        module, rules=["profile-flow-conservation"], profile=profile
    )


def _codes(module, profile):
    return [d.code for d in _report(module, profile).errors()]


def test_intact_chain_conserves_flow(chain):
    module, profile, _ = chain
    assert not _report(module, profile)


def test_rule_skipped_without_profile(chain):
    module, _, _ = chain
    report = analyze_module(module, rules=["profile-flow-conservation"])
    assert report.rules == []  # gated on requires_profile


def test_inflated_promoted_count_pibe401(chain):
    module, profile, _ = chain
    victim = promoted_calls(module)[0]
    victim.attrs[ATTR_EDGE_COUNT] += 13
    codes = _codes(module, profile)
    assert "PIBE401" in codes
    assert "PIBE402" in codes  # aggregate conservation also breaks


def test_dropped_target_degrades_to_note_without_provenance(chain):
    module, profile, _ = chain
    fallback = fallback_icalls(module)[0]
    fallback.attrs[ATTR_TARGETS].pop("c")
    # No inlining metadata on a raw ICP module: degrade, don't accuse.
    assert METADATA_INLINED_PROMOTED not in module.metadata
    report = _report(module, profile)
    assert not report.errors()
    assert [d.code for d in report.at_least(Severity.NOTE)] == ["PIBE403"]


def test_dropped_target_with_provenance_pibe404(chain):
    module, profile, _ = chain
    module.metadata[METADATA_INLINED_PROMOTED] = []
    fallback = fallback_icalls(module)[0]
    fallback.attrs[ATTR_TARGETS].pop("c")
    assert _codes(module, profile) == ["PIBE404"]


def test_overscaled_clone_pibe405(chain):
    module, profile, site = chain
    victim = promoted_calls(module)[0]
    func, block = block_of(module, victim)
    clone = victim.clone()
    clone.attrs[ATTR_CLONED_FROM] = victim.site_id
    clone.attrs[ATTR_EDGE_COUNT] = profile.indirect[site][victim.callee] + 1
    block.instructions.insert(0, clone)
    assert _codes(module, profile) == ["PIBE405"]


def test_double_accounted_target_pibe406(chain):
    module, profile, site = chain
    victim = promoted_calls(module)[0]
    module.metadata[METADATA_INLINED_PROMOTED] = [
        {
            "site": site,
            "target": victim.callee,
            "count": victim.attrs[ATTR_EDGE_COUNT],
        }
    ]
    assert "PIBE406" in _codes(module, profile)


def test_dce_leaves_only_clones_unchecked(chain):
    """When the whole chain's function is gone (inlined + DCE'd), scaled
    clones alone must not trip per-target accounting."""
    module, profile, site = chain
    for victim in promoted_calls(module):
        victim.attrs[ATTR_CLONED_FROM] = victim.site_id
        victim.attrs[ATTR_EDGE_COUNT] //= 2
    fallback = fallback_icalls(module)[0]
    _, block = block_of(module, fallback)
    block.instructions.remove(fallback)
    block.instructions.insert(0, Instruction(Opcode.ARITH))
    assert _codes(module, profile) == []
