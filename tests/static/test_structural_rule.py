"""Structural rule: legacy-validator equivalence plus the two new checks
(duplicate terminator successors, duplicate icall target entries)."""

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_TARGETS, Opcode
from repro.ir.validate import ValidationError, validate_function, validate_module
from repro.static import analyze_module


def _module_with(build_caller):
    module = Module("m")
    module.add_function(build_leaf("leaf", work=1))
    caller = Function("caller")
    build_caller(IRBuilder(caller))
    module.add_function(caller)
    return module


def test_clean_module_passes_both_interfaces():
    module = _module_with(lambda b: (b.call("leaf", num_args=1), b.ret()))
    validate_module(module)
    assert not analyze_module(module, rules=["structural"])


def test_wrapper_reports_legacy_strings():
    module = _module_with(lambda b: (b.call("ghost", num_args=0), b.ret()))
    errors = validate_function(module.get("caller"), module)
    assert errors == ["@caller:entry: call to undefined @ghost"]
    with pytest.raises(ValidationError) as exc:
        validate_module(module)
    assert exc.value.errors == errors


def test_unterminated_block_flagged():
    module = _module_with(lambda b: b.arith(1))
    report = analyze_module(module, rules=["structural"])
    assert [d.code for d in report.errors()] == ["PIBE102"]
    assert report.errors()[0].message == "block is not terminated"


def test_duplicate_terminator_successors_pibe109():
    module = _module_with(lambda b: b.ret())
    caller = module.get("caller")
    b = IRBuilder(caller)
    join = b.new_block("join")
    b.at(join).ret()
    # A br with both edges on the same label: a broken edge split.
    caller.blocks["entry"].instructions = [
        Instruction(Opcode.BR, targets=(join.label, join.label))
    ]
    report = analyze_module(module, rules=["structural"])
    assert [d.code for d in report.errors()] == ["PIBE109"]
    assert "repeats successor label" in report.errors()[0].message


def test_duplicate_icall_target_list_pibe110():
    module = _module_with(lambda b: b.ret())
    caller = module.get("caller")
    caller.blocks["entry"].instructions.insert(
        0,
        Instruction(
            Opcode.ICALL,
            num_args=1,
            attrs={ATTR_TARGETS: ["leaf", "leaf"]},
        ),
    )
    report = analyze_module(module, rules=["structural"])
    assert "PIBE110" in [d.code for d in report.errors()]


def test_undefined_fptr_entry_and_syscall_handler():
    from repro.ir.module import FunctionPointerTable

    module = _module_with(lambda b: b.ret())
    module.add_fptr_table(FunctionPointerTable("ops", ["ghost"]))
    module.syscalls["read"] = "missing"
    report = analyze_module(module, rules=["structural"])
    codes = {d.code for d in report.errors()}
    assert {"PIBE111", "PIBE112"} <= codes
    with pytest.raises(ValidationError) as exc:
        validate_module(module)
    assert "fptr table 'ops': undefined entry @ghost" in exc.value.errors
    assert "syscall 'read': undefined handler @missing" in exc.value.errors
