"""Speculation-coverage lint (PIBE5xx): drop, swap and invent defense
tags on a hardened module and check each corruption is pinned."""

import pytest

from repro.hardening.custom import (
    CustomDefense,
    CustomHardeningPass,
    clear_registry,
)
from repro.hardening.defenses import Defense, DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.static import analyze_module


@pytest.fixture(autouse=True)
def _clean_custom_registry():
    yield
    clear_registry()


def _module():
    module = Module("m")
    module.add_function(build_leaf("a", num_params=1))
    module.add_function(
        build_leaf("boot", num_params=1, attrs={FunctionAttr.BOOT_ONLY})
    )
    caller = Function("caller")
    b = IRBuilder(caller)
    b.icall({"a": 1}, num_args=1)
    b.ret()
    module.add_function(caller)
    return module


def _harden(module, config=None):
    HardeningPass(config or DefenseConfig.all_defenses()).run(module)
    return module


def _codes(module):
    return [
        d.code
        for d in analyze_module(module, rules=["speculation-coverage"]).errors()
    ]


def _find(module, opcode, tagged=True):
    for inst in module.instructions():
        if inst.opcode == opcode and (inst.defense is not None) == tagged:
            return inst
    raise AssertionError(f"no {opcode} with tagged={tagged}")


def test_hardened_module_is_clean():
    assert _codes(_harden(_module())) == []


def test_unhardened_module_is_clean():
    # config none promises nothing; untagged branches are fine
    assert _codes(_module()) == []


def test_dropped_ret_tag_pibe502():
    module = _harden(_module())
    _find(module, Opcode.RET).defense = None
    assert _codes(module) == ["PIBE502"]


def test_dropped_icall_tag_pibe501():
    module = _harden(_module())
    _find(module, Opcode.ICALL).defense = None
    assert _codes(module) == ["PIBE501"]


def test_wrong_tag_pibe504():
    module = _harden(_module())
    # all_defenses promises fenced_retpoline on forward edges
    _find(module, Opcode.ICALL).defense = Defense.RET_RETPOLINE.value
    assert _codes(module) == ["PIBE504"]


def test_tag_on_exempt_branch_pibe505():
    module = _harden(_module())
    boot_ret = next(
        i for i in module.get("boot").instructions() if i.opcode == Opcode.RET
    )
    assert boot_ret.defense is None  # hardening skipped boot-only code
    boot_ret.defense = Defense.RET_RETPOLINE_LVI.value
    assert _codes(module) == ["PIBE505"]


def test_unknown_tag_pibe506():
    module = _harden(_module())
    _find(module, Opcode.RET).defense = "quantum_shield"
    assert _codes(module) == ["PIBE506"]


class _BrokenConfig(DefenseConfig):
    """Promises an LVI-only lowering while claiming Spectre V2 coverage —
    the taxonomy inconsistency PIBE507 exists to catch."""

    def forward_defense(self):
        return Defense.LVI_CFI_FWD  # not SPECTRE_V2_SAFE


def test_promised_tag_outside_protection_class_pibe507():
    module = _module()
    HardeningPass(_BrokenConfig(retpolines=True, lvi_cfi=True)).run(module)
    assert "PIBE507" in _codes(module)


def test_swapped_stock_tag_pibe504():
    module = _harden(_module())
    # retpoline is a stock tag, but all-defenses promises fenced_retpoline
    _find(module, Opcode.ICALL).defense = Defense.RETPOLINE.value
    assert _codes(module) == ["PIBE504"]


def test_registered_custom_tag_accepted():
    module = _module()
    fwd = CustomDefense(
        name="pscfi_fwd",
        kind="forward",
        cycles=10.0,
        protects=frozenset({"spectre_v2", "lvi"}),
    )
    bwd = CustomDefense(
        name="pscfi_ret",
        kind="backward",
        cycles=8.0,
        protects=frozenset({"ret2spec", "lvi"}),
    )
    CustomHardeningPass(forward=fwd, backward=bwd).run(module)
    assert _codes(module) == []


def test_custom_tag_on_exempt_branch_pibe505():
    module = _module()
    fwd = CustomDefense(name="pscfi_fwd", kind="forward", cycles=10.0)
    CustomHardeningPass(forward=fwd).run(module)
    boot_ret = next(
        i for i in module.get("boot").instructions() if i.opcode == Opcode.RET
    )
    boot_ret.defense = "pscfi_fwd"
    assert _codes(module) == ["PIBE505"]
