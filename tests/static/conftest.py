"""Fixtures for the static-analyzer tests: a hand-built module with one
ICP-promoted guard chain, small enough to corrupt surgically."""

from __future__ import annotations

import pytest

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import ATTR_ICP_SITE, ATTR_PROMOTED, Opcode
from repro.passes.icp import IndirectCallPromotion
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile


def make_promoted(observed=None, budget=0.9, num_args=1):
    """A caller whose one icall was ICP-promoted at ``budget``.

    Returns ``(module, profile, site_id)``. Targets are registered in an
    fptr table so the address-taken census is active.
    """
    observed = observed or {"a": 70, "b": 20, "c": 10}
    module = Module("chain")
    for target in observed:
        module.add_function(build_leaf(target, work=2))
    module.add_fptr_table(FunctionPointerTable("ops", sorted(observed)))
    caller = Function("caller")
    b = IRBuilder(caller)
    b.arith(1)
    icall = b.icall(dict(observed), num_args=num_args)
    b.arith(1)
    b.ret()
    module.add_function(caller)

    profile = EdgeProfile()
    for target, count in observed.items():
        profile.record_indirect(icall.site_id, target, count)
    lift_profile(module, profile)
    IndirectCallPromotion(budget=budget).run(module)
    return module, profile, icall.site_id


def promoted_calls(module):
    """Original (non-clone) promoted direct calls, in program order."""
    return [
        inst
        for inst in module.instructions()
        if inst.opcode == Opcode.CALL
        and inst.attrs.get(ATTR_PROMOTED)
        and ATTR_ICP_SITE in inst.attrs
    ]


def fallback_icalls(module):
    """Fallback icalls ICP left behind (carrying site provenance)."""
    return [
        inst
        for inst in module.instructions()
        if inst.opcode == Opcode.ICALL and ATTR_ICP_SITE in inst.attrs
    ]


def block_of(module, inst):
    """The (function, block) containing an instruction."""
    for func in module:
        for block in func.blocks.values():
            if inst in block.instructions:
                return func, block
    raise AssertionError("instruction not found in module")


@pytest.fixture
def chain():
    """(module, profile, site_id) with targets a/b promoted, c residual."""
    return make_promoted()
