"""PIBE6xx: points-to refinement diagnostics."""

from __future__ import annotations

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.static import analyze_module

from tests.static.conftest import promoted_calls


def codes(report):
    return [d.code for d in report.diagnostics]


def test_clean_chain_has_no_pointsto_findings(chain):
    module, profile, _ = chain
    report = analyze_module(module, profile=profile)
    assert not report.by_code("PIBE6")


def test_undefined_table_entry_is_pibe601():
    module, profile = _declared_promoted()
    module.fptr_tables["ops"].entries.append("ghost")
    module.bump_version()
    report = analyze_module(module, profile=profile)
    found = report.by_code("PIBE601")
    assert found and "@ghost" in found[0].message
    assert "undefined" in found[0].message


def test_arity_mismatched_entry_is_pibe601():
    module, profile = _declared_promoted()
    module.add_function(build_leaf("fat", num_params=3))
    module.fptr_tables["ops"].entries.append("fat")
    module.bump_version()
    report = analyze_module(module, profile=profile)
    found = report.by_code("PIBE601")
    assert found
    assert "takes 3 params" in found[0].message


def _declared_promoted():
    """Like the ``chain`` fixture but the icall declares its table —
    the precondition for judging promoted guard arms (PIBE602)."""
    from repro.passes.icp import IndirectCallPromotion
    from repro.profiling.lifting import lift_profile
    from repro.profiling.profile_data import EdgeProfile

    observed = {"a": 70, "b": 20, "c": 10}
    module = Module("declared-chain")
    for target in observed:
        module.add_function(build_leaf(target, work=2))
    module.add_fptr_table(FunctionPointerTable("ops", sorted(observed)))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall(dict(observed), num_args=1, fptr_table="ops")
    b.ret()
    module.add_function(caller)
    profile = EdgeProfile()
    for target, count in observed.items():
        profile.record_indirect(icall.site_id, target, count)
    lift_profile(module, profile)
    IndirectCallPromotion(budget=0.9).run(module)
    return module, profile


def test_declared_site_promoted_arms_are_clean():
    module, profile = _declared_promoted()
    report = analyze_module(module, profile=profile)
    assert not report.by_code("PIBE6")


def test_flow_infeasible_promoted_callee_is_pibe602():
    module, profile = _declared_promoted()
    # Redirect one guard arm at a defined function that never flows
    # through the "ops" table: the guard compares against a value the
    # data flow proves impossible.
    module.add_function(build_leaf("stray", num_params=1))
    promoted = promoted_calls(module)
    assert promoted
    promoted[0].callee = "stray"
    module.bump_version()
    report = analyze_module(module, profile=profile)
    found = report.by_code("PIBE602")
    assert found and "@stray" in found[0].message


def test_undeclared_origin_site_arms_not_flagged(chain):
    # The fixture's icall never declared a table; its fallback flow is
    # residual-only, so promoted arms must NOT be judged against it.
    module, profile, _ = chain
    report = analyze_module(module, profile=profile)
    assert not report.by_code("PIBE602")


def test_census_fallback_note_is_pibe603():
    module = Module("undeclared")
    for name in ("a", "b"):
        module.add_function(build_leaf(name, num_params=1))
    module.add_fptr_table(FunctionPointerTable("ops", ["a", "b"]))
    # An inline-asm helper poisons the solve for its callers: caller's
    # environment hits ⊤ and the undeclared site takes the census bound.
    from repro.ir.types import FunctionAttr

    asm = Function("asmhelper", attrs={FunctionAttr.INLINE_ASM})
    b = IRBuilder(asm)
    b.arith(1)
    b.ret()
    module.add_function(asm)
    caller = Function("caller")
    b = IRBuilder(caller)
    b.call("asmhelper")
    b.icall({"a": 1}, num_args=1)
    b.ret()
    module.add_function(caller)
    report = analyze_module(module)
    found = report.by_code("PIBE603")
    assert found
    assert found[0].severity.name == "NOTE"


def test_pointsto_findings_are_not_errors():
    module, profile = _declared_promoted()
    module.fptr_tables["ops"].entries.append("ghost")
    module.bump_version()
    report = analyze_module(module, profile=profile)
    from repro.static import Severity

    assert report.by_code("PIBE6")
    for diag in report.by_code("PIBE6"):
        assert diag.severity < Severity.ERROR
