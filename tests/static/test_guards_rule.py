"""Guard-chain shape checker (PIBE3xx): mutate a real ICP chain and check
the rule pins each corruption."""

from repro.ir.instruction import Instruction
from repro.ir.types import (
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    Opcode,
)
from repro.static import analyze_module

from tests.static.conftest import (
    block_of,
    fallback_icalls,
    make_promoted,
    promoted_calls,
)


def _codes(module):
    return [
        d.code for d in analyze_module(module, rules=["guard-chain-shape"])
    ]


def test_intact_chain_is_clean(chain):
    module, _, _ = chain
    assert _codes(module) == []


def test_fully_promoted_passthrough_is_clean():
    module, _, _ = make_promoted(budget=1.0)
    assert _codes(module) == []


def test_instruction_inserted_into_direct_block_pibe301(chain):
    module, _, _ = chain
    victim = promoted_calls(module)[0]
    _, block = block_of(module, victim)
    block.instructions.insert(1, Instruction(Opcode.STORE))
    assert "PIBE301" in _codes(module)


def test_swapped_guard_edges_pibe302(chain):
    module, _, _ = chain
    victim = promoted_calls(module)[0]
    func, block = block_of(module, victim)
    # Find the guard branching to this direct block and swap its edges:
    # the call is now on the fallthrough edge, not the taken edge.
    for guard in func.blocks.values():
        term = guard.terminator
        if (
            term is not None
            and term.opcode == Opcode.BR
            and term.targets[0] == block.label
        ):
            term.targets = (term.targets[1], term.targets[0])
            break
    else:
        raise AssertionError("no guard feeds the direct block")
    codes = _codes(module)
    assert "PIBE302" in codes


def test_fallback_replaced_by_plain_block_pibe303(chain):
    module, _, _ = chain
    fallback = fallback_icalls(module)[0]
    _, block = block_of(module, fallback)
    # Replace the icall with plain computation: the guards now fall
    # through into a block that never dispatches the residual.
    block.instructions[0] = Instruction(Opcode.ARITH)
    codes = _codes(module)
    assert "PIBE303" in codes


def test_promoted_target_leaks_into_residual_pibe304(chain):
    module, _, _ = chain
    victim = promoted_calls(module)[0]
    fallback = fallback_icalls(module)[0]
    fallback.attrs[ATTR_TARGETS][victim.callee] = 7
    assert "PIBE304" in _codes(module)


def test_direct_block_rejoins_elsewhere_pibe305(chain):
    module, _, _ = chain
    victim = promoted_calls(module)[0]
    func, block = block_of(module, victim)
    stray = func.new_block(func.unique_label("stray"))
    stray.append(Instruction(Opcode.RET))
    block.terminator.targets = (stray.label,)
    assert "PIBE305" in _codes(module)


def test_extra_instruction_in_fallback_pibe306(chain):
    module, _, _ = chain
    fallback = fallback_icalls(module)[0]
    _, block = block_of(module, fallback)
    block.instructions.insert(1, Instruction(Opcode.LOAD))
    assert "PIBE306" in _codes(module)


def test_retained_value_profile_pibe307_warning(chain):
    module, _, _ = chain
    fallback = fallback_icalls(module)[0]
    fallback.attrs[ATTR_VALUE_PROFILE] = [("c", 10)]
    report = analyze_module(module, rules=["guard-chain-shape"])
    assert [d.code for d in report.warnings()] == ["PIBE307"]
