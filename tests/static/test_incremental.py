"""Incremental + parallel lint: equivalence with the direct analyzer,
chunk-level invalidation, rule-environment invalidation, sharding."""

from __future__ import annotations

import pytest

from repro.evaluation.cache import DiskCache
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec
from repro.static import analyze_module, lint_module
from repro.static.incremental import build_shards, lint_fingerprints, run_shard


@pytest.fixture
def kernel():
    return build_kernel(SmallSpec())


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


def test_uncached_lint_matches_analyze(kernel):
    direct = analyze_module(kernel)
    report = lint_module(kernel)
    assert report.to_json() == direct.to_json()
    assert report.stats["functions"] == len(kernel.functions)
    assert report.stats["chunks"] == 0  # no cache attached


def test_cold_then_warm_hits_everything(kernel, cache):
    cold = lint_module(kernel, cache=cache)
    assert cold.stats["cache_misses"] == len(kernel.functions)
    assert cold.stats["cache_hits"] == 0
    warm = lint_module(kernel, cache=cache)
    assert warm.stats["cache_hits"] == len(kernel.functions)
    assert warm.stats["cache_misses"] == 0
    assert warm.to_json() == cold.to_json()


def test_version_bump_without_edit_still_hits(kernel, cache):
    lint_module(kernel, cache=cache)
    kernel.bump_version()
    warm = lint_module(kernel, cache=cache)
    assert warm.stats["cache_misses"] == 0


def test_editing_one_function_invalidates_only_its_chunk(kernel, cache):
    lint_module(kernel, cache=cache)
    name = sorted(kernel.functions)[0]
    func = kernel.get(name)
    block = next(iter(func.blocks.values()))
    block.instructions[0].num_args += 0  # touch nothing yet: still warm
    kernel.bump_version()
    assert lint_module(kernel, cache=cache).stats["cache_misses"] == 0

    # A real edit changes the fingerprint -> exactly one chunk misses.
    func.stack_frame_size += 8
    kernel.bump_version()
    report = lint_module(kernel, cache=cache)
    from repro.static.incremental import CHUNK_SIZE

    assert 0 < report.stats["cache_misses"] <= CHUNK_SIZE
    assert report.to_json() == analyze_module(kernel).to_json()


def test_table_edit_invalidates_whole_cache(kernel, cache):
    lint_module(kernel, cache=cache)
    table = next(iter(kernel.fptr_tables.values()))
    table.entries.append("nonexistent_fn")
    kernel.bump_version()
    report = lint_module(kernel, cache=cache)
    # Table contents feed the targets/pointsto rule environments, so the
    # signature digest changes and every chunk misses.
    assert report.stats["cache_misses"] == len(kernel.functions)
    assert report.to_json() == analyze_module(kernel).to_json()


def test_rule_selection_has_distinct_cache_namespace(kernel, cache):
    lint_module(kernel, cache=cache)
    scoped = lint_module(kernel, rules=["PIBE3"], cache=cache)
    assert scoped.stats["cache_misses"] == len(kernel.functions)
    assert scoped.to_json() == analyze_module(kernel, rules=["PIBE3"]).to_json()


def test_parallel_lint_matches_inline(kernel, cache):
    parallel = lint_module(kernel, cache=cache, jobs=4)
    assert parallel.stats["shards"] >= 0  # fork may be unavailable
    direct = analyze_module(kernel)
    assert parallel.to_json() == direct.to_json()


def test_lost_shard_recomputed_inline(kernel):
    calls = {"n": 0}

    def flaky_mapper(shards):
        calls["n"] += 1
        # Lose every other shard; lint must recompute them inline.
        return [
            run_shard(kernel, None, *shard) if i % 2 == 0 else None
            for i, shard in enumerate(shards)
        ]

    report = lint_module(kernel, jobs=4, map_shards=flaky_mapper)
    assert calls["n"] == 1
    assert report.to_json() == analyze_module(kernel).to_json()


def test_build_shards_covers_everything():
    rules = ("r1", "r2", "r3")
    funcs = tuple(f"f{i}" for i in range(100))
    shards = build_shards(rules, funcs, jobs=4)
    seen = set()
    for rule_names, func_names in shards:
        for r in rule_names:
            for f in func_names:
                assert (r, f) not in seen
                seen.add((r, f))
    assert seen == {(r, f) for r in rules for f in funcs}


def test_fingerprints_memoized_per_version(kernel):
    first = lint_fingerprints(kernel)
    assert lint_fingerprints(kernel) is first
    kernel.bump_version()
    assert lint_fingerprints(kernel) is not first


def test_empty_module_lints(cache):
    from repro.ir.module import Module

    module = Module("empty")
    func = Function("only")
    b = IRBuilder(func)
    b.ret()
    module.add_function(func)
    report = lint_module(module, cache=cache)
    assert report.stats["functions"] == 1
    assert report.to_json() == analyze_module(module).to_json()
