"""Rule registry: registration, selection by name and code prefix."""

import pytest

from repro.static import Severity, all_rules, get_rule, select_rules
from repro.static.registry import Rule


EXPECTED_RULES = {
    "structural",
    "type-feasible-targets",
    "guard-chain-shape",
    "profile-flow-conservation",
    "speculation-coverage",
}


def test_all_builtin_rules_registered():
    names = {r.name for r in all_rules()}
    assert EXPECTED_RULES <= names


def test_codes_are_unique_across_rules():
    seen = {}
    for rule in all_rules():
        for code in rule.codes:
            assert code not in seen, f"{code} in {rule.name} and {seen[code]}"
            seen[code] = rule.name


def test_get_rule_by_name():
    assert get_rule("structural").name == "structural"
    with pytest.raises(KeyError):
        get_rule("no-such-rule")


def test_select_by_code_prefix():
    (rule,) = select_rules(["PIBE3"])
    assert rule.name == "guard-chain-shape"
    (rule,) = select_rules(["PIBE507"])
    assert rule.name == "speculation-coverage"


def test_select_unknown_selector_raises_with_known_rules():
    with pytest.raises(KeyError, match="structural"):
        select_rules(["PIBE9"])


def test_rule_cannot_emit_undeclared_code():
    rule = get_rule("structural")
    with pytest.raises(AssertionError):
        rule.diag("PIBE999", Severity.ERROR, "x")


def test_every_rule_has_description_and_codes():
    for rule in all_rules():
        assert rule.description, rule.name
        assert rule.codes, rule.name
        assert isinstance(rule, Rule)
