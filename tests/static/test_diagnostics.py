"""Diagnostic records, severity ordering, and report rendering."""

import json

from repro.static import Diagnostic, DiagnosticReport, Severity


def _diag(code="PIBE101", severity=Severity.ERROR, **kw):
    return Diagnostic(code=code, severity=severity, message="m", **kw)


def test_severity_ordering():
    assert Severity.NOTE < Severity.WARNING < Severity.ERROR
    assert str(Severity.ERROR) == "error"
    assert max([Severity.NOTE, Severity.ERROR]) is Severity.ERROR


def test_render_includes_code_location_and_site():
    d = Diagnostic(
        code="PIBE304",
        severity=Severity.ERROR,
        message="bad overlap",
        function="f",
        block="b1",
        site_id=7,
    )
    assert d.render() == "error[PIBE304] @f:b1: bad overlap (site 7)"
    assert d.where == "@f:b1"


def test_module_scope_render_has_no_location():
    d = _diag()
    assert d.where == ""
    assert d.render() == "error[PIBE101] m"


def test_legacy_message_matches_old_validator_format():
    d = Diagnostic(
        code="PIBE102",
        severity=Severity.ERROR,
        message="block is not terminated",
        function="f",
        block="entry",
    )
    assert d.legacy_message() == "@f:entry: block is not terminated"


def test_report_queries():
    report = DiagnosticReport(module_name="m")
    report.add(_diag("PIBE101", Severity.ERROR))
    report.add(_diag("PIBE307", Severity.WARNING))
    report.add(_diag("PIBE403", Severity.NOTE))
    assert len(report.errors()) == 1
    assert len(report.warnings()) == 1
    assert len(report.at_least(Severity.WARNING)) == 2
    assert report.codes() == ["PIBE101", "PIBE307", "PIBE403"]
    assert [d.code for d in report.by_code("PIBE3")] == ["PIBE307"]
    assert report.counts() == {"note": 1, "warning": 1, "error": 1}
    assert bool(report)
    assert not DiagnosticReport()


def test_to_text_sorts_worst_first_and_summarizes():
    report = DiagnosticReport(module_name="m", rules=["structural"])
    report.add(_diag("PIBE403", Severity.NOTE))
    report.add(_diag("PIBE101", Severity.ERROR))
    text = report.to_text()
    lines = text.splitlines()
    assert lines[0].startswith("error[")
    assert lines[-1] == "m: 1 error(s), 0 warning(s), 1 note(s) from 1 rule(s)"


def test_to_json_round_trips():
    report = DiagnosticReport(module_name="m", rules=["structural"])
    report.add(_diag("PIBE105", Severity.ERROR, function="f", site_id=3))
    record = json.loads(report.to_json())
    assert record["module"] == "m"
    assert record["rules"] == ["structural"]
    assert record["counts"]["error"] == 1
    (entry,) = record["diagnostics"]
    assert entry["code"] == "PIBE105"
    assert entry["severity"] == "error"
    assert entry["function"] == "f"
    assert entry["site_id"] == 3
