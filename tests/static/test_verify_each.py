"""Pass-boundary verification and whole-pipeline cleanliness: the seed
kernel and every PIBE-hardened variant must lint clean, and a corrupting
pass must be caught at its own boundary."""

import pytest

from repro.core.config import PibeConfig
from repro.hardening.defenses import DefenseConfig
from repro.ir.parser import dump_module, parse_module
from repro.ir.types import ATTR_EDGE_COUNT, Opcode
from repro.passes.manager import ModulePass, PassManager
from repro.static import (
    Severity,
    StaticAnalysisError,
    analyze_module,
    assert_clean,
)

BUDGETS = (0.5, 0.9, 0.99)


def test_seed_kernel_lints_clean(small_kernel, small_profile):
    report = analyze_module(small_kernel, profile=small_profile)
    assert not report.errors(), report.to_text()


@pytest.mark.parametrize("budget", BUDGETS)
def test_hardened_variants_lint_clean(small_pipeline, small_profile, budget):
    config = PibeConfig(
        defenses=DefenseConfig.all_defenses(),
        icp_budget=budget,
        inline_budget=budget,
    )
    build = small_pipeline.build_variant(
        config, small_profile, verify_each=True
    )
    report = analyze_module(build.module, profile=small_profile)
    assert not report.errors(), report.to_text()


def test_roundtripped_dump_lints_clean(hardened_build, small_profile):
    module = parse_module(dump_module(hardened_build.module))
    report = analyze_module(module, profile=small_profile)
    assert not report.errors(), report.to_text()


def test_assert_clean_returns_report(small_kernel):
    report = assert_clean(small_kernel)
    assert "structural" in report.rules


class _CorruptingPass(ModulePass):
    """Deliberately breaks flow conservation on the first promoted call."""

    name = "corruptor"

    def run(self, module):
        for inst in module.instructions():
            if inst.opcode == Opcode.CALL and ATTR_EDGE_COUNT in inst.attrs:
                inst.attrs[ATTR_EDGE_COUNT] += 1_000_000


def test_verify_each_names_the_offending_pass(kernel_copy, small_profile):
    from repro.passes.icp import IndirectCallPromotion
    from repro.profiling.lifting import lift_profile

    lift_profile(kernel_copy, small_profile)
    manager = PassManager(verify_each=True, verify_profile=small_profile)
    manager.add(IndirectCallPromotion(budget=0.9))
    manager.add(_CorruptingPass())
    with pytest.raises(StaticAnalysisError) as exc:
        manager.run(kernel_copy)
    assert "after pass 'corruptor'" in str(exc.value)
    assert exc.value.report.by_code("PIBE401")


def test_verify_each_rule_subset(kernel_copy):
    manager = PassManager(verify_each=["structural"])
    manager.add(_CorruptingPass())  # breaks flow, not structure
    manager.run(kernel_copy)  # structural-only verification stays quiet


def test_assert_clean_fail_on_warning(chain):
    from repro.ir.types import ATTR_VALUE_PROFILE

    module, _, _ = chain
    for inst in module.instructions():
        if inst.opcode == Opcode.ICALL:
            inst.attrs[ATTR_VALUE_PROFILE] = [("c", 10)]
    assert_clean(module)  # warnings pass the default gate
    with pytest.raises(StaticAnalysisError, match="PIBE307"):
        assert_clean(module, fail_on=Severity.WARNING)
