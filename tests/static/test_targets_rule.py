"""Type/signature feasible-target analysis (PIBE2xx) corruption tests."""

from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import ATTR_TARGETS, ATTR_VALUE_PROFILE
from repro.static import analyze_module

from tests.static.conftest import fallback_icalls, promoted_calls


def _module(num_args=1, table_entries=("a", "b"), icall_kw=None):
    module = Module("m")
    module.add_function(build_leaf("a", num_params=1))
    module.add_function(build_leaf("b", num_params=1))
    module.add_function(build_leaf("fat", num_params=3))
    module.add_fptr_table(FunctionPointerTable("ops", list(table_entries)))
    caller = Function("caller")
    b = IRBuilder(caller)
    icall = b.icall({"a": 1, "b": 1}, num_args=num_args, **(icall_kw or {}))
    b.ret()
    module.add_function(caller)
    return module, icall


def _codes(module):
    return [
        d.code
        for d in analyze_module(module, rules=["type-feasible-targets"])
    ]


def test_clean_icall_has_no_findings():
    module, _ = _module()
    assert _codes(module) == []


def test_target_not_address_taken_pibe201():
    module, icall = _module(table_entries=("a",))
    assert _codes(module) == ["PIBE201"]  # 'b' escaped no table


def test_arity_mismatch_pibe202():
    module, icall = _module()
    icall.attrs[ATTR_TARGETS]["fat"] = 1
    module.fptr_tables["ops"].add("fat")
    assert _codes(module) == ["PIBE202"]


def test_target_outside_declared_table_pibe203():
    module, icall = _module(icall_kw={"fptr_table": "ops"})
    module.add_fptr_table(FunctionPointerTable("other", ["c"]))
    module.add_function(build_leaf("c", num_params=1))
    icall.attrs[ATTR_TARGETS]["c"] = 1
    assert _codes(module) == ["PIBE203"]


def test_profile_observed_infeasible_target_pibe204():
    module, icall = _module()
    icall.attrs[ATTR_VALUE_PROFILE] = [("a", 5), ("fat", 3)]
    assert _codes(module) == ["PIBE204"]


def test_stale_profile_entry_pibe205_warning():
    module, icall = _module()
    icall.attrs[ATTR_VALUE_PROFILE] = [("gone", 2)]
    report = analyze_module(module, rules=["type-feasible-targets"])
    assert not report.errors()
    assert [d.code for d in report.warnings()] == ["PIBE205"]


def test_promoted_call_outside_census_pibe206(chain):
    module, _profile, _site = chain
    victim = promoted_calls(module)[0]
    module.fptr_tables["ops"].entries.remove(victim.callee)
    # Keep the residual icall consistent: only the promoted direct is bad.
    for icall in fallback_icalls(module):
        icall.attrs[ATTR_TARGETS].pop(victim.callee, None)
    report = analyze_module(module, rules=["type-feasible-targets"])
    assert "PIBE206" in [d.code for d in report.errors()]


def test_census_checks_vacuous_without_tables():
    module, icall = _module()
    module.fptr_tables.clear()
    icall.attrs[ATTR_TARGETS]["fat"] = 1  # arity still enforced
    assert _codes(module) == ["PIBE202"]
