"""Interpreter semantics: control flow, loops, events, limits."""

import pytest

from repro.engine.interpreter import ExecutionError, ExecutionLimits, Interpreter
from repro.engine.trace import TraceRecorder
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import Opcode


def _run(module, entry, times=1, seed=0, **kw):
    recorder = TraceRecorder()
    Interpreter(module, [recorder], seed=seed, **kw).run_function(entry, times)
    return recorder


def test_straight_line_mix_events():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(2)
    b.load(1)
    b.store(1)
    b.ret()
    module.add_function(func)
    rec = _run(module, "f")
    assert rec.of_kind("mix") == [("mix", 2, 1, 1, 0, 0, 0)]
    assert rec.of_kind("ret") == [("ret", "f")]
    assert rec.events[0] == ("run_start", "f")
    assert rec.events[-1] == ("run_end", "f")


def test_direct_call_nesting_order():
    module = Module("m")
    module.add_function(build_leaf("leaf", work=1, loads=0, stores=0))
    func = Function("f")
    b = IRBuilder(func)
    b.call("leaf")
    b.ret()
    module.add_function(func)
    rec = _run(module, "f")
    kinds = [e[0] for e in rec.events]
    assert kinds == [
        "run_start", "enter", "call", "enter", "mix", "ret", "ret", "run_end",
    ]


def test_icall_resolves_single_target():
    module = Module("m")
    module.add_function(build_leaf("only"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"only": 1})
    b.ret()
    module.add_function(func)
    rec = _run(module, "f", times=5)
    icalls = rec.of_kind("icall")
    assert len(icalls) == 5
    assert all(e[3] == "only" for e in icalls)


def test_icall_marginal_distribution_with_stickiness():
    module = Module("m")
    module.add_function(build_leaf("a"))
    module.add_function(build_leaf("b"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"a": 3, "b": 1})
    b.ret()
    module.add_function(func)
    rec = _run(module, "f", times=4000, seed=3)
    targets = [e[3] for e in rec.of_kind("icall")]
    frac_a = targets.count("a") / len(targets)
    # sticky Markov reuse keeps the stationary marginal at the weights
    assert 0.65 < frac_a < 0.85


def test_loop_trip_counts():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    head = b.new_block("head")
    after = b.new_block("after")
    b.jmp(head.label)
    b.at(head).arith(1)
    b.at(head).br(head.label, after.label, trip=4)
    b.at(after).ret()
    module.add_function(func)
    rec = _run(module, "f")
    total_arith = sum(e[1] for e in rec.of_kind("mix"))
    assert total_arith == 5  # first entry + 4 back edges


def test_deterministic_branch_probabilities():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    then = b.new_block("then")
    other = b.new_block("other")
    b.br(then.label, other.label, p_taken=1.0)
    b.at(then).arith(7)
    b.at(then).ret()
    b.at(other).arith(1)
    b.at(other).ret()
    module.add_function(func)
    rec = _run(module, "f")
    assert sum(e[1] for e in rec.of_kind("mix")) == 7


def test_switch_dispatch():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    c0 = b.new_block("c0")
    c1 = b.new_block("c1")
    b.switch([c0.label, c1.label], weights=[1.0, 0.0])
    b.at(c0).arith(2)
    b.at(c0).ret()
    b.at(c1).arith(9)
    b.at(c1).ret()
    module.add_function(func)
    rec = _run(module, "f", times=10)
    assert sum(e[1] for e in rec.of_kind("mix")) == 20


def test_opaque_ijump_acts_as_transfer_out():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(1)
    b.ijump()
    module.add_function(func)
    rec = _run(module, "f")
    assert rec.of_kind("ijump") == [("ijump", "f")]
    assert rec.of_kind("ret") == []


def test_jump_table_ijump_continues_in_function():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    case = b.new_block("case")
    block = func.entry
    block.append(Instruction(Opcode.IJUMP, targets=(case.label,)))
    b.at(case).arith(3)
    b.at(case).ret()
    module.add_function(func)
    rec = _run(module, "f")
    assert len(rec.of_kind("ijump")) == 1
    assert sum(e[1] for e in rec.of_kind("mix")) == 3


def test_unknown_function_raises():
    module = Module("m")
    with pytest.raises(ExecutionError, match="unknown function"):
        Interpreter(module).run_function("ghost")


def test_unknown_syscall_raises():
    module = Module("m")
    with pytest.raises(ExecutionError, match="unknown syscall"):
        Interpreter(module).run_syscall("ghost")


def test_depth_limit_enforced():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.call("f")
    b.ret()
    module.add_function(func)
    interp = Interpreter(module, limits=ExecutionLimits(max_depth=10))
    with pytest.raises(ExecutionError, match="depth exceeded"):
        interp.run_function("f")


def test_step_limit_enforced():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    head = b.new_block("head")
    b.jmp(head.label)
    b.at(head).arith(1)
    b.at(head).jmp(head.label)  # infinite loop
    module.add_function(func)
    interp = Interpreter(module, limits=ExecutionLimits(max_steps=1000))
    with pytest.raises(ExecutionError, match="step limit"):
        interp.run_function("f")


def test_bad_stickiness_rejected():
    module = Module("m")
    with pytest.raises(ValueError, match="stickiness"):
        Interpreter(module, target_stickiness=1.0)


def test_same_seed_reproduces_trace():
    module = Module("m")
    module.add_function(build_leaf("a"))
    module.add_function(build_leaf("b"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"a": 1, "b": 1})
    b.ret()
    module.add_function(func)
    rec1 = _run(module, "f", times=50, seed=99)
    rec2 = _run(module, "f", times=50, seed=99)
    assert rec1.events == rec2.events


def test_steps_charge_only_executed_instructions():
    # dead code after an early terminator must not count toward max_steps
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(1)
    b.ret()
    func.entry.instructions.append(Instruction(Opcode.ARITH))  # unreachable
    func.entry.instructions.append(Instruction(Opcode.ARITH))  # unreachable
    module.add_function(func)
    interp = Interpreter(module)
    interp.run_function("f")
    assert interp._steps == 2


def test_pick_case_fractional_weights_exact():
    # float case weights are used directly: a zero-weight case is never
    # taken, however small the nonzero weights are
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    c0 = b.new_block("c0")
    c1 = b.new_block("c1")
    b.switch([c0.label, c1.label], weights=[0.0, 1e-9])
    b.at(c0).arith(1)
    b.at(c0).ret()
    b.at(c1).store(1)
    b.at(c1).ret()
    module.add_function(func)
    rec = _run(module, "f", times=50, seed=2)
    assert sum(e[1] for e in rec.of_kind("mix")) == 0  # c0 never runs
    assert sum(e[3] for e in rec.of_kind("mix")) == 50


class _HistorySpy(TraceRecorder):
    """Snapshots the interpreter's per-site target history at each
    top-level invocation start."""

    def __init__(self):
        super().__init__()
        self.interp = None
        self.snapshots = []

    def on_run_start(self, entry):
        self.snapshots.append(dict(self.interp._last_target))


def test_target_history_cold_at_each_run_function_call():
    module = Module("m")
    module.add_function(build_leaf("a"))
    module.add_function(build_leaf("b"))
    func = Function("f")
    b = IRBuilder(func)
    b.icall({"a": 1, "b": 1})
    b.ret()
    module.add_function(func)
    spy = _HistorySpy()
    interp = Interpreter(module, [spy], seed=1)
    spy.interp = interp
    interp.run_function("f", times=3)
    interp.run_function("f", times=1)
    # cold at the start of each call, sticky within one call's iterations
    assert spy.snapshots[0] == {}
    assert spy.snapshots[1] != {}
    assert spy.snapshots[2] != {}
    assert spy.snapshots[3] == {}
