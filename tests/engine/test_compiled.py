"""Compiled engine: differential equivalence against the reference oracle.

The compiled engine must be an *exact* drop-in: same trace events in the
same order, same RNG consumption, same errors. Every test here runs both
engines and compares, so any semantic drift in the precompilation pass
fails loudly.
"""

import pytest

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.cpu.timing import TimingModel
from repro.engine.compiled import (
    CompiledInterpreter,
    compiled_program,
    create_interpreter,
)
from repro.engine.interpreter import ExecutionError, Interpreter
from repro.engine.trace import TraceRecorder
from repro.hardening.defenses import DefenseConfig
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SmallSpec
from repro.workloads.base import profile_workload
from repro.workloads.lmbench import lmbench_workload


def _events(module, entry, engine, times=1, seed=0):
    recorder = TraceRecorder()
    create_interpreter(module, [recorder], seed=seed, engine=engine).run_function(
        entry, times=times
    )
    return recorder.events


def _rich_module():
    """One function exercising every construct: mixes, direct calls,
    multi-target sticky icalls, trip-counted loops, probabilistic
    branches, weighted switches, and jumps."""
    module = Module("rich")
    for name in ("tgt_a", "tgt_b", "tgt_c"):
        module.add_function(build_leaf(name))
    func = Function("f")
    b = IRBuilder(func)
    head = b.new_block("head")
    after = b.new_block("after")
    c0 = b.new_block("c0")
    c1 = b.new_block("c1")
    out = b.new_block("out")
    t = b.new_block("t")
    e = b.new_block("e")
    b.arith(3)
    b.load(2)
    b.store(1)
    b.call("tgt_a")
    b.jmp(head.label)
    b.at(head).arith(1)
    b.at(head).icall({"tgt_a": 3, "tgt_b": 2, "tgt_c": 1})
    b.at(head).br(head.label, after.label, trip=3)
    b.at(after).switch([c0.label, c1.label], weights=[3.0, 1.0])
    b.at(c0).arith(2)
    b.at(c0).jmp(out.label)
    b.at(c1).store(2)
    b.at(c1).jmp(out.label)
    b.at(out).br(t.label, e.label, p_taken=0.4)
    b.at(t).arith(5)
    b.at(t).ret()
    b.at(e).load(4)
    b.at(e).ret()
    module.add_function(func)
    return module


@pytest.mark.parametrize("seed", [0, 3, 7, 23])
def test_event_stream_equivalence_rich(seed):
    module = _rich_module()
    reference = _events(module, "f", "reference", times=200, seed=seed)
    compiled = _events(module, "f", "compiled", times=200, seed=seed)
    assert compiled == reference


@pytest.mark.parametrize("seed", [3, 7])
def test_kernel_profile_equivalence(seed):
    """Same kernel, same workload, same seed -> bit-identical merged
    EdgeProfiles from either engine (the acceptance bar for swapping the
    production engine under the profiler)."""
    module = build_kernel(SmallSpec())
    workload = lmbench_workload()
    profiles = {
        engine: profile_workload(
            module,
            workload,
            iterations=1,
            seed=seed,
            ops_scale=0.1,
            engine=engine,
        )
        for engine in ("reference", "compiled")
    }
    assert profiles["compiled"].to_dict() == profiles["reference"].to_dict()


def test_hardened_variant_timing_equivalence():
    """A transformed (ICP + inlined + hardened) module times identically
    under both engines — transformations produce fresh IR shapes, so this
    guards the compiler against pass-introduced constructs."""
    pipeline = PibePipeline(build_kernel(SmallSpec()))
    profile = pipeline.profile(
        lmbench_workload(), iterations=1, ops_scale=0.1
    )
    build = pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), profile
    )
    cycles = {}
    for engine in ("reference", "compiled"):
        timing = TimingModel(build.module)
        interp = create_interpreter(
            build.module, [timing], seed=11, engine=engine
        )
        interp.run_syscall("read", times=40)
        interp.run_syscall("select_file", times=10)
        cycles[engine] = (timing.cycles, dict(timing.counters))
    assert cycles["compiled"] == cycles["reference"]


def test_step_accounting_matches():
    module = _rich_module()
    interps = {}
    for engine in ("reference", "compiled"):
        interp = create_interpreter(module, seed=5, engine=engine)
        interp.run_function("f")
        interps[engine] = interp
    assert interps["compiled"]._steps == interps["reference"]._steps


def test_error_parity_unterminated_block():
    module = Module("m")
    func = Function("f")
    IRBuilder(func).arith(1)  # no terminator
    module.add_function(func)
    for engine in ("reference", "compiled"):
        with pytest.raises(ExecutionError, match="unterminated"):
            create_interpreter(module, engine=engine).run_function("f")


def test_error_parity_empty_function():
    module = Module("m")
    module.add_function(Function("f"))
    for engine in ("reference", "compiled"):
        with pytest.raises(ValueError, match="no blocks"):
            create_interpreter(module, engine=engine).run_function("f")


def test_program_cache_reuse_and_invalidation():
    module = _rich_module()
    first = compiled_program(module)
    assert compiled_program(module) is first  # cached on the module
    module.bump_version()
    second = compiled_program(module)
    assert second is not first  # transformation invalidated the program
    assert compiled_program(module) is second


def test_stale_program_never_reused_after_transform():
    """Mutating the IR and bumping the version must change what executes."""
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(1)
    b.ret()
    module.add_function(func)
    interp = CompiledInterpreter(module, seed=0)
    rec1 = TraceRecorder()
    interp.add_sink(rec1)
    interp.run_function("f")
    assert rec1.of_kind("mix") == [("mix", 1, 0, 0, 0, 0, 0)]

    # grow the block, as a pass would, then invalidate
    func.entry.instructions.insert(0, func.entry.instructions[0].clone())
    module.bump_version()
    rec2 = TraceRecorder()
    CompiledInterpreter(module, [rec2], seed=0).run_function("f")
    assert rec2.of_kind("mix") == [("mix", 2, 0, 0, 0, 0, 0)]


def test_create_interpreter_engine_selection():
    module = _rich_module()
    assert type(create_interpreter(module, engine="reference")) is Interpreter
    assert (
        type(create_interpreter(module, engine="compiled"))
        is CompiledInterpreter
    )
    with pytest.raises(ValueError, match="unknown engine"):
        create_interpreter(module, engine="jit")
