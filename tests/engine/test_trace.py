"""Trace sink interface and recorder."""

from repro.engine.interpreter import Interpreter
from repro.engine.trace import TraceRecorder, TraceSink
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module


def _module():
    module = Module("m")
    module.add_function(build_leaf("leaf", work=1, loads=0, stores=0))
    func = Function("f")
    b = IRBuilder(func)
    b.call("leaf")
    b.icall({"leaf": 1})
    b.ijump()
    module.add_function(func)
    return module


def test_base_sink_callbacks_are_noops():
    """A sink that overrides nothing can observe any run unharmed."""
    module = _module()
    Interpreter(module, [TraceSink()], seed=0).run_function("f", times=3)


def test_recorder_captures_every_event_kind():
    module = _module()
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=0).run_function("f")
    kinds = {e[0] for e in rec.events}
    assert kinds == {
        "run_start",
        "enter",
        "call",
        "icall",
        "mix",
        "ret",
        "ijump",
        "run_end",
    }


def test_of_kind_filters():
    module = _module()
    rec = TraceRecorder()
    Interpreter(module, [rec], seed=0).run_function("f", times=4)
    assert len(rec.of_kind("call")) == 4
    assert len(rec.of_kind("icall")) == 4
    assert len(rec.of_kind("ijump")) == 4
    assert rec.of_kind("nonexistent") == []


def test_multiple_sinks_see_identical_streams():
    module = _module()
    a, b = TraceRecorder(), TraceRecorder()
    Interpreter(module, [a, b], seed=0).run_function("f", times=2)
    assert a.events == b.events


def test_partial_sink_override():
    class CallCounter(TraceSink):
        def __init__(self):
            self.count = 0

        def on_call(self, inst, caller, callee):
            self.count += 1

    module = _module()
    counter = CallCounter()
    Interpreter(module, [counter], seed=0).run_function("f", times=7)
    assert counter.count == 7
