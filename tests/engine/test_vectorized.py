"""Vectorized engine: differential equivalence in counting mode.

The vectorized engine batches execution into count vectors, so it cannot
(and does not) replay the event stream — but for counting sinks its
totals must be *bit-identical* to running the reference or compiled
engine under the same :class:`CountingTimingModel`. Every test here runs
all three engines and compares cycles, counters, and event totals
exactly; fallback tests check that non-counting sinks still see the
exact compiled event stream.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.cpu.counting import CountingTimingModel, CountSummary
from repro.engine.compiled import create_interpreter
from repro.engine.interpreter import ExecutionError, ExecutionLimits
from repro.engine.trace import TraceRecorder
from repro.engine.vectorized import VectorizedInterpreter, vector_program
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.function import Function
from repro.ir.module import Module
from repro.kernel.generator import build_kernel
from repro.kernel.spec import SCALED_SPEC, SmallSpec
from repro.workloads.lmbench import engine_workload, lmbench_workload

from ..property.strategies import deterministic_modules

ALL_ENGINES = ("reference", "compiled", "vectorized")


def _rich_module():
    """Every construct in one function: mixes, direct calls, sticky
    multi-target icalls, trip loops, stochastic branches, switches."""
    module = Module("rich")
    for name in ("tgt_a", "tgt_b", "tgt_c"):
        module.add_function(build_leaf(name))
    func = Function("f")
    b = IRBuilder(func)
    head = b.new_block("head")
    after = b.new_block("after")
    c0 = b.new_block("c0")
    c1 = b.new_block("c1")
    out = b.new_block("out")
    t = b.new_block("t")
    e = b.new_block("e")
    b.arith(3)
    b.load(2)
    b.store(1)
    b.call("tgt_a")
    b.jmp(head.label)
    b.at(head).arith(1)
    b.at(head).icall({"tgt_a": 3, "tgt_b": 2, "tgt_c": 1})
    b.at(head).br(head.label, after.label, trip=3)
    b.at(after).switch([c0.label, c1.label], weights=[3.0, 1.0])
    b.at(c0).arith(2)
    b.at(c0).jmp(out.label)
    b.at(c1).store(2)
    b.at(c1).jmp(out.label)
    b.at(out).br(t.label, e.label, p_taken=0.4)
    b.at(t).arith(5)
    b.at(t).ret()
    b.at(e).load(4)
    b.at(e).ret()
    module.add_function(func)
    return module


def _counting_run(module, engine, runs, seed=0, limits=None):
    """Run ``[(entry, times), ...]`` under a counting sink; return every
    observable the sink and interpreter expose."""
    sink = CountingTimingModel(module)
    interp = create_interpreter(
        module, [sink], seed=seed, limits=limits, engine=engine
    )
    for entry, times in runs:
        interp.run_function(entry, times=times)
    return {
        "cycles": sink.cycles,
        "ops": sink.ops,
        "counters": dict(sink.counters),
        "events": sink.total_events,
        "defense": sink.total_defense_cycles,
        "summary": sink.summary.as_dict(),
        "steps": interp._steps,
    }


def _assert_all_equal(results):
    assert results["vectorized"] == results["reference"]
    assert results["compiled"] == results["reference"]


@pytest.mark.parametrize("seed", [0, 3, 7, 23])
def test_counting_equivalence_rich(seed):
    module = _rich_module()
    _assert_all_equal(
        {
            engine: _counting_run(module, engine, [("f", 200)], seed=seed)
            for engine in ALL_ENGINES
        }
    )


@pytest.mark.parametrize(
    "config",
    [
        DefenseConfig.none(),
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        DefenseConfig.all_defenses(),
    ],
    ids=lambda c: c.label(),
)
def test_hardened_kernel_counting_equivalence(config):
    """Optimized + hardened SmallSpec variants (the tier-1 fixtures)
    produce identical counting totals under all three engines."""
    pipeline = PibePipeline(build_kernel(SmallSpec()))
    profile = pipeline.profile(lmbench_workload(), iterations=1, ops_scale=0.1)
    build = pipeline.build_variant(PibeConfig.lax(config), profile)
    results = {}
    for engine in ALL_ENGINES:
        sink = CountingTimingModel(build.module)
        interp = create_interpreter(build.module, [sink], seed=11, engine=engine)
        interp.run_syscall("read", times=40)
        interp.run_syscall("select_file", times=10)
        results[engine] = {
            "cycles": sink.cycles,
            "counters": dict(sink.counters),
            "events": sink.total_events,
        }
    _assert_all_equal(results)


def test_scaled_kernel_counting_equivalence():
    """The 10x ScaledSpec kernel — the bench target — agrees exactly
    across engines on a slice of the engine workload."""
    module = build_kernel(SCALED_SPEC)
    HardeningPass(DefenseConfig.all_defenses()).run(module)
    module.bump_version()
    workload = engine_workload(ops_scale=0.05)
    results = {}
    for engine in ALL_ENGINES:
        sink = CountingTimingModel(module)
        interp = create_interpreter(module, [sink], seed=7, engine=engine)
        for bench, ops in workload.components:
            entry, _ = bench.syscalls[0]
            interp.run_syscall(entry, times=ops)
        results[engine] = {
            "cycles": sink.cycles,
            "events": sink.total_events,
            "counters": dict(sink.counters),
        }
    assert results["reference"]["events"] > 0
    _assert_all_equal(results)


@given(
    module=deterministic_modules(deterministic_icalls=False),
    retpolines=st.booleans(),
    ret_retpolines=st.booleans(),
    lvi_cfi=st.booleans(),
    seed=st.integers(0, 1_000),
    times=st.integers(1, 3),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_counting_equivalence(
    module, retpolines, ret_retpolines, lvi_cfi, seed, times
):
    """Random modules under random defense configs count identically."""
    config = DefenseConfig(
        retpolines=retpolines, ret_retpolines=ret_retpolines, lvi_cfi=lvi_cfi
    )
    HardeningPass(config).run(module)
    module.bump_version()
    _assert_all_equal(
        {
            engine: _counting_run(module, engine, [("fn0", times)], seed=seed)
            for engine in ALL_ENGINES
        }
    )


def test_noncounting_sink_falls_back_to_exact_events():
    """A TraceRecorder cannot absorb counts, so the vectorized engine
    must delegate and replay the exact compiled event stream."""
    module = _rich_module()
    events = {}
    for engine in ("compiled", "vectorized"):
        recorder = TraceRecorder()
        create_interpreter(module, [recorder], seed=9, engine=engine).run_function(
            "f", times=50
        )
        events[engine] = recorder.events
    assert events["vectorized"] == events["compiled"]


def test_mixed_sinks_fall_back_together():
    """One non-counting sink demotes the whole run: both sinks then see
    exactly what the compiled engine would feed them."""
    module = _rich_module()
    results = {}
    for engine in ("compiled", "vectorized"):
        counting = CountingTimingModel(module)
        recorder = TraceRecorder()
        create_interpreter(
            module, [counting, recorder], seed=4, engine=engine
        ).run_function("f", times=30)
        results[engine] = (counting.cycles, dict(counting.counters), recorder.events)
    assert results["vectorized"] == results["compiled"]


def test_error_parity_unterminated_block():
    module = Module("m")
    func = Function("f")
    IRBuilder(func).arith(1)  # no terminator
    module.add_function(func)
    for engine in ALL_ENGINES:
        with pytest.raises(ExecutionError, match="unterminated"):
            create_interpreter(
                module, [CountingTimingModel(module)], engine=engine
            ).run_function("f")


def test_error_parity_undefined_callee():
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.call("ghost")
    b.ret()
    module.add_function(func)
    for engine in ALL_ENGINES:
        with pytest.raises(ExecutionError, match="undefined @ghost"):
            create_interpreter(
                module, [CountingTimingModel(module)], engine=engine
            ).run_function("f")


def test_error_parity_step_limit():
    """An infinite deterministic loop folds into a superblock chain; the
    walker must still hit the step limit like the other engines."""
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    head = b.new_block("head")
    b.jmp(head.label)
    b.at(head).arith(1)
    b.at(head).jmp(head.label)
    module.add_function(func)
    limits = ExecutionLimits(max_steps=1_000)
    for engine in ALL_ENGINES:
        with pytest.raises(ExecutionError, match="step limit"):
            create_interpreter(
                module,
                [CountingTimingModel(module)],
                limits=limits,
                engine=engine,
            ).run_function("f")


def test_error_parity_depth_limit():
    """Deep deterministic call chains may not be silently folded past the
    depth rail — the limit must fire exactly as in the reference."""
    module = Module("m")
    depth = 40
    module.add_function(build_leaf(f"fn{depth}"))
    for i in reversed(range(depth)):
        func = Function(f"fn{i}")
        b = IRBuilder(func)
        b.call(f"fn{i + 1}")
        b.ret()
        module.add_function(func)
    limits = ExecutionLimits(max_depth=10)
    for engine in ALL_ENGINES:
        with pytest.raises(ExecutionError, match="call depth exceeded"):
            create_interpreter(
                module,
                [CountingTimingModel(module)],
                limits=limits,
                engine=engine,
            ).run_function("fn0")
    # and with a generous rail all three agree on the counts
    _assert_all_equal(
        {
            engine: _counting_run(module, engine, [("fn0", 3)])
            for engine in ALL_ENGINES
        }
    )


def test_vector_program_cache_reuse_and_invalidation():
    module = _rich_module()
    first = vector_program(module)
    assert vector_program(module) is first
    module.bump_version()
    second = vector_program(module)
    assert second is not first
    assert vector_program(module) is second


def test_transform_invalidates_counts():
    """Mutating IR + bump_version changes what the vectorized engine
    counts (no stale superblock summaries)."""
    module = Module("m")
    func = Function("f")
    b = IRBuilder(func)
    b.arith(1)
    b.ret()
    module.add_function(func)
    before = _counting_run(module, "vectorized", [("f", 1)])
    func.entry.instructions.insert(0, func.entry.instructions[0].clone())
    module.bump_version()
    after = _counting_run(module, "vectorized", [("f", 1)])
    assert after["summary"]["arith"] == 2 * before["summary"]["arith"]


def test_pure_python_flush_matches_numpy(monkeypatch):
    """Without numpy the flush path switches to pure-python scaled adds;
    totals stay bit-identical."""
    import repro.engine.vectorized as vec

    module = _rich_module()
    if vec._np is not None:
        # force the numpy matrix product even on this tiny program
        monkeypatch.setattr(vec, "_NUMPY_FLUSH_MIN_ROWS", 1)
    with_np = _counting_run(module, "vectorized", [("f", 120)], seed=13)
    monkeypatch.setattr(vec, "_np", None)
    without_np = _counting_run(module, "vectorized", [("f", 120)], seed=13)
    assert without_np == with_np


def test_create_interpreter_vectorized_selection():
    module = _rich_module()
    interp = create_interpreter(module, engine="vectorized")
    assert type(interp) is VectorizedInterpreter


def test_count_summary_accumulation():
    a = CountSummary()
    a.arith = 3
    a.icalls[("retpoline", False)] = 2
    a.rets[None] = 1
    b = CountSummary()
    b.add_scaled(a, 4)
    assert b.arith == 12
    assert b.icalls[("retpoline", False)] == 8
    assert b.rets[None] == 4
    assert b.total_events() == a.total_events() * 4
