"""Behaviour helpers: weighted choice, guard probabilities, loop state."""

import random

import pytest

from repro.engine.behavior import (
    LoopState,
    branch_taken,
    expected_counts,
    guard_probabilities,
    residual_distribution,
    weighted_choice,
)


def test_weighted_choice_respects_weights():
    rng = random.Random(1)
    dist = {"a": 90, "b": 10}
    picks = [weighted_choice(rng, dist) for _ in range(2000)]
    frac_a = picks.count("a") / len(picks)
    assert 0.85 < frac_a < 0.95


def test_weighted_choice_single_key():
    rng = random.Random(0)
    assert weighted_choice(rng, {"only": 5}) == "only"


def test_weighted_choice_rejects_bad_input():
    rng = random.Random(0)
    with pytest.raises(ValueError, match="empty"):
        weighted_choice(rng, {})
    with pytest.raises(ValueError, match="zero total"):
        weighted_choice(rng, {"a": 0})
    with pytest.raises(ValueError, match="negative"):
        weighted_choice(rng, {"a": -1, "b": 2})


def test_guard_probabilities_are_conditional():
    dist = {"a": 50, "b": 30, "c": 20}
    guards = guard_probabilities(dist, ["a", "b"])
    assert guards[0] == ("a", pytest.approx(0.5))
    # P(b | not a) = 30 / 50
    assert guards[1] == ("b", pytest.approx(0.6))


def test_guard_probabilities_full_promotion_ends_at_one():
    dist = {"a": 50, "b": 50}
    guards = guard_probabilities(dist, ["a", "b"])
    assert guards[1][1] == pytest.approx(1.0)


def test_guard_probability_for_unobserved_target_is_zero():
    guards = guard_probabilities({"a": 10}, ["ghost"])
    assert guards[0] == ("ghost", 0.0)


def test_guard_probabilities_reject_zero_total():
    with pytest.raises(ValueError, match="zero total"):
        guard_probabilities({"a": 0}, ["a"])


def test_residual_distribution():
    dist = {"a": 5, "b": 3, "c": 2}
    assert residual_distribution(dist, ["a"]) == {"b": 3, "c": 2}
    assert residual_distribution(dist, ["a", "b", "c"]) == {}


def test_expected_counts_rounding():
    assert expected_counts({"a": 2, "b": 1}, 300) == {"a": 200, "b": 100}
    assert expected_counts({"a": 0}, 100) == {"a": 0}


def test_loop_state_trip_semantics():
    loops = LoopState()
    takes = [loops.take_back_edge("L", 3) for _ in range(4)]
    # taken exactly 3 times, then reset
    assert takes == [True, True, True, False]
    # next loop entry starts fresh
    assert loops.take_back_edge("L", 3) is True


def test_branch_taken_extremes_deterministic():
    rng = random.Random(0)
    assert branch_taken(rng, 1.0, None, "b", None) is True
    assert branch_taken(rng, 0.0, None, "b", None) is False


def test_branch_taken_with_trip_uses_loop_state():
    rng = random.Random(0)
    loops = LoopState()
    outcomes = [branch_taken(rng, 0.5, loops, "b", 2) for _ in range(3)]
    assert outcomes == [True, True, False]
