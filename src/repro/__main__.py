"""``python -m repro`` — the reproduction toolchain entry point."""

import sys

from repro.tools.cli import main

if __name__ == "__main__":
    sys.exit(main())
