"""Reproduction scorecard: measured results vs the paper's reference
values, with explicit tolerance semantics.

Every expectation states what the paper reports, what band we accept
(the substrate is a simulator — see docs/calibration.md), and how the
measured value is extracted from a table result. ``validate_all`` runs
the full evaluation and grades it; ``generate_report.py`` can append the
scorecard, and a test asserts the reproduction stays within bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.evaluation.formatting import Table, pct
from repro.evaluation.harness import EvalContext


@dataclass(frozen=True)
class Expectation:
    """One paper claim and the band we accept for it."""

    name: str
    paper_value: float
    low: float
    high: float
    extract: Callable[[EvalContext], float]
    unit: str = "fraction"

    def check(self, ctx: EvalContext) -> "ExpectationResult":
        measured = self.extract(ctx)
        return ExpectationResult(
            expectation=self,
            measured=measured,
            passed=self.low <= measured <= self.high,
        )


@dataclass
class ExpectationResult:
    expectation: Expectation
    measured: float
    passed: bool


def _fmt(value: float, unit: str) -> str:
    return pct(value) if unit == "fraction" else f"{value:.1f}"


# -- extraction helpers (lazy imports keep module load light) -----------------


def _table5_geomean(column: str):
    def extract(ctx: EvalContext) -> float:
        from repro.evaluation.tables import table5

        return table5(ctx).geomeans[column]

    return extract


def _table6_geomean(row: str, side: str):
    def extract(ctx: EvalContext) -> float:
        from repro.evaluation.tables import table6

        result = table6(ctx)
        values = (
            result.lto_geomeans if side == "lto" else result.pibe_geomeans
        )
        return values[row]

    return extract


def _table3_geomean(column: str):
    def extract(ctx: EvalContext) -> float:
        from repro.evaluation.tables import table3

        return table3(ctx).geomeans[column]

    return extract


def _robustness(attr: str):
    def extract(ctx: EvalContext) -> float:
        from repro.evaluation.tables import robustness

        return getattr(robustness(ctx), attr)

    return extract


def _ticks(config_label: str, kind: str):
    def extract(ctx: EvalContext) -> float:
        from repro.workloads.microbench import measure_ticks
        from repro.evaluation.tables import TABLE1_CONFIGS

        config = dict(TABLE1_CONFIGS)[config_label]
        return measure_ticks(config, kind, iterations=500)

    return extract


#: The reproduction's headline claims. Bands are wide enough to absorb
#: simulator-vs-silicon differences but tight enough that a broken
#: algorithm fails them (full-scale settings assumed).
EXPECTATIONS: List[Expectation] = [
    Expectation(
        "Table 1: retpoline icall ticks",
        paper_value=21.0, low=19.0, high=23.0,
        extract=_ticks("retpolines", "icall"), unit="ticks",
    ),
    Expectation(
        "Table 1: return retpoline ticks",
        paper_value=16.0, low=14.0, high=18.0,
        extract=_ticks("return retpolines", "dcall"), unit="ticks",
    ),
    Expectation(
        "Table 5: all defenses, no optimization",
        paper_value=1.491, low=1.0, high=2.6,
        extract=_table5_geomean("no opt"),
    ),
    Expectation(
        "Table 5: all defenses, lax heuristics",
        paper_value=0.106, low=0.02, high=0.25,
        extract=_table5_geomean("lax heuristics"),
    ),
    Expectation(
        "Table 3: unoptimized retpolines",
        paper_value=0.202, low=0.08, high=0.40,
        extract=_table3_geomean("retpolines"),
    ),
    Expectation(
        "Table 3: retpolines + icp 99.999%",
        paper_value=0.013, low=-0.06, high=0.08,
        extract=_table3_geomean("icp 99.999%"),
    ),
    Expectation(
        "Table 6: PGO-only speedup",
        paper_value=-0.066, low=-0.20, high=-0.01,
        extract=_table6_geomean("None", "pibe"),
    ),
    Expectation(
        "Table 6: LVI-CFI unoptimized",
        paper_value=0.619, low=0.35, high=1.0,
        extract=_table6_geomean("LVI-CFI", "lto"),
    ),
    Expectation(
        "Sec 8.4: Apache-trained overhead",
        paper_value=0.225, low=0.08, high=0.60,
        extract=_robustness("mismatched_geomean"),
    ),
    Expectation(
        "Sec 8.4: default-inliner overhead",
        paper_value=1.002, low=0.25, high=2.0,
        extract=_robustness("default_inliner_geomean"),
    ),
]


@dataclass
class Scorecard:
    results: List[ExpectationResult]

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def all_passed(self) -> bool:
        return self.passed == len(self.results)

    def to_table(self) -> Table:
        table = Table(
            f"Reproduction scorecard: {self.passed}/{len(self.results)} "
            "within band",
            ["claim", "paper", "band", "measured", "ok"],
        )
        for result in self.results:
            exp = result.expectation
            table.add_row(
                exp.name,
                _fmt(exp.paper_value, exp.unit),
                f"[{_fmt(exp.low, exp.unit)}, {_fmt(exp.high, exp.unit)}]",
                _fmt(result.measured, exp.unit),
                "yes" if result.passed else "NO",
            )
        return table


def validate_all(
    ctx: EvalContext, expectations: Optional[List[Expectation]] = None
) -> Scorecard:
    """Evaluate every expectation (reusing the context's caches)."""
    expectations = expectations if expectations is not None else EXPECTATIONS
    return Scorecard([exp.check(ctx) for exp in expectations])
