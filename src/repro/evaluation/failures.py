"""Structured failure accounting for fault-tolerant evaluation.

:meth:`EvalContext.measure_many` no longer dies on the first worker
crash: every completed cell is kept, failing cells are retried and then
degraded to inline execution, and whatever still fails is recorded here.
The caller gets a :class:`MeasureManyResult` — a plain list of per-cell
measurement dicts (``None`` marks a permanently failed cell) with the
:class:`FailureReport` attached, so partial tables can render explicit
gaps instead of aborting the whole regeneration.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Failure kinds recorded per cell.
KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"
KIND_EXCEPTION = "exception"


@dataclass
class CellFailure:
    """One cell that exhausted every recovery path."""

    index: int  # position in the measure_many input
    label: str  # "<config.label()>@<workload>"
    kind: str  # crash | timeout | exception (the *last* failure observed)
    attempts: int  # total attempts, pool and inline combined
    error: str  # stringified final error


@dataclass
class FailureReport:
    """What went wrong (and what was recovered) during a measure_many run."""

    total_cells: int = 0
    #: resubmissions that happened (a retried-then-successful transient
    #: fault contributes here but not to ``failures``)
    retries: int = 0
    #: labels of cells salvaged by inline execution after the pool gave up
    degraded: List[str] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_indices(self) -> List[int]:
        return [f.index for f in self.failures]

    def failed_labels(self) -> List[str]:
        return [f.label for f in self.failures]

    def record(
        self, index: int, label: str, kind: str, attempts: int, error: str
    ) -> None:
        self.failures.append(
            CellFailure(
                index=index,
                label=label,
                kind=kind,
                attempts=attempts,
                error=error,
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_cells": self.total_cells,
            "completed_cells": self.total_cells - len(self.failures),
            "retries": self.retries,
            "degraded": list(self.degraded),
            "failures": [asdict(f) for f in self.failures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def summary(self) -> str:
        """One-line digest for CLI output and logs."""
        completed = self.total_cells - len(self.failures)
        parts = [f"{completed}/{self.total_cells} cells"]
        if self.retries:
            parts.append(f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}")
        if self.degraded:
            parts.append(f"{len(self.degraded)} degraded inline")
        if self.failures:
            parts.append(
                "failed: " + ", ".join(f.label for f in self.failures)
            )
        return "; ".join(parts)


class MeasureManyResult(List[Optional[Dict[str, float]]]):
    """Per-cell results in input order; failed cells are ``None``.

    Compares equal to a plain list of the same dicts, so existing callers
    (and the "byte-identical to sequential" contract) are unaffected when
    nothing fails.
    """

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self.failure_report = FailureReport(total_cells=len(self))
