"""Persistent result cache for the evaluation harness.

Profiling runs and benchmark measurements are deterministic functions of
(kernel spec, configuration, workload, seed, scale knobs, engine version),
so their results can be stored on disk and replayed: a warm cache turns a
multi-minute table regeneration into file reads. Entries live under
``.repro-cache/<kind>/<sha256>.json``; keys hash a canonical JSON encoding
of every input that influences the result, so any change — a different
kernel spec, a new engine version, edited pass behaviour reflected in the
module fingerprint — lands in a fresh slot rather than serving stale data.

Writes are atomic (temp file + rename) so concurrent workers sharing one
cache directory never observe torn entries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: Default cache directory name, created relative to the working directory.
CACHE_DIR_NAME = ".repro-cache"


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable data with a stable ordering.

    Dataclasses become sorted field dicts, enums their values, sets sorted
    lists; anything unrecognized falls back to ``repr`` (stable for the
    config objects used in cache keys, which define no identity-based
    reprs).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (frozenset, set)):
        return sorted(repr(canonicalize(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def cache_key(*parts: Any) -> str:
    """Hash arbitrary key material into a filename-safe hex digest."""
    text = json.dumps(canonicalize(list(parts)), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskCache:
    """A content-addressed JSON store under one root directory.

    Entries are grouped by ``kind`` ("profile", "measure", ...) purely for
    human inspection; the key hash alone guarantees uniqueness. The cache
    never evicts — delete the directory to reset.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or ``None`` on a miss.

        A corrupt entry (interrupted write from a pre-atomic version,
        manual edit) counts as a miss and is left for the next ``put`` to
        overwrite.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` atomically (temp file + rename)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                # Preserve payload key order: measurement dicts keep
                # benchmark order, so warm runs render identically to cold.
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
