"""Persistent result cache for the evaluation harness.

Profiling runs and benchmark measurements are deterministic functions of
(kernel spec, configuration, workload, seed, scale knobs, engine version),
so their results can be stored on disk and replayed: a warm cache turns a
multi-minute table regeneration into file reads. Entries live under
``.repro-cache/<kind>/<sha256>.json``; keys hash a canonical JSON encoding
of every input that influences the result, so any change — a different
kernel spec, a new engine version, edited pass behaviour reflected in the
module fingerprint — lands in a fresh slot rather than serving stale data.

Writes are atomic (temp file + rename) so concurrent workers sharing one
cache directory never observe torn entries. Entries that are corrupt
anyway (a torn write from a pre-atomic version, a manual edit, an
injected fault) are **quarantined** on first read — moved aside into
``quarantine/`` and counted separately — so one bad file costs one
recomputation, not a silent re-parse-and-miss on every future lookup.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro import faults

#: Default cache directory name, created relative to the working directory.
CACHE_DIR_NAME = ".repro-cache"

#: Subdirectory (under the cache root) where corrupt entries are moved.
QUARANTINE_DIR_NAME = "quarantine"


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable data with a stable ordering.

    Dataclasses become sorted field dicts, enums their values, sets sorted
    lists; anything unrecognized falls back to ``repr`` (stable for the
    config objects used in cache keys, which define no identity-based
    reprs).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (frozenset, set)):
        return sorted(repr(canonicalize(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def cache_key(*parts: Any) -> str:
    """Hash arbitrary key material into a filename-safe hex digest."""
    text = json.dumps(canonicalize(list(parts)), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DiskCache:
    """A content-addressed JSON store under one root directory.

    Entries are grouped by ``kind`` ("profile", "measure", ...) purely for
    human inspection; the key hash alone guarantees uniqueness. The cache
    never evicts — delete the directory to reset.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: per-kind {"hits": n, "misses": n, "corrupt": n} breakdown;
        #: CI smoke jobs assert on e.g. the "prefix" kind's hit count.
        self.by_kind: Dict[str, Dict[str, int]] = {}

    def _bump(self, kind: str, counter: str) -> None:
        entry = self.by_kind.setdefault(
            kind, {"hits": 0, "misses": 0, "corrupt": 0}
        )
        entry[counter] += 1

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR_NAME

    def _quarantine(self, kind: str, key: str, path: Path) -> None:
        """Move a corrupt entry aside so it is parsed (and fails) once."""
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{kind}-{key}.json")
        except OSError:
            # Quarantine is best-effort; an unmovable entry is deleted so
            # it still can't shadow the slot forever.
            try:
                path.unlink()
            except OSError:
                pass

    def has(self, kind: str, key: str) -> bool:
        """Whether an entry exists on disk, without reading it.

        Used by content-addressed writers (prefix chunks) to skip
        re-serializing payloads another entry already stored. Does not
        touch the hit/miss counters — it is not a lookup.
        """
        return self._path(kind, key).is_file()

    def quarantine_entry(self, kind: str, key: str) -> bool:
        """Quarantine an entry whose *payload* a caller found corrupt.

        :meth:`get` only catches entries that fail to parse as JSON;
        callers that validate content hashes or decode structured payloads
        (the prefix codec) report semantic corruption here so the bad
        entry is moved aside and counted exactly like a parse failure.
        Returns whether an entry existed to quarantine.
        """
        path = self._path(kind, key)
        if not path.is_file():
            return False
        self.corrupt += 1
        self._bump(kind, "corrupt")
        self._quarantine(kind, key, path)
        return True

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload, or ``None`` on a miss.

        A corrupt entry (torn write, manual edit, injected fault) counts
        as a miss, increments the ``corrupt`` counter and is quarantined,
        so the next ``put`` repopulates a clean slot.
        """
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            self.misses += 1
            self._bump(kind, "misses")
            return None
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            self._bump(kind, "corrupt")
            self._bump(kind, "misses")
            self._quarantine(kind, key, path)
            return None
        self.hits += 1
        self._bump(kind, "hits")
        return payload

    def put(
        self,
        kind: str,
        key: str,
        payload: Dict[str, Any],
        text: Optional[str] = None,
    ) -> None:
        """Store ``payload`` atomically (temp file + rename).

        ``text`` optionally supplies the payload's ``json.dumps``
        rendering when the caller already produced it (content-addressed
        writers hash the text first), skipping a second encode.
        """
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Preserve payload key order: measurement dicts keep benchmark
        # order, so warm runs render identically to cold.
        if text is None:
            text = json.dumps(payload)
        spec = faults.fire("cache.put", kind)
        if spec is not None:
            if spec.mode == "truncate":
                text = text[: max(1, len(text) // 2)]
            elif spec.mode == "corrupt":
                text = '\x00garbage\x00' + text[::-1]
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus the per-kind breakdown.

        Kinds are sorted (not insertion-ordered), so two processes that
        touched the same kinds in different orders render identically —
        the serve ``stats`` endpoint and snapshot tests string-compare
        this.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "by_kind": {k: dict(self.by_kind[k]) for k in sorted(self.by_kind)},
        }

    def disk_usage(self) -> Dict[str, Dict[str, int]]:
        """On-disk entry counts and byte totals per kind (for the CLI).

        Unlike :meth:`stats` (this process's counters), this inspects the
        directory, so it reflects entries written by other processes —
        parallel evaluation workers, earlier runs.
        """
        usage: Dict[str, Dict[str, int]] = {}
        if not self.root.is_dir():
            return usage
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            entries = 0
            size = 0
            for entry in kind_dir.glob("*.json"):
                try:
                    size += entry.stat().st_size
                except OSError:
                    continue
                entries += 1
            usage[kind_dir.name] = {"entries": entries, "bytes": size}
        return usage
