"""Order statistics shared by the serve layer and the sweep engine.

One correct nearest-rank implementation, used everywhere a percentile is
reported: the server's latency histograms (p50/p99) and the sweep
engine's per-cell seed aggregation (median/IQR). Nearest-rank is chosen
over interpolating definitions because every reported value is then an
*actual sample* — a latency that really occurred, an overhead that was
really measured — which keeps reports byte-stable and explainable.

The nearest-rank percentile of a sorted sample ``x_1 <= ... <= x_n`` at
fraction ``f`` is ``x_ceil(f*n)`` (1-indexed), i.e. the smallest sample
such that at least ``f*n`` samples are <= it. The 0-indexed form is
``sorted[ceil(f*n) - 1]`` — note the ``- 1``: indexing ``sorted[int(f*n)]``
overstates the percentile by one rank whenever ``f*n`` lands on an
integer (p50 of an even-length window would return the *upper* middle
sample, p99 of a 100-sample window the maximum).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def nearest_rank(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty sequence.

    ``fraction`` is in ``[0, 1]``; out-of-range ranks clamp to the first
    and last sample.
    """
    if not sorted_values:
        raise ValueError("nearest_rank of an empty sequence")
    rank = math.ceil(fraction * len(sorted_values)) - 1
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


def median(values: Sequence[float]) -> float:
    """Nearest-rank median (the lower-middle sample for even ``n``)."""
    return nearest_rank(sorted(values), 0.50)


def quartiles(values: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank q1/median/q3 of ``values`` (unsorted accepted)."""
    ordered = sorted(values)
    return {
        "q1": nearest_rank(ordered, 0.25),
        "median": nearest_rank(ordered, 0.50),
        "q3": nearest_rank(ordered, 0.75),
    }


def iqr(values: Sequence[float]) -> float:
    """Interquartile range (q3 - q1, nearest-rank)."""
    q = quartiles(values)
    return q["q3"] - q["q1"]
