"""Evaluation harness: builds, profiles and measures kernel variants with
caching, so the per-table generators (and the pytest benchmarks wrapping
them) share one kernel, one profiling run and one measurement per
configuration.

Two optional accelerators sit on top of the in-memory caches:

- **Disk cache** (``EvalSettings.cache_dir``): profiles and measurements
  persist under ``.repro-cache/`` keyed by kernel fingerprint, config,
  workload, seed, scale knobs and engine version, so a repeat run of the
  same experiment matrix skips profiling and measurement entirely.
- **Parallel measurement** (:meth:`EvalContext.measure_many`): independent
  (config, workload) cells fan out over a :class:`ProcessPoolExecutor`
  and merge deterministically in input order regardless of completion
  order.
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.jumpswitches import JumpSwitchParams, JumpSwitchTimingModel
from repro.core.config import PibeConfig
from repro.core.pipeline import BuildResult, PibePipeline
from repro.engine.compiled import (
    DEFAULT_ENGINE,
    ENGINE_VERSION,
    create_interpreter,
)
from repro.evaluation.cache import DiskCache, cache_key
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.apachebench import apachebench_workload
from repro.workloads.base import Benchmark, measure_benchmark
from repro.workloads.lmbench import LMBENCH_BENCHMARKS, lmbench_workload


@dataclass(frozen=True)
class EvalSettings:
    """Scale knobs shared by every experiment."""

    spec: KernelSpec = DEFAULT_SPEC
    profile_iterations: int = 3
    profile_ops_scale: float = 1.0
    measure_ops_scale: float = 0.5
    seed: int = 7
    #: Execution engine for profiling and measurement runs; the engines
    #: produce identical event streams per seed, so results don't depend
    #: on the choice — only wall time does.
    engine: str = DEFAULT_ENGINE
    #: Worker processes for :meth:`EvalContext.measure_many` (1 = inline).
    jobs: int = 1
    #: Directory for the persistent result cache; ``None`` disables it.
    cache_dir: Optional[str] = None

    @classmethod
    def fast(cls) -> "EvalSettings":
        """Reduced scale for tests."""
        return cls(
            profile_iterations=1,
            profile_ops_scale=0.3,
            measure_ops_scale=0.15,
        )


class EvalContext:
    """Caches the kernel, profiles, built variants and measurements."""

    def __init__(self, settings: Optional[EvalSettings] = None) -> None:
        self.settings = settings or EvalSettings()
        self.kernel = build_kernel(self.settings.spec)
        self.pipeline = PibePipeline(self.kernel)
        self.cache: Optional[DiskCache] = (
            DiskCache(Path(self.settings.cache_dir))
            if self.settings.cache_dir
            else None
        )
        self._profiles: Dict[str, EdgeProfile] = {}
        self._variants: Dict[str, BuildResult] = {}
        self._measurements: Dict[str, Dict[str, float]] = {}
        self._fingerprints: Dict[bool, str] = {}

    def _kernel_fingerprint(self, include_sites: bool) -> str:
        fp = self._fingerprints.get(include_sites)
        if fp is None:
            fp = module_fingerprint(self.kernel, include_sites=include_sites)
            self._fingerprints[include_sites] = fp
        return fp

    # -- profiles -----------------------------------------------------------

    @staticmethod
    def _workload(workload_name: str):
        if workload_name == "lmbench":
            return lmbench_workload()
        if workload_name == "apache":
            return apachebench_workload()
        raise ValueError(f"unknown workload {workload_name!r}")

    def profile(self, workload_name: str = "lmbench") -> EdgeProfile:
        cached = self._profiles.get(workload_name)
        if cached is not None:
            return cached
        s = self.settings
        disk_key = None
        if self.cache is not None:
            # Profiles store raw site ids, so the key must be sensitive to
            # the exact id assignment (include_sites=True): a cached
            # profile replayed against a kernel with shifted ids would
            # silently mis-attribute every edge.
            disk_key = cache_key(
                "profile",
                ENGINE_VERSION,
                s.engine,
                self._kernel_fingerprint(include_sites=True),
                workload_name,
                s.profile_iterations,
                s.profile_ops_scale,
                s.seed,
            )
            entry = self.cache.get("profile", disk_key)
            if entry is not None:
                profile = EdgeProfile.from_dict(entry)
                self._profiles[workload_name] = profile
                return profile
        profile = self.pipeline.profile(
            self._workload(workload_name),
            iterations=s.profile_iterations,
            ops_scale=s.profile_ops_scale,
            seed=s.seed,
            engine=s.engine,
        )
        if self.cache is not None and disk_key is not None:
            self.cache.put("profile", disk_key, profile.to_dict())
        self._profiles[workload_name] = profile
        return profile

    # -- variants -------------------------------------------------------------

    def variant(
        self, config: PibeConfig, workload_name: str = "lmbench"
    ) -> BuildResult:
        key = f"{config.label()}@{workload_name if config.optimized else '-'}"
        cached = self._variants.get(key)
        if cached is not None:
            return cached
        profile = self.profile(workload_name) if config.optimized else None
        build = self.pipeline.build_variant(config, profile)
        self._variants[key] = build
        return build

    # -- measurements -------------------------------------------------------------

    def _measure_key(
        self,
        config: PibeConfig,
        benches: Tuple[Benchmark, ...],
        workload_name: str,
    ) -> str:
        bench_key = ",".join(b.name for b in benches)
        workload = workload_name if config.optimized else "-"
        return f"{config.label()}@{workload}|{bench_key}"

    def _measure_disk_key(
        self,
        config: PibeConfig,
        benches: Tuple[Benchmark, ...],
        workload_name: str,
    ) -> Optional[str]:
        if self.cache is None:
            return None
        s = self.settings
        # Measurements depend on module *structure*, not on the site-id
        # values themselves (ids are consistent within one build), so the
        # shape-only fingerprint lets runs in fresh processes share
        # entries. The training profile's knobs matter only when the
        # config actually consumes a profile.
        profile_part = (
            (workload_name, s.profile_iterations, s.profile_ops_scale)
            if config.optimized
            else None
        )
        return cache_key(
            "measure",
            ENGINE_VERSION,
            s.engine,
            self._kernel_fingerprint(include_sites=False),
            config,
            profile_part,
            benches,
            s.measure_ops_scale,
            s.seed,
        )

    def measure(
        self,
        config: PibeConfig,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
    ) -> Dict[str, float]:
        """Per-benchmark cycles/op for a configuration (cached)."""
        benches = tuple(benches)
        key = self._measure_key(config, benches, workload_name)
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        disk_key = self._measure_disk_key(config, benches, workload_name)
        if disk_key is not None:
            entry = self.cache.get("measure", disk_key)
            if entry is not None:
                results = {name: float(v) for name, v in entry.items()}
                self._measurements[key] = results
                return results
        build = self.variant(config, workload_name)
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * self.settings.measure_ops_scale))
            result = measure_benchmark(
                build.module,
                bench,
                ops=ops,
                seed=self.settings.seed,
                engine=self.settings.engine,
            )
            results[bench.name] = result.cycles_per_op
        if disk_key is not None:
            self.cache.put("measure", disk_key, results)
        self._measurements[key] = results
        return results

    def measure_many(
        self,
        configs: Sequence[PibeConfig],
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
        jobs: Optional[int] = None,
    ) -> List[Dict[str, float]]:
        """Measure every configuration; results in input order.

        With ``jobs > 1`` the uncached cells fan out over worker
        processes. Each worker owns a full :class:`EvalContext` (on
        platforms that fork, inherited from this one with its warm
        profile; elsewhere rebuilt from ``settings``), and the merge is
        by input position, so the output is identical to the sequential
        path regardless of which worker finishes first.
        """
        global _WORKER_CTX
        configs = list(configs)
        benches = tuple(benches)
        jobs = self.settings.jobs if jobs is None else jobs
        if jobs <= 1 or len(configs) <= 1:
            return [self.measure(c, benches, workload_name) for c in configs]
        pending = [
            c
            for c in configs
            if self._measure_key(c, benches, workload_name)
            not in self._measurements
        ]
        if pending:
            if any(c.optimized for c in pending):
                # Profile once up front so every forked worker inherits it
                # instead of redoing the training run.
                self.profile(workload_name)
            _WORKER_CTX = self
            try:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)),
                    initializer=_init_worker,
                    initargs=(self.settings,),
                ) as pool:
                    measured = list(
                        pool.map(
                            _measure_cell,
                            [(c, benches, workload_name) for c in pending],
                        )
                    )
            finally:
                _WORKER_CTX = None
            for config, results in zip(pending, measured):
                key = self._measure_key(config, benches, workload_name)
                self._measurements[key] = results
        return [
            self._measurements[self._measure_key(c, benches, workload_name)]
            for c in configs
        ]

    def measure_jumpswitches(
        self,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        params: JumpSwitchParams = JumpSwitchParams(),
    ) -> Dict[str, float]:
        """JumpSwitches baseline: retpolines image, runtime promotion."""
        benches = tuple(benches)
        bench_key = ",".join(b.name for b in benches)
        key = f"jumpswitches|{bench_key}"
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        s = self.settings
        disk_key = None
        if self.cache is not None:
            disk_key = cache_key(
                "measure",
                ENGINE_VERSION,
                s.engine,
                self._kernel_fingerprint(include_sites=False),
                "jumpswitches",
                params,
                benches,
                s.measure_ops_scale,
                s.seed,
            )
            entry = self.cache.get("measure", disk_key)
            if entry is not None:
                results = {name: float(v) for name, v in entry.items()}
                self._measurements[key] = results
                return results
        build = self.variant(
            PibeConfig.hardened(DefenseConfig.retpolines_only())
        )
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * s.measure_ops_scale))
            timing = JumpSwitchTimingModel(build.module, params=params)
            interpreter = create_interpreter(
                build.module, [timing], seed=s.seed, engine=s.engine
            )
            bench.run(interpreter, ops=ops)
            results[bench.name] = timing.cycles / ops
        if self.cache is not None and disk_key is not None:
            self.cache.put("measure", disk_key, results)
        self._measurements[key] = results
        return results

    # -- common baselines ---------------------------------------------------------

    def lto_measurements(
        self, benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS)
    ) -> Dict[str, float]:
        return self.measure(PibeConfig.lto_baseline(), benches)


# -- worker-process plumbing for measure_many --------------------------------
#
# On fork platforms the child inherits _WORKER_CTX (the parent context with
# its warm kernel/profile caches) and the initializer is a no-op; under
# spawn the module is re-imported, _WORKER_CTX is None, and the initializer
# rebuilds an equivalent context from the (picklable) settings.

_WORKER_CTX: Optional[EvalContext] = None


def _init_worker(settings: EvalSettings) -> None:
    global _WORKER_CTX
    if _WORKER_CTX is None:
        _WORKER_CTX = EvalContext(settings)


def _measure_cell(
    cell: Tuple[PibeConfig, Tuple[Benchmark, ...], str]
) -> Dict[str, float]:
    config, benches, workload_name = cell
    assert _WORKER_CTX is not None, "worker initialized without a context"
    return _WORKER_CTX.measure(config, benches, workload_name)


@functools.lru_cache(maxsize=2)
def get_context(fast: bool = False) -> EvalContext:
    """Process-wide shared context (benchmarks in one pytest session reuse
    the same kernel/profile/measurement caches)."""
    return EvalContext(EvalSettings.fast() if fast else EvalSettings())
