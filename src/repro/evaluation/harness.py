"""Evaluation harness: builds, profiles and measures kernel variants with
caching, so the per-table generators (and the pytest benchmarks wrapping
them) share one kernel, one profiling run and one measurement per
configuration.

Two optional accelerators sit on top of the in-memory caches:

- **Disk cache** (``EvalSettings.cache_dir``): profiles and measurements
  persist under ``.repro-cache/`` keyed by kernel fingerprint, config,
  workload, seed, scale knobs and engine version, so a repeat run of the
  same experiment matrix skips profiling and measurement entirely.
- **Parallel measurement** (:meth:`EvalContext.measure_many`): independent
  (config, workload) cells fan out over a :class:`ProcessPoolExecutor`
  and merge deterministically in input order regardless of completion
  order.

The fan-out is fault tolerant: each cell is its own future with a
per-cell timeout, failing cells are retried with exponential backoff
(the pool is rebuilt after a crash or hang), a repeatedly failing cell
degrades to inline sequential execution, and whatever still fails is
recorded in the :class:`FailureReport` attached to the result — one bad
cell costs one table gap, never the regeneration. The
:mod:`repro.faults` injection points (``measure.cell``, ``cache.put``)
let tests and the ``repro faults`` CLI prove all of this under
deliberately induced crashes, hangs and corruption.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults

from repro.baselines.jumpswitches import JumpSwitchParams, JumpSwitchTimingModel
from repro.core.config import PibeConfig
from repro.core.pipeline import BuildResult, PibePipeline
from repro.engine.compiled import (
    DEFAULT_ENGINE,
    ENGINE_VERSION,
    create_interpreter,
)
from repro.evaluation.cache import DiskCache, cache_key
from repro.evaluation.failures import (
    KIND_CRASH,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    FailureReport,
    MeasureManyResult,
)
from repro.hardening.defenses import DefenseConfig
from repro.ir.fingerprint import module_fingerprint
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.apachebench import apachebench_workload
from repro.workloads.base import Benchmark, measure_benchmark
from repro.workloads.lmbench import LMBENCH_BENCHMARKS, lmbench_workload


@dataclass(frozen=True)
class EvalSettings:
    """Scale knobs shared by every experiment."""

    spec: KernelSpec = DEFAULT_SPEC
    profile_iterations: int = 3
    profile_ops_scale: float = 1.0
    measure_ops_scale: float = 0.5
    seed: int = 7
    #: Execution engine for profiling and measurement runs. ``reference``
    #: and ``compiled`` produce identical event streams per seed, so their
    #: results are interchangeable — only wall time differs. ``vectorized``
    #: measures in *counting mode* (warm predictors, additive charges; see
    #: :mod:`repro.cpu.counting`): per-seed event totals still match the
    #: other engines exactly, but cycle totals follow the counting
    #: semantics, so never mix engines within one comparison. Cache keys
    #: include both ``ENGINE_VERSION`` and the engine name, which keeps
    #: cached results from different semantics apart automatically.
    engine: str = DEFAULT_ENGINE
    #: Worker processes for :meth:`EvalContext.measure_many` (1 = inline).
    jobs: int = 1
    #: Directory for the persistent result cache; ``None`` disables it.
    cache_dir: Optional[str] = None
    #: Resubmissions per failing cell before it degrades to inline
    #: execution (and, failing that too, lands in the FailureReport).
    max_retries: int = 2
    #: Per-cell wall-clock limit in the parallel path; on expiry the pool
    #: is killed and rebuilt. ``None`` waits forever (a hung worker then
    #: hangs the run — only disable the timeout in controlled settings).
    cell_timeout: Optional[float] = 300.0
    #: Base of the exponential backoff between retries of one cell
    #: (``retry_backoff * 2**(attempt - 1)`` seconds).
    retry_backoff: float = 0.05
    #: Build optimized prefixes through the incremental decision/apply
    #: engine (delta derivation from a shared per-profile basis). Off
    #: forces every prefix through the cold pass stack — the benchmark
    #: baseline arm; outputs are bit-identical either way.
    incremental_prefixes: bool = True

    @classmethod
    def fast(cls) -> "EvalSettings":
        """Reduced scale for tests."""
        return cls(
            profile_iterations=1,
            profile_ops_scale=0.3,
            measure_ops_scale=0.15,
        )


class EvalContext:
    """Caches the kernel, profiles, built variants and measurements."""

    def __init__(
        self,
        settings: Optional[EvalSettings] = None,
        kernel: Optional["Module"] = None,
    ) -> None:
        """``kernel`` lets callers share one built kernel across contexts
        whose settings differ only in seed/scale knobs (the sweep engine
        runs one context per seed replica); it must be the module
        :func:`build_kernel` would produce for ``settings.spec``."""
        self.settings = settings or EvalSettings()
        self.kernel = kernel if kernel is not None else build_kernel(
            self.settings.spec
        )
        self.cache: Optional[DiskCache] = (
            DiskCache(Path(self.settings.cache_dir))
            if self.settings.cache_dir
            else None
        )
        # The pipeline shares the harness cache so staged variant builds
        # persist their optimized prefixes: parallel workers and later
        # runs stamp defenses onto disk-loaded prefixes instead of
        # re-running ICP + inlining per variant.
        self.pipeline = PibePipeline(
            self.kernel,
            cache=self.cache,
            incremental=self.settings.incremental_prefixes,
        )
        self._profiles: Dict[str, EdgeProfile] = {}
        self._variants: Dict[str, BuildResult] = {}
        self._measurements: Dict[str, Dict[str, float]] = {}
        self._lints: Dict[str, object] = {}
        self._fingerprints: Dict[bool, str] = {}
        # Persistent worker pool: created on the first parallel
        # measure_many and reused by every later call (the serve layer
        # runs many batches against one context), torn down by close().
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers: int = 0
        self._pool_plan: Optional["faults.FaultPlan"] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down the persistent worker pool and retire the context.

        Idempotent. After ``close()`` the caches remain readable (so a
        final ``stats`` snapshot still works) but any attempt to profile
        or measure raises :class:`RuntimeError`. Shutdown waits for the
        workers, so when this returns no child process of the pool is
        left running — the regression tests assert exactly that.
        """
        global _WORKER_CTX
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._shutdown_pool(self._pool, kill=False)
            self._pool = None
            self._pool_workers = 0
            self._pool_plan = None
        if _WORKER_CTX is self:
            _WORKER_CTX = None

    def __enter__(self) -> "EvalContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("EvalContext is closed")

    def _kernel_fingerprint(self, include_sites: bool) -> str:
        fp = self._fingerprints.get(include_sites)
        if fp is None:
            fp = module_fingerprint(self.kernel, include_sites=include_sites)
            self._fingerprints[include_sites] = fp
        return fp

    # -- profiles -----------------------------------------------------------

    @staticmethod
    def _workload(workload_name: str):
        if workload_name == "lmbench":
            return lmbench_workload()
        if workload_name == "apache":
            return apachebench_workload()
        raise ValueError(f"unknown workload {workload_name!r}")

    def profile(self, workload_name: str = "lmbench") -> EdgeProfile:
        cached = self._profiles.get(workload_name)
        if cached is not None:
            return cached
        self._check_open()
        s = self.settings
        disk_key = None
        if self.cache is not None:
            # Profiles store raw site ids, so the key must be sensitive to
            # the exact id assignment (include_sites=True): a cached
            # profile replayed against a kernel with shifted ids would
            # silently mis-attribute every edge.
            disk_key = cache_key(
                "profile",
                ENGINE_VERSION,
                s.engine,
                self._kernel_fingerprint(include_sites=True),
                workload_name,
                s.profile_iterations,
                s.profile_ops_scale,
                s.seed,
            )
            entry = self.cache.get("profile", disk_key)
            if entry is not None:
                profile = EdgeProfile.from_dict(entry)
                self._profiles[workload_name] = profile
                return profile
        profile = self.pipeline.profile(
            self._workload(workload_name),
            iterations=s.profile_iterations,
            ops_scale=s.profile_ops_scale,
            seed=s.seed,
            engine=s.engine,
        )
        if self.cache is not None and disk_key is not None:
            self.cache.put("profile", disk_key, profile.to_dict())
        self._profiles[workload_name] = profile
        return profile

    # -- variants -------------------------------------------------------------

    def variant(
        self, config: PibeConfig, workload_name: str = "lmbench"
    ) -> BuildResult:
        key = f"{config.label()}@{workload_name if config.optimized else '-'}"
        cached = self._variants.get(key)
        if cached is not None:
            return cached
        profile = self.profile(workload_name) if config.optimized else None
        build = self.pipeline.build_variant(config, profile)
        self._variants[key] = build
        return build

    def prewarm_prefixes(
        self,
        configs: Sequence[PibeConfig],
        workload_name: str = "lmbench",
        jobs: Optional[int] = None,
    ) -> int:
        """Build the distinct cold optimized prefixes of ``configs`` in
        parallel, ahead of measurement.

        A sweep grid's configs collapse to a handful of
        :class:`~repro.core.pipeline.PrefixKey` values (defense stamps
        share prefixes), and each cold prefix is an independent build —
        so workers fan them out and hand results back through the disk
        cache's ``"prefix"`` kind, where the serial measurement path
        loads them as disk hits. Budget ladders sharing one decision
        basis (same profile, same jump-table legality) are sliced
        contiguously so a single worker derives the whole ladder from
        one basis instead of each worker rebuilding it.

        Returns the number of prefixes dispatched. Requires the disk
        cache (it is the hand-back channel) and ``jobs > 1``; otherwise
        a no-op — prefixes then build lazily inline, exactly as before.
        Worker failures are absorbed: an unwarmed prefix just builds
        inline later.
        """
        global _WORKER_CTX
        self._check_open()
        jobs = self.settings.jobs if jobs is None else jobs
        if self.cache is None or jobs <= 1:
            return 0
        from repro.core.pipeline import PrefixKey

        # Materialize the profile before workers fork so they inherit it.
        profile = self.profile(workload_name)
        seen = set()
        cold: Dict[bool, List[Tuple[PrefixKey, PibeConfig]]] = {}
        for config in configs:
            if not config.optimized:
                continue
            key = PrefixKey.from_config(config)
            if key in seen:
                continue
            seen.add(key)
            if self.pipeline.prefix_state(config, profile) != "cold":
                continue
            cold.setdefault(key.allow_jump_tables, []).append((key, config))
        if not cold:
            return 0
        # One slice = one worker's run up a budget ladder, grouped by
        # decision-basis axis (jump-table legality). Apply cost climbs
        # steeply with budget (a budget's decisions cover the profile
        # tail), so budgets are dealt longest-processing-time: highest
        # cost first, each onto the lightest slice — the top budget gets
        # a slice to itself instead of dragging a ladder behind it.
        def ladder_key(kc):
            return (
                kc[0].icp_budget if kc[0].icp_budget is not None else -1.0,
                kc[0].inline_budget
                if kc[0].inline_budget is not None
                else -1.0,
                kc[0].lax_heuristics,
            )

        def cost(kc):
            budget = max(ladder_key(kc)[0], ladder_key(kc)[1], 0.0)
            return 1.0 + 1.0 / max(1e-9, 1.0 - min(budget, 1.0))

        slices: List[Tuple[PibeConfig, ...]] = []
        per_group = max(1, jobs // len(cold))
        for axis in sorted(cold):
            group = sorted(cold[axis], key=ladder_key, reverse=True)
            bins: List[List[Tuple[Any, PibeConfig]]] = [
                [] for _ in range(min(per_group, len(group)))
            ]
            loads = [0.0] * len(bins)
            for kc in group:
                lightest = loads.index(min(loads))
                bins[lightest].append(kc)
                loads[lightest] += cost(kc)
            slices.extend(
                tuple(config for _, config in sorted(b, key=ladder_key))
                for b in bins
            )
        plan = faults.active_plan()
        _WORKER_CTX = self
        pool = self._ensure_pool(min(len(slices), max(jobs, 1)), plan)
        futures = [
            pool.submit(_prewarm_prefix_cell, (chunk, workload_name))
            for chunk in slices
        ]
        warmed = 0
        broken = False
        for fut in futures:
            try:
                warmed += fut.result()
            except BrokenExecutor:
                broken = True
            except Exception:  # noqa: BLE001 — cold build happens inline
                pass
        if broken:
            self._replace_pool(plan, kill=True)
        return warmed

    # -- lint ---------------------------------------------------------------

    def lint(
        self,
        config: PibeConfig,
        workload_name: str = "lmbench",
        rules: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
    ):
        """Incrementally lint a built variant, sharding cache misses over
        the persistent worker pool.

        Reports are memoized like measurements, and the incremental
        engine's disk cache (shared ``"lint"`` kind) makes even the
        first lint of a *new* variant warm when it shares an optimized
        prefix with an already-linted one — sweep variants differ only
        in defense stamps, and the function-chunk keys are
        content-addressed.
        """
        self._check_open()
        rule_key = ",".join(rules) if rules else "*"
        workload = workload_name if config.optimized else "-"
        key = f"{config.label()}@{workload}|{rule_key}"
        cached = self._lints.get(key)
        if cached is not None:
            return cached
        from repro.static.incremental import lint_module

        build = self.variant(config, workload_name)
        profile = self.profile(workload_name) if config.optimized else None
        jobs = self.settings.jobs if jobs is None else jobs
        map_shards = (
            self._lint_shards_mapper(config, workload_name)
            if jobs > 1
            else None
        )
        report = lint_module(
            build.module,
            rules=list(rules) if rules else None,
            profile=profile,
            cache=self.cache,
            jobs=max(jobs, 1),
            map_shards=map_shards,
        )
        self._lints[key] = report
        return report

    def _lint_shards_mapper(self, config: PibeConfig, workload_name: str):
        """Shard executor over the persistent pool.

        Workers resolve the variant through their own (fork-inherited or
        rebuilt) context — deterministic build ids make the module, and
        therefore every site id in the diagnostics, bit-identical to the
        parent's.  A shard whose future is lost comes back ``None`` and
        the incremental engine recomputes it inline; a broken pool is
        replaced so later batches start healthy.
        """

        def mapper(shards):
            global _WORKER_CTX
            if config.optimized:
                # Materialize profile + variant before workers fork so
                # they inherit the memoized module instead of rebuilding.
                self.profile(workload_name)
            self.variant(config, workload_name)
            plan = faults.active_plan()
            _WORKER_CTX = self
            pool = self._ensure_pool(min(len(shards), self._max_jobs()), plan)
            futures = [
                pool.submit(
                    _lint_shard_cell, (config, workload_name, shard)
                )
                for shard in shards
            ]
            results = []
            broken = False
            for fut in futures:
                try:
                    results.append(fut.result())
                except BrokenExecutor:
                    results.append(None)
                    broken = True
                except Exception:  # noqa: BLE001 — recomputed inline
                    results.append(None)
            if broken:
                self._replace_pool(plan, kill=True)
            return results

        return mapper

    def _max_jobs(self) -> int:
        return max(self.settings.jobs, 1)

    # -- measurements -------------------------------------------------------------

    def _measure_key(
        self,
        config: PibeConfig,
        benches: Tuple[Benchmark, ...],
        workload_name: str,
    ) -> str:
        bench_key = ",".join(b.name for b in benches)
        workload = workload_name if config.optimized else "-"
        return f"{config.label()}@{workload}|{bench_key}"

    def _measure_disk_key(
        self,
        config: PibeConfig,
        benches: Tuple[Benchmark, ...],
        workload_name: str,
    ) -> Optional[str]:
        if self.cache is None:
            return None
        s = self.settings
        # Measurements depend on module *structure*, not on the site-id
        # values themselves (ids are consistent within one build), so the
        # shape-only fingerprint lets runs in fresh processes share
        # entries. The training profile's knobs matter only when the
        # config actually consumes a profile.
        profile_part = (
            (workload_name, s.profile_iterations, s.profile_ops_scale)
            if config.optimized
            else None
        )
        return cache_key(
            "measure",
            ENGINE_VERSION,
            s.engine,
            self._kernel_fingerprint(include_sites=False),
            config,
            profile_part,
            benches,
            s.measure_ops_scale,
            s.seed,
        )

    def cached_measurement(
        self,
        config: PibeConfig,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
    ) -> Optional[Dict[str, float]]:
        """A previously computed measurement, or ``None`` without
        evaluating anything.

        Checks the in-memory memo first, then the disk cache (promoting a
        disk hit into memory). This is the cache-aware routing seam the
        serve layer uses: requests answerable here are served inline on
        the event loop, everything else is dispatched to the worker pool.
        """
        benches = tuple(benches)
        key = self._measure_key(config, benches, workload_name)
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        disk_key = self._measure_disk_key(config, benches, workload_name)
        if disk_key is not None:
            entry = self.cache.get("measure", disk_key)
            if entry is not None:
                results = {name: float(v) for name, v in entry.items()}
                self._measurements[key] = results
                return results
        return None

    def measure(
        self,
        config: PibeConfig,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
    ) -> Dict[str, float]:
        """Per-benchmark cycles/op for a configuration (cached)."""
        benches = tuple(benches)
        key = self._measure_key(config, benches, workload_name)
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        self._check_open()
        faults.fire("measure.cell", cell_label(config, workload_name))
        disk_key = self._measure_disk_key(config, benches, workload_name)
        if disk_key is not None:
            entry = self.cache.get("measure", disk_key)
            if entry is not None:
                results = {name: float(v) for name, v in entry.items()}
                self._measurements[key] = results
                return results
        build = self.variant(config, workload_name)
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * self.settings.measure_ops_scale))
            result = measure_benchmark(
                build.module,
                bench,
                ops=ops,
                seed=self.settings.seed,
                engine=self.settings.engine,
            )
            results[bench.name] = result.cycles_per_op
        if disk_key is not None:
            self.cache.put("measure", disk_key, results)
        self._measurements[key] = results
        return results

    def measure_many(
        self,
        configs: Sequence[PibeConfig],
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
        jobs: Optional[int] = None,
        max_retries: Optional[int] = None,
        cell_timeout: Optional[float] = None,
    ) -> MeasureManyResult:
        """Measure every configuration; results in input order.

        With ``jobs > 1`` the uncached cells fan out over worker
        processes, one future per cell. Each worker owns a full
        :class:`EvalContext` (on platforms that fork, inherited from this
        one with its warm profile; elsewhere rebuilt from ``settings``),
        and the merge is by input position, so the output is identical to
        the sequential path regardless of which worker finishes first.

        Failure semantics: a cell whose worker crashes, hangs past
        ``cell_timeout`` or raises is resubmitted up to ``max_retries``
        times with exponential backoff (crashes and hangs cost a pool
        rebuild; results completed by other workers are kept, and cells
        already persisted to the disk cache are salvaged on retry). A
        cell that exhausts its retries runs once more inline; if even
        that fails, its slot in the returned list is ``None`` and the
        attached :attr:`MeasureManyResult.failure_report` records the
        cell, so callers render a gap instead of losing the table.
        """
        configs = list(configs)
        benches = tuple(benches)
        s = self.settings
        if any(
            self._measure_key(c, benches, workload_name)
            not in self._measurements
            for c in configs
        ):
            self._check_open()
        jobs = s.jobs if jobs is None else jobs
        max_retries = s.max_retries if max_retries is None else max_retries
        cell_timeout = s.cell_timeout if cell_timeout is None else cell_timeout
        report = FailureReport(total_cells=len(configs))
        keys = [self._measure_key(c, benches, workload_name) for c in configs]

        pending = [i for i in range(len(configs)) if keys[i] not in self._measurements]
        if pending and jobs > 1 and len(pending) > 1:
            self._measure_cells_parallel(
                pending,
                configs,
                benches,
                workload_name,
                jobs,
                max_retries,
                cell_timeout,
                report,
            )
        elif pending:
            for i in pending:
                self._measure_cell_salvaged(
                    i, configs[i], benches, workload_name, max_retries, report
                )

        results = MeasureManyResult(
            self._measurements.get(keys[i]) for i in range(len(configs))
        )
        results.failure_report = report
        return results

    def _measure_cell_salvaged(
        self,
        index: int,
        config: PibeConfig,
        benches: Tuple[Benchmark, ...],
        workload_name: str,
        max_retries: int,
        report: FailureReport,
        prior_attempts: int = 0,
        prior_kind: Optional[str] = None,
    ) -> Optional[Dict[str, float]]:
        """Measure one cell inline, absorbing failures into ``report``.

        Used both for the sequential path (with its own retry budget) and
        as the degradation target after the pool gave up on a cell
        (``max_retries=0`` there: one last inline chance, which also
        salvages any result a worker persisted to the disk cache before
        dying).
        """
        label = cell_label(config, workload_name)
        attempts = prior_attempts
        while True:
            attempts += 1
            try:
                values = self.measure(config, benches, workload_name)
            except Exception as exc:  # noqa: BLE001 — absorbed into report
                if attempts - prior_attempts > max_retries:
                    report.record(
                        index,
                        label,
                        prior_kind or KIND_EXCEPTION,
                        attempts,
                        f"{type(exc).__name__}: {exc}",
                    )
                    return None
                report.retries += 1
                time.sleep(
                    self.settings.retry_backoff
                    * 2 ** (attempts - prior_attempts - 1)
                )
            else:
                if prior_attempts:
                    report.degraded.append(label)
                return values

    def _new_pool(
        self, workers: int, plan: Optional["faults.FaultPlan"]
    ) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.settings, plan),
        )

    def _ensure_pool(
        self, workers: int, plan: Optional["faults.FaultPlan"]
    ) -> ProcessPoolExecutor:
        """The persistent pool, (re)built when the shape no longer fits.

        A pool sized for an earlier, larger batch is reused as-is (idle
        workers are cheap; forking them again is not). A smaller one, or
        one initialized under a different fault plan, is replaced.
        """
        if self._pool is not None and (
            self._pool_workers < workers or self._pool_plan != plan
        ):
            self._shutdown_pool(self._pool, kill=False)
            self._pool = None
        if self._pool is None:
            self._pool = self._new_pool(max(workers, 1), plan)
            self._pool_workers = max(workers, 1)
            self._pool_plan = plan
        return self._pool

    def _replace_pool(
        self, plan: Optional["faults.FaultPlan"], kill: bool
    ) -> ProcessPoolExecutor:
        """Tear down a crashed/hung pool and stand up a fresh one."""
        if self._pool is not None:
            self._shutdown_pool(self._pool, kill=kill)
        self._pool = self._new_pool(self._pool_workers, plan)
        self._pool_plan = plan
        return self._pool

    @staticmethod
    def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
        """Tear down a pool; ``kill`` terminates workers (hang recovery)."""
        if kill:
            # A hung worker never drains its queue, so shutdown alone
            # would block forever; SIGTERM the processes first. The
            # executor's internal machinery reaps them.
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 — already-dead worker
                    pass
        pool.shutdown(wait=not kill, cancel_futures=True)

    def _measure_cells_parallel(
        self,
        pending: List[int],
        configs: List[PibeConfig],
        benches: Tuple[Benchmark, ...],
        workload_name: str,
        jobs: int,
        max_retries: int,
        cell_timeout: Optional[float],
        report: FailureReport,
    ) -> None:
        """Fan pending cells out over the persistent pool, recovering per
        cell. The pool outlives this call — the next batch reuses its
        warm workers — and is only replaced here after a crash or hang
        poisons it."""
        global _WORKER_CTX
        if any(configs[i].optimized for i in pending):
            # Profile once up front so every forked worker inherits it
            # instead of redoing the training run.
            self.profile(workload_name)
        plan = faults.active_plan()
        workers = min(jobs, len(pending))
        attempts: Dict[int, int] = {i: 0 for i in pending}
        last_kind: Dict[int, str] = {}
        degraded: List[int] = []
        # Workers fork lazily at submit time, so the context must stay
        # visible for the pool's whole lifetime (later batches may still
        # grow the pool); close() clears it.
        _WORKER_CTX = self
        pool = self._ensure_pool(workers, plan)
        futures: Dict[Future, int] = {}
        deadlines: Dict[int, float] = {}
        try:

            def submit(index: int) -> None:
                fut = pool.submit(
                    _measure_cell, (configs[index], benches, workload_name)
                )
                futures[fut] = index
                if cell_timeout is not None:
                    deadlines[index] = time.monotonic() + cell_timeout

            def recycle(index: int, kind: str) -> None:
                """Count a failed attempt; resubmit or mark for inline."""
                attempts[index] += 1
                last_kind[index] = kind
                if attempts[index] > max_retries:
                    degraded.append(index)
                    return
                report.retries += 1
                time.sleep(
                    self.settings.retry_backoff * 2 ** (attempts[index] - 1)
                )
                submit(index)

            for i in pending:
                submit(i)
            while futures:
                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.monotonic())
                done, _ = wait(
                    set(futures), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # A deadline expired with nothing finishing: at least
                    # one worker is hung. Kill the pool (the only way to
                    # reclaim its slot) and resubmit the victims —
                    # counting the attempt only against timed-out cells.
                    now = time.monotonic()
                    expired = {
                        i for i, dl in deadlines.items() if dl <= now
                    }
                    victims = list(futures.values())
                    pool = self._replace_pool(plan, kill=True)
                    futures.clear()
                    deadlines.clear()
                    for i in victims:
                        if i in expired:
                            recycle(i, KIND_TIMEOUT)
                        else:
                            submit(i)
                    continue
                broken = False
                retry: List[Tuple[int, str]] = []
                for fut in done:
                    i = futures.pop(fut)
                    deadlines.pop(i, None)
                    try:
                        values = fut.result()
                    except BrokenExecutor:
                        broken = True
                        retry.append((i, KIND_CRASH))
                    except Exception:  # noqa: BLE001
                        retry.append((i, KIND_EXCEPTION))
                    else:
                        self._measurements[
                            self._measure_key(configs[i], benches, workload_name)
                        ] = values
                if broken:
                    # One dead worker poisons the whole executor: every
                    # in-flight future is lost. Rebuild once and resubmit
                    # the collateral victims along with the casualties.
                    for fut, i in list(futures.items()):
                        retry.append((i, KIND_CRASH))
                    futures.clear()
                    deadlines.clear()
                    pool = self._replace_pool(plan, kill=True)
                for i, kind in retry:
                    recycle(i, kind)
        except BaseException:
            # Leave no half-drained pool behind an exception escaping the
            # recovery machinery itself (KeyboardInterrupt, bugs): the
            # persistent pool only survives a *clean* batch.
            if self._pool is not None:
                self._shutdown_pool(self._pool, kill=True)
                self._pool = None
            raise
        for i in degraded:
            # Last resort: run the cell inline (one attempt). A result a
            # worker cached to disk before dying is salvaged here for free.
            self._measure_cell_salvaged(
                i,
                configs[i],
                benches,
                workload_name,
                0,
                report,
                prior_attempts=attempts[i],
                prior_kind=last_kind.get(i),
            )

    def measure_jumpswitches(
        self,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        params: JumpSwitchParams = JumpSwitchParams(),
    ) -> Dict[str, float]:
        """JumpSwitches baseline: retpolines image, runtime promotion."""
        benches = tuple(benches)
        bench_key = ",".join(b.name for b in benches)
        key = f"jumpswitches|{bench_key}"
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        s = self.settings
        disk_key = None
        if self.cache is not None:
            disk_key = cache_key(
                "measure",
                ENGINE_VERSION,
                s.engine,
                self._kernel_fingerprint(include_sites=False),
                "jumpswitches",
                params,
                benches,
                s.measure_ops_scale,
                s.seed,
            )
            entry = self.cache.get("measure", disk_key)
            if entry is not None:
                results = {name: float(v) for name, v in entry.items()}
                self._measurements[key] = results
                return results
        build = self.variant(
            PibeConfig.hardened(DefenseConfig.retpolines_only())
        )
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * s.measure_ops_scale))
            timing = JumpSwitchTimingModel(build.module, params=params)
            interpreter = create_interpreter(
                build.module, [timing], seed=s.seed, engine=s.engine
            )
            bench.run(interpreter, ops=ops)
            results[bench.name] = timing.cycles / ops
        if self.cache is not None and disk_key is not None:
            self.cache.put("measure", disk_key, results)
        self._measurements[key] = results
        return results

    # -- common baselines ---------------------------------------------------------

    def lto_measurements(
        self, benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS)
    ) -> Dict[str, float]:
        return self.measure(PibeConfig.lto_baseline(), benches)


def cell_label(config: PibeConfig, workload_name: str) -> str:
    """The label a measurement cell carries at the ``measure.cell``
    injection point and in :class:`FailureReport` entries."""
    return f"{config.label()}@{workload_name}"


# -- worker-process plumbing for measure_many --------------------------------
#
# On fork platforms the child inherits _WORKER_CTX (the parent context with
# its warm kernel/profile caches) and the initializer is a no-op; under
# spawn the module is re-imported, _WORKER_CTX is None, and the initializer
# rebuilds an equivalent context from the (picklable) settings. The fault
# plan rides along explicitly for the same reason: module globals don't
# survive spawn.

_WORKER_CTX: Optional[EvalContext] = None


def _init_worker(
    settings: EvalSettings, plan: Optional[faults.FaultPlan] = None
) -> None:
    global _WORKER_CTX
    faults.mark_worker()
    if plan is not None:
        # Shares the parent's activation state_dir, so "times: 1" means
        # once across the whole pool, not once per worker.
        faults.install(plan)
    if _WORKER_CTX is None:
        _WORKER_CTX = EvalContext(settings)


def _measure_cell(
    cell: Tuple[PibeConfig, Tuple[Benchmark, ...], str]
) -> Dict[str, float]:
    config, benches, workload_name = cell
    assert _WORKER_CTX is not None, "worker initialized without a context"
    return _WORKER_CTX.measure(config, benches, workload_name)


def _prewarm_prefix_cell(cell: Tuple[Tuple[PibeConfig, ...], str]) -> int:
    """Build one contiguous slice of cold prefixes in a worker.

    The worker's pipeline persists each prefix to the shared disk cache;
    the parent (and its other workers) then load them as disk hits.
    Slices walk a budget ladder in order, so the worker's incremental
    engine derives each prefix from the decision basis it just built.
    """
    configs, workload_name = cell
    assert _WORKER_CTX is not None, "worker initialized without a context"
    profile = _WORKER_CTX.profile(workload_name)
    for config in configs:
        _WORKER_CTX.pipeline.warm_prefix(config, profile)
    return len(configs)


def _lint_shard_cell(cell):
    """Run one lint shard (rule-names × function-names) in a worker.

    The worker resolves the variant through its own context: forked
    workers inherit the parent's memoized build outright, spawned ones
    rebuild it bit-identically (deterministic build ids), so diagnostics
    — including site ids — match the parent's.
    """
    config, workload_name, shard = cell
    assert _WORKER_CTX is not None, "worker initialized without a context"
    from repro.static.incremental import run_shard

    build = _WORKER_CTX.variant(config, workload_name)
    profile = (
        _WORKER_CTX.profile(workload_name) if config.optimized else None
    )
    rule_names, func_names = shard
    return run_shard(build.module, profile, rule_names, func_names)


@functools.lru_cache(maxsize=2)
def get_context(fast: bool = False) -> EvalContext:
    """Process-wide shared context (benchmarks in one pytest session reuse
    the same kernel/profile/measurement caches)."""
    return EvalContext(EvalSettings.fast() if fast else EvalSettings())
