"""Evaluation harness: builds, profiles and measures kernel variants with
caching, so the per-table generators (and the pytest benchmarks wrapping
them) share one kernel, one profiling run and one measurement per
configuration.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.baselines.jumpswitches import JumpSwitchParams, JumpSwitchTimingModel
from repro.core.config import PibeConfig
from repro.core.pipeline import BuildResult, PibePipeline
from repro.engine.interpreter import Interpreter
from repro.hardening.defenses import DefenseConfig
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.apachebench import apachebench_workload
from repro.workloads.base import Benchmark, measure_benchmark
from repro.workloads.lmbench import LMBENCH_BENCHMARKS, lmbench_workload


@dataclass(frozen=True)
class EvalSettings:
    """Scale knobs shared by every experiment."""

    spec: KernelSpec = DEFAULT_SPEC
    profile_iterations: int = 3
    profile_ops_scale: float = 1.0
    measure_ops_scale: float = 0.5
    seed: int = 7

    @classmethod
    def fast(cls) -> "EvalSettings":
        """Reduced scale for tests."""
        return cls(
            profile_iterations=1,
            profile_ops_scale=0.3,
            measure_ops_scale=0.15,
        )


class EvalContext:
    """Caches the kernel, profiles, built variants and measurements."""

    def __init__(self, settings: Optional[EvalSettings] = None) -> None:
        self.settings = settings or EvalSettings()
        self.kernel = build_kernel(self.settings.spec)
        self.pipeline = PibePipeline(self.kernel)
        self._profiles: Dict[str, EdgeProfile] = {}
        self._variants: Dict[str, BuildResult] = {}
        self._measurements: Dict[str, Dict[str, float]] = {}

    # -- profiles -----------------------------------------------------------

    def profile(self, workload_name: str = "lmbench") -> EdgeProfile:
        cached = self._profiles.get(workload_name)
        if cached is not None:
            return cached
        if workload_name == "lmbench":
            workload = lmbench_workload()
        elif workload_name == "apache":
            workload = apachebench_workload()
        else:
            raise ValueError(f"unknown workload {workload_name!r}")
        profile = self.pipeline.profile(
            workload,
            iterations=self.settings.profile_iterations,
            ops_scale=self.settings.profile_ops_scale,
            seed=self.settings.seed,
        )
        self._profiles[workload_name] = profile
        return profile

    # -- variants -------------------------------------------------------------

    def variant(
        self, config: PibeConfig, workload_name: str = "lmbench"
    ) -> BuildResult:
        key = f"{config.label()}@{workload_name if config.optimized else '-'}"
        cached = self._variants.get(key)
        if cached is not None:
            return cached
        profile = self.profile(workload_name) if config.optimized else None
        build = self.pipeline.build_variant(config, profile)
        self._variants[key] = build
        return build

    # -- measurements -------------------------------------------------------------

    def measure(
        self,
        config: PibeConfig,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        workload_name: str = "lmbench",
    ) -> Dict[str, float]:
        """Per-benchmark cycles/op for a configuration (cached)."""
        bench_key = ",".join(b.name for b in benches)
        key = f"{config.label()}@{workload_name if config.optimized else '-'}|{bench_key}"
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        build = self.variant(config, workload_name)
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * self.settings.measure_ops_scale))
            result = measure_benchmark(
                build.module, bench, ops=ops, seed=self.settings.seed
            )
            results[bench.name] = result.cycles_per_op
        self._measurements[key] = results
        return results

    def measure_jumpswitches(
        self,
        benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS),
        params: JumpSwitchParams = JumpSwitchParams(),
    ) -> Dict[str, float]:
        """JumpSwitches baseline: retpolines image, runtime promotion."""
        bench_key = ",".join(b.name for b in benches)
        key = f"jumpswitches|{bench_key}"
        cached = self._measurements.get(key)
        if cached is not None:
            return cached
        build = self.variant(
            PibeConfig.hardened(DefenseConfig.retpolines_only())
        )
        results: Dict[str, float] = {}
        for bench in benches:
            ops = max(1, int(bench.default_ops * self.settings.measure_ops_scale))
            timing = JumpSwitchTimingModel(build.module, params=params)
            interpreter = Interpreter(
                build.module, [timing], seed=self.settings.seed
            )
            bench.run(interpreter, ops=ops)
            results[bench.name] = timing.cycles / ops
        self._measurements[key] = results
        return results

    # -- common baselines ---------------------------------------------------------

    def lto_measurements(
        self, benches: Sequence[Benchmark] = tuple(LMBENCH_BENCHMARKS)
    ) -> Dict[str, float]:
        return self.measure(PibeConfig.lto_baseline(), benches)


@functools.lru_cache(maxsize=2)
def get_context(fast: bool = False) -> EvalContext:
    """Process-wide shared context (benchmarks in one pytest session reuse
    the same kernel/profile/measurement caches)."""
    return EvalContext(EvalSettings.fast() if fast else EvalSettings())
