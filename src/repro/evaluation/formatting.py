"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A titled grid of cells with optional footnotes."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines = [self.title, "=" * len(self.title), fmt(self.headers)]
        lines.append("-" * len(lines[-1]))
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def fmt_budget(budget: float) -> str:
    """Format an optimization budget: 0.99 -> '99%', 0.999999 -> '99.9999%'."""
    text = f"{budget * 100:.6f}".rstrip("0").rstrip(".")
    return text + "%"


def pct(value: float, digits: int = 1, signed: bool = False) -> str:
    """Format a fraction as a percentage cell."""
    sign = "+" if signed and value > 0 else ""
    return f"{sign}{value * 100:.{digits}f}%"


def us(value_cycles_per_op: float, clock_hz: float = 3.7e9) -> str:
    """Format cycles/op as microseconds at the nominal clock."""
    return f"{value_cycles_per_op / clock_hz * 1e6:.3f}"


def ticks(value: float) -> str:
    """Format a cycle count as a whole-tick cell (Table 1 style)."""
    return f"{value:.0f}"
