"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from decimal import Decimal
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Table:
    """A titled grid of cells with optional footnotes."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def to_text(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines = [self.title, "=" * len(self.title), fmt(self.headers)]
        lines.append("-" * len(lines[-1]))
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"* {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (pipe table + notes)."""

        def escape(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(escape(h) for h in self.headers) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(escape(c) for c in row) + " |")
        if self.notes:
            lines.append("")
            lines.extend(f"*{note}*" for note in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def fmt_budget(budget: float) -> str:
    """Format an optimization budget: 0.99 -> '99%', 0.999999 -> '99.9999%'.

    Collision-safe: distinct float inputs always render to distinct
    labels. The old ``{:.6f}``-and-strip formatting silently merged
    budgets differing past the sixth percent digit — a float-artifact
    grid point like ``0.99999999999`` and a genuine ``0.999999999990001``
    both became the same label, so dense sweep grids (and their CSV rows,
    which are keyed by label) could collide. Shifting the decimal point
    on ``repr(budget)`` with exact :class:`~decimal.Decimal` arithmetic
    keeps the shortest-round-trip property of ``repr``: the label is the
    exact percentage of the shortest decimal that parses back to
    ``budget``, so label equality implies float equality.
    """
    text = format(Decimal(repr(budget)) * 100, "f")
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text + "%"


def pct(value: float, digits: int = 1, signed: bool = False) -> str:
    """Format a fraction as a percentage cell."""
    sign = "+" if signed and value > 0 else ""
    return f"{sign}{value * 100:.{digits}f}%"


def us(value_cycles_per_op: float, clock_hz: float = 3.7e9) -> str:
    """Format cycles/op as microseconds at the nominal clock."""
    return f"{value_cycles_per_op / clock_hz * 1e6:.3f}"


def ticks(value: float) -> str:
    """Format a cycle count as a whole-tick cell (Table 1 style)."""
    return f"{value:.0f}"
