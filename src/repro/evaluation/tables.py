"""Generators for every table and figure in the paper's evaluation.

Each ``tableN`` function runs the corresponding experiment on an
:class:`~repro.evaluation.harness.EvalContext` and returns a rendered
:class:`~repro.evaluation.formatting.Table` plus the raw data the tests
assert on. Paper reference values appear in the table notes so printed
output is self-describing (paper-vs-measured also lands in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.gadgets import (
    CandidateStats,
    EliminationStats,
    ForwardEdgeCensus,
    candidate_stats,
    elimination_stats,
    forward_edge_census,
    target_count_distribution,
)
from repro.analysis.robustness import workload_overlap
from repro.analysis.sizes import SizeReport, size_report
from repro.core.config import PibeConfig
from repro.core.report import build_overhead_report, geomean_overhead
from repro.evaluation.formatting import Table, fmt_budget, pct, ticks, us
from repro.evaluation.harness import EvalContext
from repro.hardening.defenses import DefenseConfig, NonTransientDefense
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.passes.icp import ICPReport
from repro.passes.inliner import InlineReport, PibeInliner
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.lmbench import LMBENCH_BENCHMARKS, TABLE3_BENCHMARKS
from repro.workloads.macro import ALL_MACROBENCHMARKS, measure_throughput
from repro.workloads.microbench import CALL_KINDS, measure_ticks
from repro.workloads.spec import geomean_slowdown, measure_spec_slowdown

#: Defense configurations in Table 1 row order.
TABLE1_CONFIGS: List[Tuple[str, DefenseConfig]] = [
    ("uninstrumented", DefenseConfig.none()),
    (
        "LLVM-CFI",
        DefenseConfig(nontransient=frozenset({NonTransientDefense.LLVM_CFI})),
    ),
    (
        "stackprotector",
        DefenseConfig(
            nontransient=frozenset({NonTransientDefense.STACKPROTECTOR})
        ),
    ),
    (
        "safestack",
        DefenseConfig(nontransient=frozenset({NonTransientDefense.SAFESTACK})),
    ),
    ("LVI-CFI", DefenseConfig.lvi_only()),
    ("retpolines", DefenseConfig.retpolines_only()),
    (
        "retpolines + LVI-CFI",
        DefenseConfig(retpolines=True, lvi_cfi=True),
    ),
    ("return retpolines", DefenseConfig.ret_retpolines_only()),
    ("all defenses", DefenseConfig.all_defenses()),
]

#: Optimization budgets swept by the census tables (paper Tables 8-11).
CENSUS_BUDGETS = (0.99, 0.999, 0.999999)


# ---------------------------------------------------------------------------
# Table 1 — per-branch defense costs and SPEC-like slowdown
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    table: Table
    ticks: Dict[str, Dict[str, float]]
    spec_slowdowns: Dict[str, float]


def table1(iterations: int = 1000, spec_iterations: int = 40) -> Table1Result:
    """Overhead of control-flow hijacking mitigations in clock ticks per
    call kind, plus geometric-mean slowdown on the SPEC-like suite."""
    all_ticks: Dict[str, Dict[str, float]] = {}
    slowdowns: Dict[str, float] = {}
    table = Table(
        "Table 1: per-branch overhead (ticks) and SPEC-like slowdown",
        ["defense", "dcall", "icall", "vcall", "spec %"],
        notes=[
            "paper: LVI-CFI 11/20/23/29.4%, retpolines 1/21/21/16.1%, "
            "retpolines+LVI 14/53/54/44.3%, return retpolines "
            "16/16/16/23.2%, all 32/73/71/62.0%",
        ],
    )
    for label, config in TABLE1_CONFIGS:
        per_kind = {
            kind: measure_ticks(config, kind, iterations=iterations)
            for kind in CALL_KINDS
        }
        all_ticks[label] = per_kind
        slow = geomean_slowdown(
            measure_spec_slowdown(config, iterations=spec_iterations)
        )
        slowdowns[label] = slow
        table.add_row(
            label,
            ticks(per_kind["dcall"]),
            ticks(per_kind["icall"]),
            ticks(per_kind["vcall"]),
            pct(slow),
        )
    return Table1Result(table, all_ticks, slowdowns)


# ---------------------------------------------------------------------------
# Table 2 — LTO vs PIBE (PGO-only) baselines
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    table: Table
    lto: Dict[str, float]
    pibe: Dict[str, float]
    geomean: float


def table2(ctx: EvalContext) -> Table2Result:
    """The two baselines: vanilla LTO latency vs the PGO-optimized kernel
    with no defenses (paper geomean: -6.6%)."""
    lto = ctx.lto_measurements()
    pibe = ctx.measure(PibeConfig.pibe_baseline())
    report = build_overhead_report("pibe-baseline", lto, pibe)
    table = Table(
        "Table 2: LTO baseline vs PIBE (PGO) baseline",
        ["test", "LTO (us)", "PIBE (us)", "overhead"],
        notes=["paper geomean: -6.6% (PGO speeds the kernel up)"],
    )
    for row in report.rows:
        table.add_row(
            row.benchmark,
            us(row.baseline_value),
            us(row.value),
            pct(row.overhead, signed=True),
        )
    table.add_row("geomean", "-", "-", pct(report.geomean, signed=True))
    return Table2Result(table, lto, pibe, report.geomean)


# ---------------------------------------------------------------------------
# Table 3 — retpolines vs JumpSwitches vs static ICP
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    table: Table
    geomeans: Dict[str, float]
    overheads: Dict[str, Dict[str, float]]


def table3(ctx: EvalContext) -> Table3Result:
    """Retpoline overheads: unoptimized vs JumpSwitches' runtime promotion
    vs PIBE's static ICP at two budgets (paper geomeans: 20.2%, 5.0%,
    3.9%, 1.3%)."""
    benches = TABLE3_BENCHMARKS
    lto = ctx.lto_measurements(benches)
    columns = {
        "retpolines": ctx.measure(
            PibeConfig.hardened(DefenseConfig.retpolines_only()), benches
        ),
        "jumpswitches": ctx.measure_jumpswitches(benches),
        "icp 99%": ctx.measure(
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=0.99
            ),
            benches,
        ),
        "icp 99.999%": ctx.measure(
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=0.99999
            ),
            benches,
        ),
    }
    overheads = {
        label: build_overhead_report(label, lto, values).overheads()
        for label, values in columns.items()
    }
    geomeans = {
        label: geomean_overhead(per_bench.values())
        for label, per_bench in overheads.items()
    }
    table = Table(
        "Table 3: retpolines overhead vs LTO baseline",
        ["test", "retpolines", "jumpswitches", "icp 99%", "icp 99.999%"],
        notes=["paper geomeans: 20.2% / 5.0% / 3.9% / 1.3%"],
    )
    for bench in benches:
        table.add_row(
            bench.name,
            *(pct(overheads[c][bench.name]) for c in columns),
        )
    table.add_row("geomean", *(pct(geomeans[c]) for c in columns))
    return Table3Result(table, geomeans, overheads)


# ---------------------------------------------------------------------------
# Table 4 — indirect-call target distribution
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    table: Table
    distribution: Dict[str, int]


def table4(ctx: EvalContext) -> Table4Result:
    """Number of profiled indirect calls per observed-target count (paper:
    517 / 109 / 34 / 23 / 6 / 12 / 22 — most sites have one target, with a
    heavy multi-target tail)."""
    distribution = target_count_distribution(ctx.profile("lmbench"))
    table = Table(
        "Table 4: indirect calls by number of runtime targets",
        ["targets"] + list(distribution.keys()),
        notes=["paper: 517, 109, 34, 23, 6, 12, 22"],
    )
    table.add_row("indirect calls", *(str(v) for v in distribution.values()))
    return Table4Result(table, distribution)


# ---------------------------------------------------------------------------
# Table 5 — comprehensive protection across budgets
# ---------------------------------------------------------------------------


def _table5_configs() -> List[Tuple[str, PibeConfig]]:
    all_def = DefenseConfig.all_defenses()
    return [
        ("no opt", PibeConfig.hardened(all_def)),
        ("+icp 99.999%", PibeConfig.hardened(all_def, icp_budget=0.99999)),
        (
            "+inl 99%",
            PibeConfig.hardened(
                all_def, icp_budget=0.99999, inline_budget=0.99
            ),
        ),
        (
            "+inl 99.9%",
            PibeConfig.hardened(
                all_def, icp_budget=0.99999, inline_budget=0.999
            ),
        ),
        (
            "+inl 99.9999%",
            PibeConfig.hardened(
                all_def, icp_budget=0.99999, inline_budget=0.999999
            ),
        ),
        ("lax heuristics", PibeConfig.lax(all_def)),
    ]


@dataclass
class Table5Result:
    table: Table
    geomeans: Dict[str, float]
    overheads: Dict[str, Dict[str, float]]


def table5(ctx: EvalContext) -> Table5Result:
    """All defenses enabled, across ICP/inlining budgets (paper geomeans:
    149.1 / 133.1 / 28.0 / 15.9 / 12.7 / 10.6%)."""
    lto = ctx.lto_measurements()
    overheads: Dict[str, Dict[str, float]] = {}
    geomeans: Dict[str, float] = {}
    labels = []
    for label, config in _table5_configs():
        measured = ctx.measure(config)
        report = build_overhead_report(label, lto, measured)
        overheads[label] = report.overheads()
        geomeans[label] = report.geomean
        labels.append(label)
    table = Table(
        "Table 5: overhead with all defenses enabled",
        ["test"] + labels,
        notes=["paper geomeans: 149.1 / 133.1 / 28.0 / 15.9 / 12.7 / 10.6%"],
    )
    for bench in LMBENCH_BENCHMARKS:
        table.add_row(
            bench.name, *(pct(overheads[c][bench.name]) for c in labels)
        )
    table.add_row("geomean", *(pct(geomeans[c]) for c in labels))
    return Table5Result(table, geomeans, overheads)


# ---------------------------------------------------------------------------
# Table 6 — per-defense geomean, LTO vs PIBE
# ---------------------------------------------------------------------------


@dataclass
class Table6Result:
    table: Table
    lto_geomeans: Dict[str, float]
    pibe_geomeans: Dict[str, float]


def table6(ctx: EvalContext) -> Table6Result:
    """Geomean overhead per defense, unoptimized vs PIBE's optimal
    configuration (paper: none -6.6, retpolines 20.2→1.3, return
    retpolines 63.4→3.7, LVI-CFI 61.9→1.8, all 149.1→10.6)."""
    lto = ctx.lto_measurements()

    def geo(config: PibeConfig) -> float:
        return build_overhead_report(
            config.label(), lto, ctx.measure(config)
        ).geomean

    rows = [
        ("None", None, PibeConfig.pibe_baseline()),
        (
            "Retpolines",
            PibeConfig.hardened(DefenseConfig.retpolines_only()),
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(), icp_budget=0.99999
            ),
        ),
        (
            "Return retpolines",
            PibeConfig.hardened(DefenseConfig.ret_retpolines_only()),
            PibeConfig.lax(DefenseConfig.ret_retpolines_only()),
        ),
        (
            "LVI-CFI",
            PibeConfig.hardened(DefenseConfig.lvi_only()),
            PibeConfig.lax(DefenseConfig.lvi_only()),
        ),
        (
            "All",
            PibeConfig.hardened(DefenseConfig.all_defenses()),
            PibeConfig.lax(DefenseConfig.all_defenses()),
        ),
    ]
    lto_geomeans: Dict[str, float] = {}
    pibe_geomeans: Dict[str, float] = {}
    table = Table(
        "Table 6: LMBench geomean overhead per defense",
        ["defense", "LTO", "PIBE"],
        notes=[
            "paper: None 0/-6.6, Retpolines 20.2/1.3, Return retpolines "
            "63.4/3.7, LVI-CFI 61.9/1.8, All 149.1/10.6",
        ],
    )
    for label, lto_config, pibe_config in rows:
        lto_geo = geo(lto_config) if lto_config is not None else 0.0
        pibe_geo = geo(pibe_config)
        lto_geomeans[label] = lto_geo
        pibe_geomeans[label] = pibe_geo
        table.add_row(label, pct(lto_geo), pct(pibe_geo))
    return Table6Result(table, lto_geomeans, pibe_geomeans)


# ---------------------------------------------------------------------------
# Table 7 — macrobenchmark throughput
# ---------------------------------------------------------------------------


@dataclass
class Table7Result:
    table: Table
    #: app -> config label -> (unoptimized degradation, PIBE degradation)
    degradations: Dict[str, Dict[str, Tuple[float, float]]]
    vanilla_throughput: Dict[str, float]


def table7(ctx: EvalContext, batches: int = 30) -> Table7Result:
    """Nginx/Apache/DBench throughput degradation per defense config,
    without and with PIBE's optimizations (paper Table 7)."""
    defense_rows: List[Tuple[str, DefenseConfig]] = [
        ("w/retpolines", DefenseConfig.retpolines_only()),
        ("w/ret-retpolines", DefenseConfig.ret_retpolines_only()),
        ("w/LVI-CFI", DefenseConfig.lvi_only()),
        ("w/all-defenses", DefenseConfig.all_defenses()),
    ]
    vanilla_build = ctx.variant(PibeConfig.lto_baseline())
    degradations: Dict[str, Dict[str, Tuple[float, float]]] = {}
    vanilla_throughput: Dict[str, float] = {}
    table = Table(
        "Table 7: throughput degradation (Nginx / Apache / DBench)",
        ["app", "config", "vanilla", "no opt", "PIBE"],
        notes=[
            "paper (all-defenses row): Nginx -51.7%/-6.0%, Apache "
            "-39.3%/-7.9%, DBench -45.6%/-6.7%",
        ],
    )
    for app in ALL_MACROBENCHMARKS:
        base = measure_throughput(
            vanilla_build.module,
            app,
            batches=batches,
            seed=ctx.settings.seed,
            engine=ctx.settings.engine,
        )
        vanilla_throughput[app.name] = base.throughput
        degradations[app.name] = {}
        for label, defenses in defense_rows:
            unopt_build = ctx.variant(PibeConfig.hardened(defenses))
            if defenses.ret_retpolines or defenses.lvi_cfi:
                pibe_config = PibeConfig.lax(defenses)
            else:
                pibe_config = PibeConfig.hardened(defenses, icp_budget=0.99999)
            pibe_build = ctx.variant(pibe_config)
            unopt = measure_throughput(
                unopt_build.module,
                app,
                batches=batches,
                seed=ctx.settings.seed,
                engine=ctx.settings.engine,
            )
            pibe = measure_throughput(
                pibe_build.module,
                app,
                batches=batches,
                seed=ctx.settings.seed,
                engine=ctx.settings.engine,
            )
            degradation = (
                unopt.degradation_vs(base),
                pibe.degradation_vs(base),
            )
            degradations[app.name][label] = degradation
            table.add_row(
                app.name,
                label,
                f"{base.throughput:,.0f} {app.unit}",
                pct(degradation[0], signed=True),
                pct(degradation[1], signed=True),
            )
    return Table7Result(table, degradations, vanilla_throughput)


# ---------------------------------------------------------------------------
# Tables 8-11 — elimination and protection censuses
# ---------------------------------------------------------------------------


def _census_config(budget: float) -> PibeConfig:
    return PibeConfig.hardened(
        DefenseConfig.all_defenses(), icp_budget=budget, inline_budget=budget
    )


def _census_reports(
    ctx: EvalContext, budget: float
) -> Tuple[ICPReport, InlineReport, Module]:
    build = ctx.variant(_census_config(budget))
    icp_report = build.reports["indirect-call-promotion"]
    inline_report = build.reports["pibe-inliner"]
    return icp_report, inline_report, build.module


@dataclass
class Table8Result:
    table: Table
    stats: Dict[float, EliminationStats]


def table8(ctx: EvalContext) -> Table8Result:
    """Indirect-branch gadgets eliminated per budget (paper Table 8)."""
    unopt = ctx.variant(PibeConfig.hardened(DefenseConfig.all_defenses()))
    total_returns = sum(1 for _ in unopt.module.return_sites())
    stats: Dict[float, EliminationStats] = {}
    table = Table(
        "Table 8: gadgets eliminated by PIBE",
        [
            "budget",
            "icp weight",
            "icp w%",
            "call sites",
            "sites%",
            "targets",
            "targets%",
            "ret weight",
            "ret w%",
            "ret sites",
            "ret sites%",
        ],
        notes=[
            "paper at 99%: icp weight 98.8%, sites 17.2%, targets 12.3%; "
            "returns weight 93.9%, sites 13.6%",
        ],
    )
    for budget in CENSUS_BUDGETS:
        icp_report, inline_report, _ = _census_reports(ctx, budget)
        row = elimination_stats(budget, icp_report, inline_report, total_returns)
        stats[budget] = row
        table.add_row(
            fmt_budget(budget),
            str(row.icp_weight),
            pct(row.icp_weight_fraction),
            str(row.icp_sites),
            pct(row.icp_sites_fraction),
            str(row.icp_targets),
            pct(row.icp_targets_fraction),
            str(row.return_weight),
            pct(row.return_weight_fraction),
            str(row.return_sites),
            pct(row.return_sites_fraction),
        )
    return Table8Result(table, stats)


@dataclass
class Table9Result:
    table: Table
    reports: Dict[float, InlineReport]


def table9(ctx: EvalContext) -> Table9Result:
    """Inlining weight blocked by Rule 2 / Rule 3 / other (paper Table 9:
    Rule 3 blocks ~4x more weight than Rule 2; together ~4%)."""
    reports: Dict[float, InlineReport] = {}
    table = Table(
        "Table 9: weight not elided due to size heuristics",
        ["budget", "Ovr.", "Rule 2", "%", "Rule 3", "%", "other", "%"],
        notes=[
            "paper at 99%: Rule 2 0.7%, Rule 3 3.35%, other 1.93% of "
            "overall eligible weight",
        ],
    )
    for budget in CENSUS_BUDGETS:
        _, inline_report, _ = _census_reports(ctx, budget)
        reports[budget] = inline_report
        total = max(inline_report.candidate_weight, 1)
        table.add_row(
            fmt_budget(budget),
            str(inline_report.candidate_weight),
            str(inline_report.blocked_rule2_weight),
            pct(inline_report.blocked_rule2_weight / total, 2),
            str(inline_report.blocked_rule3_weight),
            pct(inline_report.blocked_rule3_weight / total, 2),
            str(inline_report.blocked_other_weight),
            pct(inline_report.blocked_other_weight / total, 2),
        )
    return Table9Result(table, reports)


@dataclass
class Table10Result:
    table: Table
    stats: Dict[float, CandidateStats]


def table10(ctx: EvalContext) -> Table10Result:
    """Initial candidates relative to all kernel indirect branches (paper
    Table 10: at most ~3% of icalls / ~7.5% of returns are touched)."""
    unopt = ctx.variant(PibeConfig.hardened(DefenseConfig.all_defenses()))
    module_icalls = sum(1 for _ in unopt.module.indirect_call_sites())
    stats: Dict[float, CandidateStats] = {}
    table = Table(
        "Table 10: optimization candidates vs total indirect branches",
        [
            "budget",
            "icalls total",
            "icp candidates",
            "icp %",
            "returns total",
            "inline candidates",
            "inline %",
        ],
        notes=[
            "paper: icp 0.59-3.09% of 20,927 icalls; inlining 1.14-7.5% "
            "of ~133k returns",
        ],
    )
    for budget in CENSUS_BUDGETS:
        icp_report, inline_report, module = _census_reports(ctx, budget)
        module_returns = sum(1 for _ in module.return_sites())
        row = candidate_stats(
            budget, module_icalls, module_returns, icp_report, inline_report
        )
        stats[budget] = row
        table.add_row(
            fmt_budget(budget),
            str(row.total_icalls),
            str(row.icp_candidates),
            pct(row.icp_fraction, 2),
            str(row.total_returns),
            str(row.inline_candidates),
            pct(row.inline_fraction, 2),
        )
    return Table10Result(table, stats)


@dataclass
class Table11Result:
    table: Table
    censuses: Dict[str, ForwardEdgeCensus]


def table11(ctx: EvalContext) -> Table11Result:
    """Forward edges protected vs vulnerable (paper Table 11: protected
    icalls grow with budget via duplication; a small inline-assembly
    residue stays vulnerable; 5 indirect jumps remain)."""
    configs: List[Tuple[str, PibeConfig]] = [
        ("no opt", PibeConfig.hardened(DefenseConfig.all_defenses()))
    ]
    for budget in CENSUS_BUDGETS:
        configs.append((fmt_budget(budget), _census_config(budget)))
    censuses: Dict[str, ForwardEdgeCensus] = {}
    table = Table(
        "Table 11: forward edges protected/vulnerable under all defenses",
        ["config", "def. icalls", "vuln. icalls", "vuln. ijumps"],
        notes=[
            "paper: 20927/41/5 unoptimized, protected count grows and "
            "vulnerable icalls duplicate with budget (up to 26066/170/5)",
        ],
    )
    for label, config in configs:
        build = ctx.variant(config)
        census = forward_edge_census(build.module)
        censuses[label] = census
        table.add_row(
            label,
            str(census.defended_icalls),
            str(census.vulnerable_icalls),
            str(census.vulnerable_ijumps),
        )
    return Table11Result(table, censuses)


# ---------------------------------------------------------------------------
# Table 12 — size and memory growth
# ---------------------------------------------------------------------------


@dataclass
class Table12Result:
    table: Table
    reports: Dict[str, SizeReport]


def table12(ctx: EvalContext) -> Table12Result:
    """Kernel size and memory usage per configuration/budget (paper Table
    12: 8-37% abs size growth depending on budget)."""
    lto = ctx.variant(PibeConfig.lto_baseline()).module
    rows: List[Tuple[str, DefenseConfig, float]] = [
        ("all-defenses @99%", DefenseConfig.all_defenses(), 0.99),
        ("all-defenses @99.9%", DefenseConfig.all_defenses(), 0.999),
        ("all-defenses @99.9999%", DefenseConfig.all_defenses(), 0.999999),
        ("retpolines @99.999%", DefenseConfig.retpolines_only(), 0.99999),
        ("LVI-CFI @99%", DefenseConfig.lvi_only(), 0.99),
        ("LVI-CFI @99.9999%", DefenseConfig.lvi_only(), 0.999999),
        ("ret-retpolines @99%", DefenseConfig.ret_retpolines_only(), 0.99),
        (
            "ret-retpolines @99.9999%",
            DefenseConfig.ret_retpolines_only(),
            0.999999,
        ),
    ]
    reports: Dict[str, SizeReport] = {}
    table = Table(
        "Table 12: size and memory increase due to the algorithms",
        ["config", "abs size", "img size", "mem size", "slab", "dyn"],
        notes=[
            "paper all-defenses: 8.1/13.8/36.8% abs size across budgets; "
            "mem size moves in page-granular steps",
        ],
    )
    def measured_peak_stack(module: Module) -> float:
        from repro.analysis.stack import StackUsageTracker
        from repro.engine.compiled import create_interpreter

        tracker = StackUsageTracker()
        interpreter = create_interpreter(
            module, [tracker], seed=ctx.settings.seed
        )
        for syscall in ("read", "open", "fork_exit", "select_tcp"):
            interpreter.run_syscall(syscall, times=20)
        return float(tracker.peak_bytes)

    for label, defenses, budget in rows:
        if defenses.retpolines and not defenses.ret_retpolines and not defenses.lvi_cfi:
            config = PibeConfig.hardened(defenses, icp_budget=budget)
        else:
            config = PibeConfig.hardened(
                defenses, icp_budget=budget, inline_budget=budget
            )
        variant = ctx.variant(config).module
        unopt = ctx.variant(PibeConfig.hardened(defenses)).module
        report = size_report(
            label,
            variant,
            lto,
            unopt,
            measured_dyn=(
                measured_peak_stack(variant),
                measured_peak_stack(unopt),
            ),
        )
        reports[label] = report
        table.add_row(
            label,
            pct(report.abs_size_increase),
            pct(report.img_size_increase),
            pct(report.mem_size_increase),
            pct(report.slab_size_increase, 2),
            pct(report.dyn_size_increase, 2),
        )
    return Table12Result(table, reports)


# ---------------------------------------------------------------------------
# Section 8.4 — workload robustness
# ---------------------------------------------------------------------------


@dataclass
class RobustnessResult:
    table: Table
    matched_geomean: float
    mismatched_geomean: float
    default_inliner_geomean: float
    icp_overlap: float
    inline_overlap: float


def robustness(ctx: EvalContext) -> RobustnessResult:
    """Optimize with the Apache workload, measure LMBench (paper: 22.5% vs
    10.6% matched vs 100.2% with the default inliner), plus candidate
    overlap between the workloads (paper: 58% icp / 67% inlining)."""
    lto = ctx.lto_measurements()
    all_def = DefenseConfig.all_defenses()

    matched = build_overhead_report(
        "matched", lto, ctx.measure(PibeConfig.lax(all_def))
    ).geomean
    mismatched = build_overhead_report(
        "apache-trained",
        lto,
        ctx.measure(PibeConfig.lax(all_def), workload_name="apache"),
    ).geomean
    default_inliner = build_overhead_report(
        "default-inliner",
        lto,
        ctx.measure(
            PibeConfig(
                defenses=all_def,
                icp_budget=0.999999,
                inline_budget=0.999999,
                use_default_inliner=True,
            )
        ),
    ).geomean

    overlap = workload_overlap(
        ctx.profile("lmbench"), ctx.profile("apache"), budget=0.99
    )
    table = Table(
        "Section 8.4: robustness to workload profiles",
        ["configuration", "LMBench geomean overhead"],
        notes=[
            "paper: 10.6% matched, 22.5% Apache-trained, 100.2% default "
            "inliner; candidate overlap 58% (icp) / 67% (inlining)",
            f"candidate weight overlap at 99% budget: "
            f"icp {overlap.icp_shared_weight_fraction:.0%}, "
            f"inlining {overlap.inline_shared_weight_fraction:.0%}",
        ],
    )
    table.add_row("PIBE (LMBench-trained)", pct(matched))
    table.add_row("PIBE (Apache-trained)", pct(mismatched))
    table.add_row("default LLVM inliner", pct(default_inliner))
    return RobustnessResult(
        table,
        matched,
        mismatched,
        default_inliner,
        overlap.icp_shared_weight_fraction,
        overlap.inline_shared_weight_fraction,
    )


# ---------------------------------------------------------------------------
# Figure 1 — the Rule 3 inlining example
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    table: Table
    inlined_without_rule3: List[str]
    inlined_with_rule3: List[str]


def _figure1_module() -> Tuple[Module, EdgeProfile]:
    """The bar -> foo_1/foo_2/foo_3 example with the paper's counts (1000,
    500, 500) and InlineCosts (12000, 300, 200)."""
    from repro.ir.builder import IRBuilder
    from repro.profiling.lifting import lift_profile

    module = Module("figure1")
    sizes = {"foo_1": 2399, "foo_2": 59, "foo_3": 39}
    for name, body_size in sizes.items():
        func = Function(name, num_params=0, subsystem="example")
        b = IRBuilder(func)
        b.arith(body_size)
        b.ret()
        module.add_function(func)
    bar = Function("bar", num_params=0, subsystem="example")
    b = IRBuilder(bar)
    site_ids = {}
    for name in ("foo_1", "foo_2", "foo_3"):
        inst = b.call(name, num_args=0)
        site_ids[name] = inst.site_id
    b.ret()
    module.add_function(bar)

    profile = EdgeProfile(workload="figure1")
    profile.record_direct(site_ids["foo_1"], 1000)
    profile.record_direct(site_ids["foo_2"], 500)
    profile.record_direct(site_ids["foo_3"], 500)
    profile.record_invocation("bar", 2000)
    for name, count in (("foo_1", 1000), ("foo_2", 500), ("foo_3", 500)):
        profile.record_invocation(name, count)
    lift_profile(module, profile)
    return module, profile


def _run_figure1(callee_threshold: int) -> List[str]:
    module, profile = _figure1_module()
    inliner = PibeInliner(
        profile,
        budget=1.0,
        caller_threshold=12_000,
        callee_threshold=callee_threshold,
    )
    inliner.run(module)
    bar = module.get("bar")
    remaining = {
        inst.callee for inst in bar.call_sites() if inst.opcode == Opcode.CALL
    }
    return sorted(set(["foo_1", "foo_2", "foo_3"]) - remaining)


def figure1() -> Figure1Result:
    """Demonstrates why Rule 3 exists: without it the greedy inliner
    spends bar's whole complexity budget on foo_1; with it, foo_2 and
    foo_3 are inlined (same eliminated weight, budget to spare)."""
    without_rule3 = _run_figure1(callee_threshold=10**9)
    with_rule3 = _run_figure1(callee_threshold=3_000)
    table = Table(
        "Figure 1: greedy inlining with and without Rule 3",
        ["heuristics", "inlined callees"],
        notes=[
            "paper: without Rule 3, inlining foo_1 (cost 12000) depletes "
            "bar's budget; with Rule 3 foo_2+foo_3 are inlined instead",
        ],
    )
    table.add_row("Rules 1+2 only", ", ".join(without_rule3) or "(none)")
    table.add_row("Rules 1+2+3", ", ".join(with_rule3) or "(none)")
    return Figure1Result(table, without_rule3, with_rule3)
