"""Exhaustive solution-space sweep with Pareto/crossover analysis.

The paper samples the overhead-vs-security space at a handful of budget
points (Tables 5-12). This engine computes the whole surface: it fans
the full (optimization budget x defense selection x training workload x
kernel scale) grid through :meth:`EvalContext.measure_many` — or a
running ``repro serve`` instance — with N-seed repetition per cell,
aggregates each cell to nearest-rank median/IQR run statistics instead
of single numbers, attaches the residual-target security metrics of
:mod:`repro.analysis.security` to every variant, and derives two things
the paper only eyeballs:

- the **Pareto frontier** of (geomean overhead ↓, AIR ↑) per
  (scale, workload) slice — the configurations for which no other grid
  point is both faster and more secure;
- the **budget crossover points** between defense pairs: the budget at
  which one defense's overhead curve crosses another's. The
  structurally interesting pair is a FineIBT-style cheap-per-branch CFI
  against retpoline-style thunks: the CFI check keeps charging on every
  call — including the direct calls ICP promotes — while retpoline cost
  rides the indirect-branch count down to zero as the budget grows, so
  retpolines overtake the CFI at high budgets. LLVM-CFI
  (:data:`~repro.cpu.costs.NONTRANSIENT_COSTS`) is that defense in this
  cost model, which is why the grid presets include it.

Output is a deterministic CSV (stable row order, shortest-round-trip
floats — two runs over the same measurements are byte-identical) plus a
rendered text/markdown report. ``repro sweep`` is the CLI; the 1-D
:func:`repro.evaluation.sweeps.budget_sweep` survives as a thin wrapper
sharing this module's cell dedup.

Scale economics: every (scale, seed) replica is its own
:class:`EvalContext` (the seed feeds profiling *and* measurement, so a
replica is a genuinely independent experiment), but all replicas share
one built kernel per scale and one disk cache, so staged prefix builds
and measurements are paid once per distinct cell across the whole run —
the warm-prefix sublinearity that ``benchmarks/bench_sweep.py`` asserts.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import PibeConfig
from repro.core.report import build_overhead_report
from repro.evaluation.formatting import Table, fmt_budget, pct
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.stats import quartiles
from repro.hardening.defenses import DefenseConfig, NonTransientDefense
from repro.kernel.generator import build_kernel
from repro.kernel.spec import DEFAULT_SPEC, SCALED_SPEC, SmallSpec
from repro.workloads.base import Benchmark
from repro.workloads.lmbench import BY_NAME, LMBENCH_BENCHMARKS

#: Kernel scales the grid can span (name -> spec).
SCALE_SPECS = {
    "small": SmallSpec(),
    "default": DEFAULT_SPEC,
    "scaled": SCALED_SPEC,
}

def llvm_cfi_only() -> DefenseConfig:
    """Forward-edge LLVM-CFI alone: the cheap-per-branch defense whose
    cost survives ICP promotion (it charges direct calls too), making it
    the canonical crossover partner for retpolines."""
    return DefenseConfig(
        nontransient=frozenset({NonTransientDefense.LLVM_CFI})
    )


#: Defense selections addressable from grid specs and the CLI.
DEFENSE_NAMES: Dict[str, Callable[[], DefenseConfig]] = {
    "none": DefenseConfig.none,
    "retpolines": DefenseConfig.retpolines_only,
    "ret-retpolines": DefenseConfig.ret_retpolines_only,
    "lvi": DefenseConfig.lvi_only,
    "llvm-cfi": llvm_cfi_only,
    "all": DefenseConfig.all_defenses,
}

#: Training workloads the harness understands.
KNOWN_WORKLOADS = ("lmbench", "apache")

#: The paper's Table 5 budget grid.
PAPER_BUDGETS = (0.9, 0.99, 0.999, 0.9999, 0.999999)


def defense_from_name(name: str) -> DefenseConfig:
    """Resolve a CLI/JSON defense name via :data:`DEFENSE_NAMES`."""
    try:
        return DEFENSE_NAMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown defense {name!r} (known: {sorted(DEFENSE_NAMES)})"
        ) from None


@dataclass(frozen=True)
class SweepGrid:
    """The (budget x defense x workload x scale) grid, plus repetition.

    ``seeds`` replicas run the whole experiment — profiling and
    measurement — at ``seed_base + i``, so every cell aggregates N
    independent runs.
    """

    budgets: Tuple[float, ...]
    defenses: Tuple[DefenseConfig, ...]
    workloads: Tuple[str, ...] = ("lmbench",)
    scales: Tuple[str, ...] = ("default",)
    seeds: int = 1
    seed_base: int = 7
    lax_heuristics: bool = False

    def __post_init__(self) -> None:
        if not self.budgets or not self.defenses:
            raise ValueError("sweep grid needs >= 1 budget and >= 1 defense")
        for budget in self.budgets:
            if not 0.0 < budget <= 1.0:
                raise ValueError(
                    f"budget {budget!r} out of range: must be in (0, 1]"
                )
        for workload in self.workloads:
            if workload not in KNOWN_WORKLOADS:
                raise ValueError(
                    f"unknown workload {workload!r} (known: {KNOWN_WORKLOADS})"
                )
        for scale in self.scales:
            if scale not in SCALE_SPECS:
                raise ValueError(
                    f"unknown scale {scale!r} (known: {sorted(SCALE_SPECS)})"
                )
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")

    @property
    def cell_count(self) -> int:
        """Grid cells (excluding baselines and seed replicas)."""
        return (
            len(self.budgets)
            * len(self.defenses)
            * len(self.workloads)
            * len(self.scales)
        )

    def config(self, defense: DefenseConfig, budget: float) -> PibeConfig:
        return PibeConfig.hardened(
            defense,
            icp_budget=budget,
            inline_budget=budget,
            lax_heuristics=self.lax_heuristics,
        )

    def describe(self) -> str:
        return (
            f"{len(self.defenses)} defenses x {len(self.budgets)} budgets x "
            f"{len(self.workloads)} workloads x {len(self.scales)} scales, "
            f"{self.seeds} seed(s) -> {self.cell_count} cells"
        )


#: Acceptance-sized grid: 3 defenses x 3 budgets x 2 workloads, 2 seeds.
#: The 0.5 budget anchors the low end where the cheap-per-branch CFI
#: undercuts retpolines, so the retpolines/llvm_cfi crossover falls
#: inside the grid.
FAST_GRID = SweepGrid(
    budgets=(0.5, 0.9, 0.999999),
    defenses=(
        DefenseConfig.retpolines_only(),
        llvm_cfi_only(),
        DefenseConfig.all_defenses(),
    ),
    workloads=("lmbench", "apache"),
    scales=("small",),
    seeds=2,
)

#: Paper-scale grid over the default kernel.
DEFAULT_GRID = SweepGrid(
    budgets=(0.5,) + PAPER_BUDGETS,
    defenses=(
        DefenseConfig.retpolines_only(),
        DefenseConfig.ret_retpolines_only(),
        DefenseConfig.lvi_only(),
        llvm_cfi_only(),
        DefenseConfig.all_defenses(),
    ),
    workloads=("lmbench", "apache"),
    scales=("default",),
    seeds=3,
)

GRID_PRESETS = {"fast": FAST_GRID, "default": DEFAULT_GRID, "paper": DEFAULT_GRID}


def grid_from_spec(spec: str) -> SweepGrid:
    """A grid from a preset name, a JSON file path, or inline JSON.

    JSON fields (all optional, defaults from the ``fast`` preset):
    ``budgets`` (list of floats), ``defenses`` (names from
    :data:`DEFENSE_NAMES`), ``workloads``, ``scales``, ``seeds``,
    ``seed_base``, ``lax`` (bool).
    """
    if spec in GRID_PRESETS:
        return GRID_PRESETS[spec]
    text = spec
    if not spec.lstrip().startswith("{"):
        path = Path(spec)
        if not path.is_file():
            raise ValueError(
                f"--grid {spec!r} is neither a preset "
                f"({sorted(GRID_PRESETS)}), a JSON file, nor inline JSON"
            )
        text = path.read_text()
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"invalid grid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError("grid JSON must be an object")
    known = {
        "budgets", "defenses", "workloads", "scales",
        "seeds", "seed_base", "lax",
    }
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown grid field(s): {sorted(unknown)}")
    base = FAST_GRID
    return SweepGrid(
        budgets=tuple(float(b) for b in data.get("budgets", base.budgets)),
        defenses=tuple(
            defense_from_name(n) for n in data["defenses"]
        ) if "defenses" in data else base.defenses,
        workloads=tuple(data.get("workloads", base.workloads)),
        scales=tuple(data.get("scales", base.scales)),
        seeds=int(data.get("seeds", base.seeds)),
        seed_base=int(data.get("seed_base", base.seed_base)),
        lax_heuristics=bool(data.get("lax", base.lax_heuristics)),
    )


# -- cell dedup ---------------------------------------------------------------


@dataclass
class DedupedMeasurements:
    """Per-input measurement results after semantic-key dedup.

    ``results`` is fanned back out to input order (failed cells are
    ``None``); ``cells_evaluated`` counts the *unique* cells that
    actually reached ``measure_many``.
    """

    results: List[Optional[Dict[str, float]]]
    cells_requested: int
    cells_evaluated: int

    @property
    def dedup_hits(self) -> int:
        return self.cells_requested - self.cells_evaluated


def measure_deduped(
    ctx: EvalContext,
    configs: Sequence[PibeConfig],
    benches: Sequence[Benchmark],
    workload_name: str = "lmbench",
    jobs: Optional[int] = None,
) -> DedupedMeasurements:
    """Measure ``configs``, collapsing semantically equal cells first.

    :class:`PibeConfig` is a frozen value type, so config equality *is*
    the semantic cell key (same defenses, budgets, heuristics ->
    same measurement). Duplicate grid points — a repeated budget, a
    swept config that collides with a reference config — are measured
    once and the shared result fanned back out to every requester.
    """
    configs = list(configs)
    unique: List[PibeConfig] = []
    index_of: Dict[PibeConfig, int] = {}
    slot: List[int] = []
    for config in configs:
        idx = index_of.get(config)
        if idx is None:
            idx = len(unique)
            index_of[config] = idx
            unique.append(config)
        slot.append(idx)
    measured = ctx.measure_many(unique, benches, workload_name, jobs=jobs)
    return DedupedMeasurements(
        results=[measured[i] for i in slot],
        cells_requested=len(configs),
        cells_evaluated=len(unique),
    )


# -- result containers --------------------------------------------------------


@dataclass
class SweepCell:
    """One aggregated grid cell: run statistics plus security metrics."""

    scale: str
    workload: str
    defense: str
    budget: float
    #: per-seed geomean overheads, in seed order; ``None`` = failed seed
    geomeans: List[Optional[float]] = field(default_factory=list)
    median: Optional[float] = None
    q1: Optional[float] = None
    q3: Optional[float] = None
    iqr: Optional[float] = None
    #: residual-target security metrics of the variant (seed-0 build)
    air: Optional[float] = None
    residual_total: Optional[int] = None
    residual_mean: Optional[float] = None
    on_frontier: bool = False

    @property
    def failed_seeds(self) -> int:
        return sum(1 for g in self.geomeans if g is None)

    @property
    def key(self) -> Tuple[str, str, str, float]:
        return (self.scale, self.workload, self.defense, self.budget)

    def aggregate(self) -> None:
        """Fill median/IQR from the per-seed geomeans (nearest-rank)."""
        good = [g for g in self.geomeans if g is not None]
        if not good:
            return
        q = quartiles(good)
        self.median = q["median"]
        self.q1 = q["q1"]
        self.q3 = q["q3"]
        self.iqr = q["q3"] - q["q1"]


@dataclass(frozen=True)
class Crossover:
    """A budget at which two defenses' overhead curves cross."""

    scale: str
    workload: str
    defense_a: str
    defense_b: str
    budget_low: float
    budget_high: float
    #: linearly interpolated crossing budget in [budget_low, budget_high]
    budget_cross: float
    #: overhead_a - overhead_b at the bracketing budgets
    delta_low: float
    delta_high: float


@dataclass
class SweepRunResult:
    """Measured grid + derived analysis + run accounting."""

    grid: SweepGrid
    cells: List[SweepCell]
    crossovers: List[Crossover] = field(default_factory=list)
    #: run accounting (cell/dedup counters, pipeline + cache stats);
    #: *not* part of the deterministic CSV/report output
    stats: Dict[str, Any] = field(default_factory=dict)

    def frontier(self) -> List[SweepCell]:
        return [c for c in self.cells if c.on_frontier]

    def slices(self) -> List[Tuple[str, str]]:
        seen: List[Tuple[str, str]] = []
        for cell in self.cells:
            key = (cell.scale, cell.workload)
            if key not in seen:
                seen.append(key)
        return sorted(seen)

    # -- deterministic renderings -----------------------------------------

    def to_csv(self) -> str:
        """One row per cell, stable order, shortest-round-trip floats."""
        header = (
            "scale,workload,defense,budget,budget_label,seeds,failed_seeds,"
            "overhead_median,overhead_q1,overhead_q3,overhead_iqr,"
            "air,residual_total,residual_mean,on_frontier"
        )
        lines = [header]
        for cell in sorted(self.cells, key=lambda c: c.key):
            lines.append(
                ",".join(
                    [
                        cell.scale,
                        cell.workload,
                        cell.defense,
                        repr(cell.budget),
                        fmt_budget(cell.budget),
                        str(len(cell.geomeans)),
                        str(cell.failed_seeds),
                        _csv_num(cell.median),
                        _csv_num(cell.q1),
                        _csv_num(cell.q3),
                        _csv_num(cell.iqr),
                        _csv_num(cell.air),
                        "" if cell.residual_total is None
                        else str(cell.residual_total),
                        _csv_num(cell.residual_mean),
                        "1" if cell.on_frontier else "0",
                    ]
                )
            )
        return "\n".join(lines) + "\n"

    def render_report(self, fmt: str = "text") -> str:
        """Rendered per-slice grid, frontier and crossover tables."""
        if fmt not in ("text", "markdown"):
            raise ValueError(f"unknown report format {fmt!r}")
        render = (
            (lambda t: t.to_markdown()) if fmt == "markdown"
            else (lambda t: t.to_text())
        )
        chunks: List[str] = []
        for scale, workload in self.slices():
            table = Table(
                f"Sweep slice: scale={scale} workload={workload}",
                ["defense", "budget", "median", "IQR", "AIR", "frontier"],
                notes=[self.grid.describe()],
            )
            rows = sorted(
                (c for c in self.cells
                 if c.scale == scale and c.workload == workload),
                key=lambda c: (c.defense, c.budget),
            )
            for cell in rows:
                table.add_row(
                    cell.defense,
                    fmt_budget(cell.budget),
                    "-" if cell.median is None else pct(cell.median),
                    "-" if cell.iqr is None else pct(cell.iqr, digits=2),
                    "-" if cell.air is None else f"{cell.air:.4f}",
                    "*" if cell.on_frontier else "",
                )
            chunks.append(render(table))

        frontier = Table(
            "Pareto frontier (overhead v, AIR ^)",
            ["scale", "workload", "defense", "budget", "median", "AIR"],
        )
        for cell in sorted(self.frontier(), key=lambda c: c.key):
            frontier.add_row(
                cell.scale,
                cell.workload,
                cell.defense,
                fmt_budget(cell.budget),
                "-" if cell.median is None else pct(cell.median),
                "-" if cell.air is None else f"{cell.air:.4f}",
            )
        chunks.append(render(frontier))

        crossings = Table(
            "Budget crossover points (overhead_a - overhead_b flips sign)",
            ["scale", "workload", "defense a", "defense b",
             "bracket", "crossover"],
        )
        for x in self.crossovers:
            crossings.add_row(
                x.scale,
                x.workload,
                x.defense_a,
                x.defense_b,
                f"{fmt_budget(x.budget_low)}..{fmt_budget(x.budget_high)}",
                # Interpolated, not a grid point: fixed precision beats
                # fmt_budget's exact round-trip here.
                f"{x.budget_cross * 100.0:.2f}%",
            )
        chunks.append(render(crossings))
        return "\n\n".join(chunks) + "\n"


def _csv_num(value: Optional[float]) -> str:
    if value is None:
        return ""
    return format(value, ".9g")


# -- analysis -----------------------------------------------------------------


def mark_pareto_frontier(cells: Sequence[SweepCell]) -> None:
    """Set ``on_frontier`` per (scale, workload) slice.

    A cell dominates another when it is no slower *and* no less secure,
    and strictly better on at least one axis. Cells without a median or
    AIR (all seeds failed / no security metrics) never enter the
    frontier.
    """
    for cell in cells:
        cell.on_frontier = False
    slices: Dict[Tuple[str, str], List[SweepCell]] = {}
    for cell in cells:
        slices.setdefault((cell.scale, cell.workload), []).append(cell)
    for group in slices.values():
        scored = [
            c for c in group if c.median is not None and c.air is not None
        ]
        for cell in scored:
            dominated = any(
                other is not cell
                and other.median <= cell.median
                and other.air >= cell.air
                and (other.median < cell.median or other.air > cell.air)
                for other in scored
            )
            cell.on_frontier = not dominated


def find_crossovers(
    cells: Sequence[SweepCell], grid: SweepGrid
) -> List[Crossover]:
    """Budget crossover points for every defense pair, per slice.

    For each (scale, workload) slice and defense pair (a, b) with
    ``label(a) < label(b)``, scan the budget grid in order and bracket
    every sign change of ``overhead_a(budget) - overhead_b(budget)``;
    the crossing budget is linearly interpolated within the bracket. A
    delta that is exactly zero at a grid point is a crossover at that
    budget.
    """
    by_key: Dict[Tuple[str, str, str, float], SweepCell] = {
        c.key: c for c in cells
    }
    budgets = sorted(set(grid.budgets))
    labels = sorted({c.defense for c in cells})
    out: List[Crossover] = []
    for scale, workload in sorted({(c.scale, c.workload) for c in cells}):
        for i, label_a in enumerate(labels):
            for label_b in labels[i + 1:]:
                deltas: List[Tuple[float, float]] = []
                for budget in budgets:
                    a = by_key.get((scale, workload, label_a, budget))
                    b = by_key.get((scale, workload, label_b, budget))
                    if (
                        a is None or b is None
                        or a.median is None or b.median is None
                    ):
                        continue
                    deltas.append((budget, a.median - b.median))
                for (b1, d1), (b2, d2) in zip(deltas, deltas[1:]):
                    if d1 == 0.0:
                        out.append(Crossover(
                            scale, workload, label_a, label_b,
                            b1, b1, b1, d1, d1,
                        ))
                    elif d1 * d2 < 0.0:
                        t = d1 / (d1 - d2)
                        out.append(Crossover(
                            scale, workload, label_a, label_b,
                            b1, b2, b1 + t * (b2 - b1), d1, d2,
                        ))
                if deltas and deltas[-1][1] == 0.0:
                    b_last, d_last = deltas[-1]
                    out.append(Crossover(
                        scale, workload, label_a, label_b,
                        b_last, b_last, b_last, d_last, d_last,
                    ))
    return out


# -- runners ------------------------------------------------------------------


def run_sweep(
    grid: SweepGrid,
    settings: Optional[EvalSettings] = None,
    benches: Optional[Sequence[Benchmark]] = None,
    jobs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    kernels: Optional[Dict[str, "Module"]] = None,  # noqa: F821
    prewarm: bool = True,
    security: bool = True,
) -> SweepRunResult:
    """Measure the grid locally and return the aggregated result.

    One :class:`EvalContext` per (scale, seed) replica; all replicas of
    one scale share the built kernel, and every context shares
    ``settings.cache_dir``, so staged prefixes and measurements persist
    across replicas and across repeated runs (the warm path).

    With ``prewarm`` (and a disk cache plus ``jobs > 1``), each workload
    group's distinct cold optimized prefixes are built in parallel ahead
    of measurement via :meth:`EvalContext.prewarm_prefixes`, so the
    serial build_variant path inside the measurement fan-out finds them
    as disk hits instead of serializing the cold builds.

    ``security=False`` skips the residual-target security attachment
    (which rebuilds every seed-0 variant in this process for analysis) —
    for overhead-only sweeps and build-phase benchmarks.

    ``kernels`` optionally maps scale names to prebuilt modules. Kernel
    generation allocates site ids from a process-global counter, so a
    *rebuilt* kernel carries shifted ids and a different site-sensitive
    fingerprint — profile and prefix cache entries would not be shared
    with an earlier in-process run. Callers timing warm reruns (the
    sweep benchmark) pass the same kernel to every run; separate
    processes get sharing for free (id allocation restarts).
    """
    settings = settings or EvalSettings()
    benches = tuple(benches) if benches is not None else tuple(LMBENCH_BENCHMARKS)
    say = log or (lambda message: None)

    cells: Dict[Tuple[str, str, str, float], SweepCell] = {}
    for scale in grid.scales:
        for workload in grid.workloads:
            for defense in grid.defenses:
                for budget in grid.budgets:
                    cell = SweepCell(
                        scale, workload, defense.label(), budget
                    )
                    cells[cell.key] = cell

    stats: Dict[str, Any] = {
        "cells_requested": 0,
        "cells_evaluated": 0,
        "dedup_hits": 0,
        "contexts": 0,
        "failed_cells": 0,
    }
    pipeline_stats: Dict[str, int] = {}
    cache_hits = cache_misses = 0

    for scale in grid.scales:
        spec = SCALE_SPECS[scale]
        kernel = (kernels or {}).get(scale)
        if kernel is None:
            kernel = build_kernel(spec)
        for replica in range(grid.seeds):
            seed = grid.seed_base + replica
            replica_settings = dataclasses.replace(
                settings, spec=spec, seed=seed
            )
            say(f"scale={scale} seed={seed}: measuring "
                f"{len(grid.workloads)} workload group(s)")
            with EvalContext(replica_settings, kernel=kernel) as ctx:
                stats["contexts"] += 1
                for workload in grid.workloads:
                    configs = [PibeConfig.lto_baseline()]
                    keys: List[Tuple[str, str, str, float]] = []
                    for defense in grid.defenses:
                        for budget in grid.budgets:
                            configs.append(grid.config(defense, budget))
                            keys.append(
                                (scale, workload, defense.label(), budget)
                            )
                    if prewarm:
                        warmed = ctx.prewarm_prefixes(
                            configs, workload, jobs=jobs
                        )
                        if warmed:
                            say(
                                f"scale={scale} seed={seed} "
                                f"workload={workload}: prewarmed "
                                f"{warmed} prefix(es)"
                            )
                    deduped = measure_deduped(
                        ctx, configs, benches, workload, jobs=jobs
                    )
                    stats["cells_requested"] += deduped.cells_requested
                    stats["cells_evaluated"] += deduped.cells_evaluated
                    stats["dedup_hits"] += deduped.dedup_hits
                    baseline = deduped.results[0]
                    for key, values in zip(keys, deduped.results[1:]):
                        cell = cells[key]
                        if baseline is None or values is None:
                            cell.geomeans.append(None)
                            stats["failed_cells"] += 1
                            continue
                        cell.geomeans.append(
                            build_overhead_report(
                                cell.defense, baseline, values
                            ).geomean
                        )
                if replica == 0 and security:
                    _attach_security(ctx, grid, scale, cells, say)
                for key, value in ctx.pipeline.stats.items():
                    pipeline_stats[key] = pipeline_stats.get(key, 0) + value
                if ctx.cache is not None:
                    snapshot = ctx.cache.stats()
                    cache_hits += snapshot.get("hits", 0)
                    cache_misses += snapshot.get("misses", 0)

    for cell in cells.values():
        cell.aggregate()
    ordered = [cells[key] for key in sorted(cells)]
    mark_pareto_frontier(ordered)
    stats["pipeline"] = {k: pipeline_stats[k] for k in sorted(pipeline_stats)}
    stats["disk_cache"] = {"hits": cache_hits, "misses": cache_misses}
    return SweepRunResult(
        grid=grid,
        cells=ordered,
        crossovers=find_crossovers(ordered, grid),
        stats=stats,
    )


def _attach_security(
    ctx: EvalContext,
    grid: SweepGrid,
    scale: str,
    cells: Dict[Tuple[str, str, str, float], SweepCell],
    say: Callable[[str], None],
) -> None:
    """Residual-target metrics per variant, from the seed-0 replica.

    The security surface of a variant is a function of its built module,
    not of the measurement seed, so one replica's builds (cheap: staged
    prefixes are already memoized from the measurement pass on fork
    platforms, or rebuilt once here) serve the whole cell.
    """
    from repro.analysis.security import security_metrics

    for workload in grid.workloads:
        for defense in grid.defenses:
            for budget in grid.budgets:
                key = (scale, workload, defense.label(), budget)
                cell = cells[key]
                config = grid.config(defense, budget)
                try:
                    build = ctx.variant(config, workload)
                    metrics = security_metrics(
                        build.module, label=config.label()
                    )
                except Exception as exc:  # noqa: BLE001 — cell keeps a gap
                    say(f"security metrics failed for {config.label()}: "
                        f"{type(exc).__name__}: {exc}")
                    continue
                cell.air = metrics.air
                cell.residual_total = metrics.residual_total
                cell.residual_mean = metrics.residual_mean


def run_sweep_connected(
    grid: SweepGrid,
    client: "ServeClient",  # noqa: F821 — imported lazily below
    benches: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SweepRunResult:
    """Measure the grid against a running ``repro serve`` instance.

    The server owns one kernel and one seed, so the grid's ``scales``
    collapse to the single scale ``"serve"`` and ``seeds`` to 1 (a note
    is logged when the grid asked for more). Measurements go through
    ``measure_many`` requests (deduped client-side first); security
    metrics come from the server's ``security`` op, so connect mode
    reuses its warm variants instead of rebuilding locally.
    """
    say = log or (lambda message: None)
    if len(grid.scales) > 1 or grid.seeds > 1:
        say(
            "connect mode: the server has one kernel and one seed — "
            f"collapsing scales={grid.scales} seeds={grid.seeds} to "
            "scale='serve', seeds=1"
        )
    bench_names = list(benches) if benches is not None else None
    scale = "serve"

    cells: List[SweepCell] = []
    cells_requested = cells_evaluated = 0
    for workload in grid.workloads:
        configs = [PibeConfig.lto_baseline()]
        cell_group: List[SweepCell] = []
        for defense in grid.defenses:
            for budget in grid.budgets:
                configs.append(grid.config(defense, budget))
                cell_group.append(
                    SweepCell(scale, workload, defense.label(), budget)
                )
        unique: List[PibeConfig] = []
        index_of: Dict[PibeConfig, int] = {}
        slot: List[int] = []
        for config in configs:
            idx = index_of.get(config)
            if idx is None:
                idx = len(unique)
                index_of[config] = idx
                unique.append(config)
            slot.append(idx)
        cells_requested += len(configs)
        cells_evaluated += len(unique)
        say(f"workload={workload}: measure_many over "
            f"{len(unique)} unique cell(s)")
        response = client.measure_many(
            unique, benches=bench_names, workload=workload
        )
        results = [response["results"][i] for i in slot]
        baseline = results[0]
        for cell, values, config in zip(
            cell_group, results[1:], configs[1:]
        ):
            if baseline is not None and values is not None:
                cell.geomeans.append(
                    build_overhead_report(
                        cell.defense, baseline, values
                    ).geomean
                )
            else:
                cell.geomeans.append(None)
            try:
                metrics = client.security(config, workload)["metrics"]
            except Exception as exc:  # noqa: BLE001 — older server, gap
                say(f"security op unavailable for {config.label()}: {exc}")
                metrics = None
            if metrics is not None:
                cell.air = metrics["air"]
                cell.residual_total = metrics["residual_total"]
                cell.residual_mean = metrics["residual_mean"]
        cells.extend(cell_group)

    for cell in cells:
        cell.aggregate()
    ordered = sorted(cells, key=lambda c: c.key)
    mark_pareto_frontier(ordered)
    stats: Dict[str, Any] = {
        "cells_requested": cells_requested,
        "cells_evaluated": cells_evaluated,
        "dedup_hits": cells_requested - cells_evaluated,
        "connected": True,
    }
    try:
        stats["server_counters"] = client.stats()["server"]["counters"]
    except Exception:  # noqa: BLE001 — stats are best-effort
        pass
    return SweepRunResult(
        grid=grid,
        cells=ordered,
        crossovers=find_crossovers(ordered, grid),
        stats=stats,
    )


def resolve_benches(names: Optional[Sequence[str]]) -> Tuple[Benchmark, ...]:
    """Benchmark objects from names (default: the full LMBench suite)."""
    if names is None:
        return tuple(LMBENCH_BENCHMARKS)
    try:
        return tuple(BY_NAME[name] for name in names)
    except KeyError as exc:
        raise ValueError(
            f"unknown benchmark {exc.args[0]!r} (known: {sorted(BY_NAME)})"
        ) from None
