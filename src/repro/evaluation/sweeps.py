"""Budget-sweep utility: the overhead-vs-budget curve behind Table 5.

``budget_sweep`` measures a defense configuration across an arbitrary
grid of optimization budgets — the tool a user reaches for when picking a
budget for their own workload (the paper's Section 5.2 notes no single
threshold is uniformly optimal across kernel paths, which is exactly what
the per-bench columns of the sweep expose).

This is the 1-D slice of the full grid engine: for multi-defense /
multi-workload / multi-seed sweeps with Pareto and crossover analysis,
see :mod:`repro.evaluation.sweepengine`, whose cell dedup this wrapper
shares (duplicate budgets — or a swept budget colliding with the
unoptimized reference config — are measured once and fanned back out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import PibeConfig
from repro.core.report import build_overhead_report
from repro.evaluation.formatting import Table, fmt_budget, pct
from repro.evaluation.harness import EvalContext
from repro.evaluation.sweepengine import measure_deduped
from repro.hardening.defenses import DefenseConfig
from repro.workloads.base import Benchmark
from repro.workloads.lmbench import LMBENCH_BENCHMARKS

#: The grid the paper's evaluation spans.
DEFAULT_BUDGETS = (0.9, 0.99, 0.999, 0.9999, 0.999999)


@dataclass
class SweepPoint:
    budget: float
    geomean: float
    overheads: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    defenses_label: str
    baseline_geomean: float  # unoptimized overhead for reference
    points: List[SweepPoint] = field(default_factory=list)
    #: unique measurement cells that actually ran (after dedup); a sweep
    #: with duplicate budgets has fewer cells than points + references
    cells_evaluated: int = 0

    def geomeans(self) -> Dict[float, float]:
        return {p.budget: p.geomean for p in self.points}

    def to_table(self) -> Table:
        table = Table(
            f"Budget sweep: {self.defenses_label}",
            ["budget", "geomean overhead"],
            notes=[
                f"unoptimized reference: {pct(self.baseline_geomean)}"
            ],
        )
        for point in self.points:
            table.add_row(fmt_budget(point.budget), pct(point.geomean))
        return table


def budget_sweep(
    ctx: EvalContext,
    defenses: DefenseConfig,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    benches: Optional[Sequence[Benchmark]] = None,
    lax_heuristics: bool = False,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Measure geomean overhead at each budget (ICP and inlining swept
    together, as in Table 5).

    The grid points are independent measurement cells, so the sweep goes
    through :meth:`EvalContext.measure_many` — with ``jobs > 1`` (or
    ``EvalSettings.jobs``) they run in parallel worker processes.
    Semantically equal cells (repeated budgets in ``budgets``, a swept
    config equal to a reference) are measured once via
    :func:`~repro.evaluation.sweepengine.measure_deduped` and the shared
    result fanned back out, so every requested budget still gets its
    :class:`SweepPoint`; :attr:`SweepResult.cells_evaluated` records how
    many unique cells actually ran.
    """
    benches = tuple(benches) if benches is not None else tuple(LMBENCH_BENCHMARKS)
    budget_configs = [
        PibeConfig.hardened(
            defenses,
            icp_budget=budget,
            inline_budget=budget,
            lax_heuristics=lax_heuristics,
        )
        for budget in budgets
    ]
    configs = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(defenses),
        *budget_configs,
    ]
    deduped = measure_deduped(ctx, configs, benches, jobs=jobs)
    measured = deduped.results
    lto = measured[0]
    unopt = build_overhead_report("unopt", lto, measured[1]).geomean
    result = SweepResult(
        defenses_label=defenses.label(),
        baseline_geomean=unopt,
        cells_evaluated=deduped.cells_evaluated,
    )
    for budget, config, values in zip(budgets, budget_configs, measured[2:]):
        report = build_overhead_report(config.label(), lto, values)
        result.points.append(
            SweepPoint(
                budget=budget,
                geomean=report.geomean,
                overheads=report.overheads(),
            )
        )
    return result
