"""JumpSwitches baseline (Amit et al., ATC'19) — paper Section 8.2.

JumpSwitches replace retpolines with *runtime* indirect-call promotion:
each call site learns its frequent targets and is live-patched into a
compare-and-direct-call chain; targets outside the learned set fall back
to a retpoline. Multi-target sites must periodically be downgraded into a
*learning* retpoline that re-observes targets — the effect the paper
identifies as JumpSwitches' weakness on LMBench's multi-target call paths
(Table 4), on top of live-patching synchronization costs (RCU stalls).

We model the mechanism as a timing-level state machine layered on a
retpolines-hardened kernel: the static image is identical (all icalls
carry the retpoline tag and remain Spectre-V2 protected), but the dynamic
cost of each defended indirect call follows the learn/patch/relearn
life cycle instead of a flat retpoline charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.timing import TimingModel
from repro.hardening.defenses import Defense
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_VCALL


@dataclass(frozen=True)
class JumpSwitchParams:
    """Tunables of the runtime promotion mechanism."""

    #: maximum learned targets patched into the inline chain
    max_inline_targets: int = 6
    #: invocations spent in learning mode once entered
    learning_window: int = 16
    #: a multi-target site is downgraded to learning every N invocations
    relearn_period: int = 512
    #: cycles to live-patch a site (amortized RCU synchronization)
    patch_cost: float = 180.0
    #: per-check compare cost in the patched chain
    check_cost: float = 1.2


@dataclass
class _SiteState:
    learned: List[str] = field(default_factory=list)
    learning_left: int = 0
    invocations: int = 0
    patches: int = 0
    fallback_hits: int = 0


class JumpSwitchTimingModel(TimingModel):
    """Timing model with runtime-promoted indirect calls.

    Applies to branches tagged with the retpoline defense (the image
    JumpSwitches runs on); everything else behaves as the base model.
    """

    def __init__(
        self,
        module: Module,
        costs: CostModel = DEFAULT_COSTS,
        params: JumpSwitchParams = JumpSwitchParams(),
        model_icache: bool = True,
    ) -> None:
        super().__init__(module, costs=costs, model_icache=model_icache)
        self.params = params
        self._sites: Dict[int, _SiteState] = {}
        self.total_patches = 0
        self.learning_invocations = 0

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        tag = inst.defense
        if tag != Defense.RETPOLINE.value:
            super().on_icall(inst, caller, callee)
            return

        self.counters["icalls"] += 1
        self.counters["defended_icalls"] += 1
        c = self.costs
        p = self.params
        assert inst.site_id is not None
        state = self._sites.setdefault(inst.site_id, _SiteState())
        state.invocations += 1
        if bool(inst.attrs.get(ATTR_VCALL)):
            self.cycles += c.vcall_extra_load

        # Periodic downgrade of multi-target sites into learning mode.
        if (
            len(state.learned) > 1
            and state.learning_left == 0
            and state.invocations % p.relearn_period == 0
        ):
            state.learned.clear()
            state.learning_left = p.learning_window
            state.patches += 1
            self.total_patches += 1
            self.cycles += p.patch_cost

        target = callee.name
        if state.learning_left > 0:
            # Learning retpoline: full retpoline cost while re-observing.
            self.learning_invocations += 1
            self.cycles += c.icall_predicted + c.defense_cost(tag)
            if target not in state.learned:
                if len(state.learned) >= p.max_inline_targets:
                    state.learned.pop(0)
                state.learned.append(target)
            state.learning_left -= 1
            if state.learning_left == 0:
                state.patches += 1
                self.total_patches += 1
                self.cycles += p.patch_cost
        elif target in state.learned:
            # Patched chain: one compare per entry ahead of the match.
            position = state.learned.index(target)
            self.cycles += p.check_cost * (position + 1) + c.call
        else:
            # Miss: retpoline fallback, then learn the new target.
            state.fallback_hits += 1
            self.cycles += c.icall_predicted + c.defense_cost(tag)
            if len(state.learned) >= p.max_inline_targets:
                state.learned.pop(0)
            state.learned.append(target)
            state.patches += 1
            self.total_patches += 1
            self.cycles += p.patch_cost

        # The call still pushes a return address.
        token = next(self._tokens)
        self._call_stack.append(token)
        self.rsb.push(token)
