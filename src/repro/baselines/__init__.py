"""Comparison baselines: JumpSwitches and RSB refilling."""

from repro.baselines.eibrs import (
    BTBPoisoningOrigin,
    EIBRS_MATRIX,
    EIBRSTimingModel,
    EIBRSVerdict,
    eibrs_blocks,
    simulate_eibrs_poisoning,
)
from repro.baselines.jumpswitches import (
    JumpSwitchParams,
    JumpSwitchTimingModel,
)
from repro.baselines.rsb_refill import (
    REFILL_COST_CYCLES,
    RSBAttackScenario,
    SCENARIO_MATRIX,
    ScenarioOutcome,
    simulate_refill_scenario,
)

__all__ = [
    "BTBPoisoningOrigin",
    "EIBRSTimingModel",
    "EIBRSVerdict",
    "EIBRS_MATRIX",
    "JumpSwitchParams",
    "JumpSwitchTimingModel",
    "REFILL_COST_CYCLES",
    "RSBAttackScenario",
    "SCENARIO_MATRIX",
    "ScenarioOutcome",
    "eibrs_blocks",
    "simulate_eibrs_poisoning",
    "simulate_refill_scenario",
]
