"""RSB refilling — the kernel's ad-hoc return-stack mitigation
(paper Section 6.4).

On every context switch the kernel stuffs the RSB with benign entries,
preventing the *next* thread from consuming entries planted by the
previous one. The paper's analysis, reproduced here: refilling defends
the cross-context-reuse scenario only; speculative pollution within the
victim's own context, direct return-address overwrites, and
call/ret-breaking constructs still land attacker entries on top of the
refilled stack. Return retpolines close all of these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.cpu.rsb import RSB

#: cycles to stuff a 16-entry RSB on context switch (Skylake-era estimate)
REFILL_COST_CYCLES = 40.0


class RSBAttackScenario(enum.Enum):
    """The RSB-poisoning avenues of Section 2.2."""

    CROSS_CONTEXT_REUSE = "cross_context_reuse"
    SPECULATIVE_POLLUTION = "speculative_pollution"
    DIRECT_OVERWRITE = "direct_overwrite"
    CALL_RET_MISMATCH = "call_ret_mismatch"
    UNDERFLOW_BTB_FALLBACK = "underflow_btb_fallback"


@dataclass(frozen=True)
class ScenarioOutcome:
    scenario: RSBAttackScenario
    defended_by_refill: bool
    defended_by_return_retpoline: bool
    note: str


#: The comparison matrix the paper's Section 6.4 argues in prose.
SCENARIO_MATRIX: Dict[RSBAttackScenario, ScenarioOutcome] = {
    RSBAttackScenario.CROSS_CONTEXT_REUSE: ScenarioOutcome(
        RSBAttackScenario.CROSS_CONTEXT_REUSE,
        defended_by_refill=True,
        defended_by_return_retpoline=True,
        note="refill replaces the previous thread's entries",
    ),
    RSBAttackScenario.SPECULATIVE_POLLUTION: ScenarioOutcome(
        RSBAttackScenario.SPECULATIVE_POLLUTION,
        defended_by_refill=False,
        defended_by_return_retpoline=True,
        note="speculatively pushed entries appear after the refill",
    ),
    RSBAttackScenario.DIRECT_OVERWRITE: ScenarioOutcome(
        RSBAttackScenario.DIRECT_OVERWRITE,
        defended_by_refill=False,
        defended_by_return_retpoline=True,
        note="software-stack overwrite desynchronizes regardless of refill",
    ),
    RSBAttackScenario.CALL_RET_MISMATCH: ScenarioOutcome(
        RSBAttackScenario.CALL_RET_MISMATCH,
        defended_by_refill=False,
        defended_by_return_retpoline=True,
        note="setjmp/longjmp-style constructs break call/ret pairing",
    ),
    RSBAttackScenario.UNDERFLOW_BTB_FALLBACK: ScenarioOutcome(
        RSBAttackScenario.UNDERFLOW_BTB_FALLBACK,
        defended_by_refill=True,
        defended_by_return_retpoline=True,
        note="refill was designed for exactly this case, but many "
        "processor lines never received the ad-hoc patches",
    ),
}


def simulate_refill_scenario(scenario: RSBAttackScenario) -> bool:
    """Drive the RSB model through one scenario under refilling; returns
    ``True`` if the attacker's entry is what the victim return consumes."""
    rsb = RSB(capacity=16)
    attacker = -0xBAD

    if scenario == RSBAttackScenario.CROSS_CONTEXT_REUSE:
        rsb.poison(attacker)       # planted by the previous thread
        rsb.refill(filler_token=0)  # context switch refill
        return rsb.peek() == attacker
    if scenario == RSBAttackScenario.SPECULATIVE_POLLUTION:
        rsb.refill(filler_token=0)
        rsb.poison(attacker)        # speculative calls push after refill
        return rsb.peek() == attacker
    if scenario == RSBAttackScenario.DIRECT_OVERWRITE:
        rsb.refill(filler_token=0)
        rsb.poison(attacker)        # mirrored overwrite of the return slot
        return rsb.peek() == attacker
    if scenario == RSBAttackScenario.CALL_RET_MISMATCH:
        rsb.refill(filler_token=0)
        rsb.poison(attacker)
        return rsb.peek() == attacker
    if scenario == RSBAttackScenario.UNDERFLOW_BTB_FALLBACK:
        rsb.refill(filler_token=0)  # no underflow after a refill
        return False
    raise ValueError(f"unknown scenario {scenario!r}")
