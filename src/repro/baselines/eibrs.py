"""Enhanced IBRS — the hardware Spectre V2 mitigation (paper Section 6.4).

On recent CPUs (Cascade Lake+) eIBRS can replace retpolines: indirect
branch predictions are isolated by privilege mode, so *userspace* cannot
poison kernel BTB entries. The paper notes two caveats the reproduction
models:

1. **Security**: eIBRS "does not prevent attacks that train on kernel
   execution" — an attacker who can steer kernel code (e.g. via a
   syscall that executes an aliasing kernel branch) still poisons
   same-mode entries. Our scenario matrix encodes exactly that split.
2. **Performance**: on most x86 CPUs the software mitigation is faster;
   eIBRS taxes every indirect branch *and* restricts the predictor in
   ways that slow surrounding code.

The timing hook is a :class:`TimingModel` subclass charging a flat
per-indirect-branch tax on an *unhardened* image (eIBRS needs no code
changes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.cpu.btb import BTB
from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.timing import TimingModel
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module

#: Per-indirect-branch tax of restricted prediction (Skylake-era microcode
#: measurements put IBRS-family mitigations at tens of cycles; eIBRS is
#: cheaper but not free).
EIBRS_ICALL_TAX = 8.0
EIBRS_RET_TAX = 1.0


class BTBPoisoningOrigin(enum.Enum):
    """Where the attacker trains the branch predictor from."""

    USERSPACE = "userspace"
    GUEST = "guest"
    KERNEL_EXECUTION = "kernel_execution"


@dataclass(frozen=True)
class EIBRSVerdict:
    origin: BTBPoisoningOrigin
    blocked: bool
    note: str


#: Section 6.4's analysis: mode isolation stops cross-privilege training,
#: but not same-mode (in-kernel) training.
EIBRS_MATRIX: Dict[BTBPoisoningOrigin, EIBRSVerdict] = {
    BTBPoisoningOrigin.USERSPACE: EIBRSVerdict(
        BTBPoisoningOrigin.USERSPACE,
        blocked=True,
        note="predictions are isolated per privilege mode",
    ),
    BTBPoisoningOrigin.GUEST: EIBRSVerdict(
        BTBPoisoningOrigin.GUEST,
        blocked=True,
        note="guest/host prediction domains are separated",
    ),
    BTBPoisoningOrigin.KERNEL_EXECUTION: EIBRSVerdict(
        BTBPoisoningOrigin.KERNEL_EXECUTION,
        blocked=False,
        note="same-mode training: an attacker steering kernel execution "
        "(e.g. through syscalls touching aliasing branches) still "
        "poisons entries the victim branch consumes",
    ),
}


def eibrs_blocks(origin: BTBPoisoningOrigin) -> bool:
    """Whether eIBRS stops BTB poisoning from the given origin."""
    return EIBRS_MATRIX[origin].blocked


def simulate_eibrs_poisoning(origin: BTBPoisoningOrigin) -> bool:
    """Drive the BTB model through one poisoning attempt under eIBRS;
    returns True if the attacker's entry is what the victim consumes."""
    kernel_btb = BTB(num_entries=512)
    victim_site = 42
    if origin == BTBPoisoningOrigin.KERNEL_EXECUTION:
        # aliasing kernel branch trained by attacker-steered execution
        aliasing_site = victim_site + 512
        kernel_btb.access(aliasing_site, "__attacker_gadget")
    else:
        # cross-mode training lands in a different prediction domain
        other_mode_btb = BTB(num_entries=512)
        other_mode_btb.poison(victim_site, "__attacker_gadget")
    return kernel_btb.predict(victim_site) == "__attacker_gadget"


class EIBRSTimingModel(TimingModel):
    """Timing under eIBRS: no code transformation, flat predictor tax."""

    def __init__(
        self,
        module: Module,
        costs: CostModel = DEFAULT_COSTS,
        model_icache: bool = True,
        icall_tax: float = EIBRS_ICALL_TAX,
        ret_tax: float = EIBRS_RET_TAX,
    ) -> None:
        super().__init__(module, costs=costs, model_icache=model_icache)
        self.icall_tax = icall_tax
        self.ret_tax = ret_tax

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        super().on_icall(inst, caller, callee)
        self.cycles += self.icall_tax

    def on_ret(self, inst: Instruction, func: Function) -> None:
        super().on_ret(inst, func)
        self.cycles += self.ret_tax
