"""Trace-driven cycle model: consumes interpreter events and accumulates a
cycle count, combining base instruction costs, BTB/RSB prediction,
per-defense flat charges (Table 1) and i-cache locality.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.cpu.btb import BTB
from repro.cpu.costs import DEFAULT_COSTS, CostModel, NONTRANSIENT_COSTS
from repro.cpu.icache import ICache
from repro.cpu.rsb import RSB
from repro.engine.trace import TraceSink
from repro.hardening.harden import applied_config
from repro.hardening.lowering import site_expansion_units
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_VCALL, INSTRUCTION_SIZE_BYTES


def function_footprint_bytes(func: Function) -> int:
    """Lowered code footprint: IR size plus defense expansion."""
    units = func.size()
    for inst in func.instructions():
        if inst.attrs.get("defense") is not None:
            units += site_expansion_units(inst)
    return units * INSTRUCTION_SIZE_BYTES


#: Footprints shared by every TimingModel over the same module build —
#: keyed by module identity, discarded when ``module.version`` moves.
_FOOTPRINT_CACHE: "WeakKeyDictionary[Module, Tuple[int, Dict[str, int]]]" = (
    WeakKeyDictionary()
)


def _module_footprints(module: Module) -> Dict[str, int]:
    version = getattr(module, "version", 0)
    entry = _FOOTPRINT_CACHE.get(module)
    if entry is None or entry[0] != version:
        entry = (version, {})
        _FOOTPRINT_CACHE[module] = entry
    return entry[1]


class TimingModel(TraceSink):
    """Cycle-accounting trace sink.

    Parameters
    ----------
    module:
        The program being executed (provides defense config and function
        footprints).
    costs:
        Timing constants; defaults to the Table 1 calibration.
    model_icache:
        Disable to measure pure branch economics (used by the Table 1
        microbenchmarks, which run fully warm).
    """

    def __init__(
        self,
        module: Module,
        costs: CostModel = DEFAULT_COSTS,
        model_icache: bool = True,
    ) -> None:
        self.module = module
        self.costs = costs
        self.cycles = 0.0
        self.ops = 0
        config = applied_config(module)
        self._ambient = [
            NONTRANSIENT_COSTS[d] for d in sorted(
                config.nontransient, key=lambda d: d.value
            )
        ]
        self.btb = BTB()
        self.rsb = RSB()
        self.icache: Optional[ICache] = None
        if model_icache:
            self.icache = ICache(
                footprint_of=self._footprint,
                capacity_bytes=costs.icache_capacity_bytes,
                line_bytes=costs.icache_line_bytes,
                miss_base=costs.icache_miss_base,
                miss_per_line=costs.icache_miss_per_line,
                max_lines_charged=costs.icache_max_lines_charged,
            )
        self._tokens = itertools.count(1)
        self._call_stack: List[int] = []
        self.counters: Dict[str, int] = {
            "calls": 0,
            "icalls": 0,
            "rets": 0,
            "defended_icalls": 0,
            "defended_rets": 0,
            "ijumps": 0,
        }
        #: cycles charged purely for defense instrumentation, per tag —
        #: the quantity PIBE's elimination minimizes
        self.defense_cycles_charged: Dict[str, float] = {}

    def _charge_defense(self, tag: str) -> float:
        cost = self.costs.defense_cost(tag)
        self.defense_cycles_charged[tag] = (
            self.defense_cycles_charged.get(tag, 0.0) + cost
        )
        return cost

    @property
    def total_defense_cycles(self) -> float:
        return sum(self.defense_cycles_charged.values())

    # -- footprint resolution ---------------------------------------------

    def _footprint(self, name: str) -> int:
        shared = _module_footprints(self.module)
        fp = shared.get(name)
        if fp is None:
            func = self.module.functions.get(name)
            fp = (
                INSTRUCTION_SIZE_BYTES
                if func is None
                else function_footprint_bytes(func)
            )
            shared[name] = fp
        return fp

    # -- trace sink callbacks -----------------------------------------------

    def on_run_start(self, entry: str) -> None:
        self.ops += 1
        self.cycles += self.costs.kernel_entry
        token = next(self._tokens)
        self._call_stack.append(token)
        self.rsb.push(token)

    def on_run_end(self, entry: str) -> None:
        if self._call_stack:
            self._call_stack.pop()

    def on_enter(self, func: Function) -> None:
        if self.icache is not None:
            self.cycles += self.icache.enter(func.name)

    def on_mix(
        self, arith: int, load: int, store: int, cmp: int, fence: int, br: int
    ) -> None:
        c = self.costs
        self.cycles += (
            arith * c.arith
            + load * c.load
            + store * c.store
            + cmp * c.cmp
            + fence * c.fence
            + br * c.branch
        )

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        self.counters["calls"] += 1
        self.cycles += self.costs.call
        for ambient in self._ambient:
            self.cycles += ambient.dcall
        token = next(self._tokens)
        self._call_stack.append(token)
        self.rsb.push(token)

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        self.counters["icalls"] += 1
        c = self.costs
        is_vcall = bool(inst.attrs.get(ATTR_VCALL))
        if is_vcall:
            self.cycles += c.vcall_extra_load
        tag = inst.attrs.get("defense")
        if tag is not None:
            self.counters["defended_icalls"] += 1
            # Defense inhibits target prediction: flat charge, no BTB.
            self.cycles += c.icall_predicted + self._charge_defense(tag)
        else:
            assert inst.site_id is not None
            if self.btb.access(inst.site_id, callee.name):
                self.cycles += c.icall_predicted
            else:
                self.cycles += c.icall_predicted + c.btb_miss
        for ambient in self._ambient:
            self.cycles += ambient.vcall if is_vcall else ambient.icall
        token = next(self._tokens)
        self._call_stack.append(token)
        self.rsb.push(token)

    def on_ret(self, inst: Instruction, func: Function) -> None:
        self.counters["rets"] += 1
        c = self.costs
        stack = self._call_stack
        actual = stack.pop() if stack else -1
        tag = inst.attrs.get("defense")
        if tag is not None:
            self.counters["defended_rets"] += 1
            # Defended returns do not consult the RSB for prediction; keep
            # the model's RSB in sync without scoring it.
            if self.rsb.depth:
                self.rsb.pop_silent()
            self.cycles += c.ret + self._charge_defense(tag)
        else:
            if self.rsb.pop_predict(actual):
                self.cycles += c.ret
            else:
                self.cycles += c.ret + c.rsb_miss

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        self.counters["ijumps"] += 1
        c = self.costs
        tag = inst.attrs.get("defense")
        if tag is not None:
            self.cycles += c.ijump_predicted + self._charge_defense(tag)
        else:
            self.cycles += c.ijump_predicted
        # Jump-table dispatch includes the bounds check + table load in IR.

    # -- results ---------------------------------------------------------------

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    def __repr__(self) -> str:
        return (
            f"<TimingModel cycles={self.cycles:.0f} ops={self.ops} "
            f"per-op={self.cycles_per_op:.1f}>"
        )
