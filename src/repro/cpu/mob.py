"""Memory Order Buffer model (paper Section 2.2, LVI background).

The MOB predicts store-to-load dependencies and forwards buffered store
data to dependent loads. LVI abuses exactly this: when a load *faults* (or
takes a microcode assist), the CPU may transiently serve it stale or
attacker-planted data from the MOB's internal buffers — including branch
targets, turning a faulting ``ret``/``call`` load into a transient jump to
an attacker value. An LFENCE before the consuming branch forces the load
to retire first, closing the window.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class LoadResult(NamedTuple):
    """Outcome of a (possibly faulting) load through the MOB."""

    value: str
    transient: bool  # True if the value was injected, not architectural


class MOB:
    """Store buffer with store-to-load forwarding and LVI injection."""

    def __init__(self, capacity: int = 56) -> None:
        self.capacity = capacity
        self._buffer: Dict[int, str] = {}
        self.forwards = 0
        self.injections = 0

    def store(self, address: int, value: str) -> None:
        if len(self._buffer) >= self.capacity:
            # Drain the oldest entry to architectural state (we just drop
            # it; architectural memory is out of scope for the model).
            self._buffer.pop(next(iter(self._buffer)))
        self._buffer[address] = value

    def load(
        self,
        address: int,
        architectural_value: str,
        faulting: bool = False,
        fenced: bool = False,
    ) -> LoadResult:
        """Perform a load.

        A faulting, unfenced load may transiently consume attacker-planted
        buffer contents (LVI); a fence forces the architectural value.
        """
        if fenced:
            return LoadResult(architectural_value, transient=False)
        forwarded = self._buffer.get(address)
        if forwarded is not None:
            self.forwards += 1
            if faulting and forwarded != architectural_value:
                self.injections += 1
                return LoadResult(forwarded, transient=True)
            return LoadResult(forwarded, transient=False)
        return LoadResult(architectural_value, transient=False)

    def plant(self, address: int, attacker_value: str) -> None:
        """LVI setup: get attacker data into the forwarding buffers."""
        self.store(address, attacker_value)

    def __repr__(self) -> str:
        return (
            f"<MOB entries={len(self._buffer)} forwards={self.forwards} "
            f"injections={self.injections}>"
        )
