"""Cycle-cost model calibrated against the paper's Table 1.

Table 1 measured per-branch overheads on an i7-8700 (Skylake): each defense
adds a roughly flat number of clock ticks per protected branch. The model
reproduces those constants directly — per-tag flat costs layered on top of
base instruction costs and predictor hit/miss charges — so the
microbenchmark harness regenerating Table 1 recovers them, and the kernel
benchmarks inherit the same per-branch economics the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardening.defenses import Defense, NonTransientDefense


@dataclass(frozen=True)
class NonTransientCosts:
    """Per-call-type extra ticks for a classical defense (Table 1 rows)."""

    dcall: float
    icall: float
    vcall: float


#: Table 1: LLVM-CFI 2/3/1, stackprotector 4/4/4, safestack 2/1/1.
NONTRANSIENT_COSTS: Dict[NonTransientDefense, NonTransientCosts] = {
    NonTransientDefense.LLVM_CFI: NonTransientCosts(2.0, 3.0, 1.0),
    NonTransientDefense.STACKPROTECTOR: NonTransientCosts(4.0, 4.0, 4.0),
    NonTransientDefense.SAFESTACK: NonTransientCosts(2.0, 1.0, 1.0),
}


@dataclass(frozen=True)
class CostModel:
    """All timing constants, in clock cycles."""

    # -- base instruction costs -------------------------------------------
    arith: float = 1.3
    cmp: float = 1.2
    load: float = 3.8
    store: float = 1.3
    fence: float = 10.0
    branch: float = 1.4  # conditional branch incl. avg PHT misprediction
    call: float = 0.8
    ret: float = 0.8
    icall_predicted: float = 2.5
    ijump_predicted: float = 2.0
    vcall_extra_load: float = 3.8  # vtable fetch

    # -- predictor miss penalties -------------------------------------------
    btb_miss: float = 12.0
    rsb_miss: float = 16.0

    # -- kernel entry/exit (mode switch) per operation -----------------------
    kernel_entry: float = 170.0

    # -- i-cache --------------------------------------------------------------
    icache_capacity_bytes: int = 32 * 1024
    icache_line_bytes: int = 64
    icache_miss_base: float = 12.0
    icache_miss_per_line: float = 0.8
    icache_max_lines_charged: int = 48

    # -- per-defense flat extra cycles per protected branch (Table 1) --------
    defense_cycles: Dict[str, float] = field(
        default_factory=lambda: {
            Defense.RETPOLINE.value: 21.0,
            Defense.LVI_CFI_FWD.value: 9.0,
            Defense.LVI_CFI_RET.value: 11.0,
            Defense.RET_RETPOLINE.value: 16.0,
            Defense.FENCED_RETPOLINE.value: 40.0,
            Defense.RET_RETPOLINE_LVI.value: 30.0,
        }
    )

    def defense_cost(self, tag: str) -> float:
        try:
            return self.defense_cycles[tag]
        except KeyError:
            from repro.hardening.custom import custom_defense_cost

            cost = custom_defense_cost(tag)
            if cost is not None:
                return cost
            raise KeyError(f"unknown defense tag {tag!r}") from None

    def nontransient_cost(
        self, defense: NonTransientDefense, call_type: str
    ) -> float:
        costs = NONTRANSIENT_COSTS[defense]
        return getattr(costs, call_type)


#: Shared default instance.
DEFAULT_COSTS = CostModel()
