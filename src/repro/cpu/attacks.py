"""Transient control-flow hijacking attack simulations (paper Sections 2, 6).

Three adversaries, one per microarchitectural vector:

- :class:`SpectreV2Attack` — poisons the BTB entry a victim indirect
  call/jump aliases to; succeeds if the victim branch's lowering still
  consults the BTB (raw icall, jump-table ijump, or LVI-CFI's bare
  ``jmpq *reg``, which the paper notes remains BTB-predicted).
- :class:`Ret2specAttack` — desynchronizes the RSB; succeeds against raw
  returns (and against RSB-refilled kernels in the scenarios refilling
  does not cover); fails against return retpolines, which force the
  speculation into a capture loop.
- :class:`LVIAttack` — plants a value in the MOB so a faulting branch-
  target load transiently consumes it; succeeds unless the lowering
  fences the load before the transfer.

Each attack exposes a static census (``hijackable_sites``) used by the
security evaluation, and a dynamic ``attempt`` that walks the predictor
models end-to-end for demos and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.btb import BTB
from repro.cpu.mob import MOB
from repro.cpu.rsb import RSB
from repro.hardening.defenses import LVI_SAFE, RSB_SAFE, SPECTRE_V2_SAFE
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode

#: Name used for the attacker's landing gadget in simulations.
ATTACKER_GADGET = "__attacker_gadget"


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one simulated attack attempt."""

    vector: str
    success: bool
    site_id: Optional[int]
    function: str
    speculative_target: Optional[str]
    detail: str


class TransientAttack:
    """Shared census machinery."""

    vector = "abstract"
    safe_tags = frozenset()
    victim_opcodes = frozenset()

    def _boot_exempt(self, func) -> bool:
        return func.has_attr(FunctionAttr.BOOT_ONLY)

    def hijackable_sites(self, module: Module) -> List[Tuple[str, Instruction]]:
        """Static census: (function, instruction) pairs this vector can steer."""
        result: List[Tuple[str, Instruction]] = []
        for func in module:
            if self._boot_exempt(func):
                continue
            for inst in func.instructions():
                if self.is_vulnerable(inst):
                    result.append((func.name, inst))
        return result

    def is_vulnerable(self, inst: Instruction) -> bool:
        if inst.opcode not in self.victim_opcodes:
            return False
        tag = inst.defense
        if tag is None:
            return True
        if tag in self.safe_tags:
            return False
        from repro.hardening.custom import custom_tag_protects

        return not custom_tag_protects(tag, self.vector)


class SpectreV2Attack(TransientAttack):
    """BTB poisoning against indirect calls and jumps."""

    vector = "spectre_v2"
    safe_tags = SPECTRE_V2_SAFE
    victim_opcodes = frozenset({Opcode.ICALL, Opcode.IJUMP})

    def attempt(
        self, module: Module, func_name: str, inst: Instruction, btb: Optional[BTB] = None
    ) -> AttackOutcome:
        btb = btb or BTB()
        site = inst.site_id if inst.site_id is not None else id(inst) % btb.num_entries
        btb.poison(site, ATTACKER_GADGET)
        if self.is_vulnerable(inst):
            speculative = btb.predict(site)
            return AttackOutcome(
                self.vector,
                success=speculative == ATTACKER_GADGET,
                site_id=inst.site_id,
                function=func_name,
                speculative_target=speculative,
                detail="victim consumed poisoned BTB entry before resolution",
            )
        return AttackOutcome(
            self.vector,
            success=False,
            site_id=inst.site_id,
            function=func_name,
            speculative_target=None,
            detail=(
                f"lowering {inst.defense!r} does not consult the BTB: "
                "speculation is trapped in the retpoline capture loop"
            ),
        )


class Ret2specAttack(TransientAttack):
    """RSB poisoning against return instructions."""

    vector = "ret2spec"
    safe_tags = RSB_SAFE
    victim_opcodes = frozenset({Opcode.RET})

    def attempt(
        self,
        module: Module,
        func_name: str,
        inst: Instruction,
        rsb: Optional[RSB] = None,
        rsb_refilled: bool = False,
    ) -> AttackOutcome:
        rsb = rsb or RSB()
        attacker_token = -0xBAD
        if rsb_refilled:
            # Refilling stuffs benign entries — defends cross-context reuse
            # but not in-context speculative pollution (Section 6.4).
            rsb.refill(filler_token=0)
        rsb.poison(attacker_token)
        if self.is_vulnerable(inst):
            predicted = rsb.peek()
            return AttackOutcome(
                self.vector,
                success=predicted == attacker_token,
                site_id=None,
                function=func_name,
                speculative_target=ATTACKER_GADGET if predicted == attacker_token else None,
                detail="return mispredicted into attacker-planted RSB entry",
            )
        return AttackOutcome(
            self.vector,
            success=False,
            site_id=None,
            function=func_name,
            speculative_target=None,
            detail=(
                "return retpoline pins the RSB top to its own capture loop; "
                "misspeculation cannot escape"
            ),
        )


class LVIAttack(TransientAttack):
    """Load Value Injection against indirect-branch target loads."""

    vector = "lvi"
    safe_tags = LVI_SAFE
    victim_opcodes = frozenset({Opcode.ICALL, Opcode.RET, Opcode.IJUMP})

    def attempt(
        self, module: Module, func_name: str, inst: Instruction, mob: Optional[MOB] = None
    ) -> AttackOutcome:
        mob = mob or MOB()
        target_slot = 0x7F00
        mob.plant(target_slot, ATTACKER_GADGET)
        fenced = not self.is_vulnerable(inst)
        result = mob.load(
            target_slot,
            architectural_value="__legitimate_target",
            faulting=True,
            fenced=fenced,
        )
        return AttackOutcome(
            self.vector,
            success=result.transient,
            site_id=inst.site_id,
            function=func_name,
            speculative_target=result.value if result.transient else None,
            detail=(
                "faulting target load transiently consumed injected value"
                if result.transient
                else "LFENCE forced the target load to retire before transfer"
            ),
        )


ALL_ATTACKS = (SpectreV2Attack(), Ret2specAttack(), LVIAttack())


def attack_surface(module: Module) -> dict:
    """Per-vector count of hijackable sites (security-evaluation summary)."""
    return {
        attack.vector: len(attack.hijackable_sites(module))
        for attack in ALL_ATTACKS
    }
