"""Return Stack Buffer model (paper Section 2.2).

A small per-core LIFO of return addresses (typically 16 entries). ``call``
pushes; ``ret`` pops and predicts. Misprediction sources modelled:

- **underflow** — deep call chains overflow the buffer, so the outermost
  returns pop an empty (or stale) stack;
- **poisoning** — an attacker desynchronizes the RSB from the software
  stack (Ret2spec/SpectreRSB), e.g. via speculative pollution or reuse
  across contexts.
"""

from __future__ import annotations

from typing import List, Optional


class RSB:
    """Bounded return-address stack."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("RSB capacity must be positive")
        self.capacity = capacity
        self._stack: List[int] = []
        self.hits = 0
        self.misses = 0
        self.underflows = 0
        self.overflow_drops = 0

    def push(self, return_token: int) -> None:
        """A call executed; push its return address token."""
        if len(self._stack) >= self.capacity:
            # Oldest entry falls off the bottom (circular buffer).
            del self._stack[0]
            self.overflow_drops += 1
        self._stack.append(return_token)

    def pop_predict(self, actual_token: int) -> bool:
        """A return executed; predict from the top of the stack.

        Returns ``True`` if the prediction matches the actual return.
        """
        if not self._stack:
            self.underflows += 1
            self.misses += 1
            return False
        predicted = self._stack.pop()
        if predicted == actual_token:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def pop_silent(self) -> Optional[int]:
        """Pop without scoring — used for defended returns that bypass RSB
        prediction but still consume stack alignment."""
        return self._stack.pop() if self._stack else None

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def poison(self, attacker_token: int) -> None:
        """Ret2spec: plant an attacker-controlled entry on top."""
        if len(self._stack) >= self.capacity:
            del self._stack[0]
        self._stack.append(attacker_token)

    def refill(self, filler_token: int = -1) -> None:
        """Kernel RSB-refilling mitigation: stuff the buffer with benign
        entries on context switch (Section 6.4)."""
        self._stack = [filler_token] * self.capacity

    def flush(self) -> None:
        self._stack.clear()

    @property
    def depth(self) -> int:
        return len(self._stack)

    def __repr__(self) -> str:
        return (
            f"<RSB depth={len(self._stack)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
