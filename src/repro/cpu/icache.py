"""Instruction-cache locality model.

Inlining trades call/return overhead for code growth; past some point the
hot working set no longer fits the i-cache and performance degrades — the
diminishing-returns effect behind the paper's Rules 2 and 3 and the size
measurements of Table 12. We model this at function granularity: an LRU
set of function footprints charged on entry, with the per-entry charge
capped (one invocation touches at most its executed path, not the whole
body of a huge merged function).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict


class ICache:
    """LRU instruction cache over function footprints.

    Parameters
    ----------
    capacity_bytes / line_bytes:
        Geometry (32 KiB / 64 B by default, Skylake L1i).
    footprint_of:
        Callback mapping a function name to its code footprint in bytes
        (resolved lazily and cached).
    miss_base / miss_per_line / max_lines_charged:
        Cost shape of a cold entry.
    """

    def __init__(
        self,
        footprint_of: Callable[[str], int],
        capacity_bytes: int = 32 * 1024,
        line_bytes: int = 64,
        miss_base: float = 12.0,
        miss_per_line: float = 0.8,
        max_lines_charged: int = 48,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.miss_base = miss_base
        self.miss_per_line = miss_per_line
        self.max_lines_charged = max_lines_charged
        self._footprint_of = footprint_of
        self._footprints: Dict[str, int] = {}
        self._resident: "OrderedDict[str, int]" = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _footprint(self, name: str) -> int:
        fp = self._footprints.get(name)
        if fp is None:
            fp = max(self._footprint_of(name), self.line_bytes)
            self._footprints[name] = fp
        return fp

    def enter(self, name: str) -> float:
        """Charge for entering function ``name``; returns miss cycles."""
        if name in self._resident:
            self._resident.move_to_end(name)
            self.hits += 1
            return 0.0
        self.misses += 1
        footprint = min(self._footprint(name), self.capacity_bytes)
        while self._used_bytes + footprint > self.capacity_bytes and self._resident:
            _evicted, size = self._resident.popitem(last=False)
            self._used_bytes -= size
            self.evictions += 1
        self._resident[name] = footprint
        self._used_bytes += footprint
        lines = min(
            footprint // self.line_bytes + 1, self.max_lines_charged
        )
        return self.miss_base + self.miss_per_line * lines

    def invalidate(self) -> None:
        self._resident.clear()
        self._used_bytes = 0

    @property
    def resident_bytes(self) -> int:
        return self._used_bytes

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<ICache used={self._used_bytes}/{self.capacity_bytes}B "
            f"hits={self.hits} misses={self.misses}>"
        )
