"""Counting-mode cost model: cycles as a pure function of event counts.

The stateful :class:`~repro.cpu.timing.TimingModel` replays an execution
event by event, threading BTB/RSB/i-cache state through the stream — the
right model for studying predictor economics, but inherently sequential:
every event costs a Python callback. Counting mode is the measurement
contract of the vectorized engine (:mod:`repro.engine.vectorized`): all
predictors run *warm* (defended branches take their flat Table-1 charge,
undefended branches their predicted-hit cost, no i-cache), so total cycles
reduce to a dot product of integer event counts with per-bucket unit
costs.

Two producers feed the same accounting:

- :class:`CountingTimingModel` used as an ordinary trace sink (reference
  or compiled engine) increments one integer bucket per event;
- the vectorized engine accumulates per-superblock execution counts and
  delivers the very same integer buckets in one batch via
  :meth:`CountingTimingModel.absorb_counts`.

Because both paths produce identical integer :class:`CountSummary`
buckets and cycles are computed by the *single* canonical
:func:`counting_cycles` formula (fixed iteration order), the resulting
floats are bit-identical across engines — the property the differential
tests in ``tests/engine/test_vectorized.py`` pin.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.costs import DEFAULT_COSTS, NONTRANSIENT_COSTS, CostModel
from repro.engine.trace import TraceSink
from repro.hardening.harden import applied_config
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_VCALL

#: Bucket key for an indirect call: ``(defense tag or None, is_vcall)``.
IcallKey = Tuple[Optional[str], bool]


class CountSummary:
    """Integer event totals of one (partial) execution.

    Everything a counting-mode measurement needs is here: straight-line
    instruction totals, control-flow event counts, and per-defense-tag
    breakdowns for indirect calls, returns and indirect jumps. Summaries
    add; they never carry floats.
    """

    __slots__ = (
        "ops",
        "enters",
        "arith",
        "load",
        "store",
        "cmp",
        "fence",
        "br",
        "calls",
        "icalls",
        "rets",
        "ijumps",
    )

    def __init__(self) -> None:
        self.ops = 0
        self.enters = 0
        self.arith = 0
        self.load = 0
        self.store = 0
        self.cmp = 0
        self.fence = 0
        self.br = 0
        self.calls = 0
        self.icalls: Dict[IcallKey, int] = {}
        self.rets: Dict[Optional[str], int] = {}
        self.ijumps: Dict[Optional[str], int] = {}

    # -- algebra -----------------------------------------------------------

    def add(self, other: "CountSummary") -> None:
        self.ops += other.ops
        self.enters += other.enters
        self.arith += other.arith
        self.load += other.load
        self.store += other.store
        self.cmp += other.cmp
        self.fence += other.fence
        self.br += other.br
        self.calls += other.calls
        for key, n in other.icalls.items():
            self.icalls[key] = self.icalls.get(key, 0) + n
        for tag, n in other.rets.items():
            self.rets[tag] = self.rets.get(tag, 0) + n
        for tag, n in other.ijumps.items():
            self.ijumps[tag] = self.ijumps.get(tag, 0) + n

    def add_scaled(self, other: "CountSummary", k: int) -> None:
        """Accumulate ``k`` executions' worth of ``other`` — the pure-python
        half of the vectorized engine's count flush."""
        self.ops += other.ops * k
        self.enters += other.enters * k
        self.arith += other.arith * k
        self.load += other.load * k
        self.store += other.store * k
        self.cmp += other.cmp * k
        self.fence += other.fence * k
        self.br += other.br * k
        self.calls += other.calls * k
        for key, n in other.icalls.items():
            self.icalls[key] = self.icalls.get(key, 0) + n * k
        for tag, n in other.rets.items():
            self.rets[tag] = self.rets.get(tag, 0) + n * k
        for tag, n in other.ijumps.items():
            self.ijumps[tag] = self.ijumps.get(tag, 0) + n * k

    # -- views -------------------------------------------------------------

    @property
    def instructions(self) -> int:
        """Straight-line instructions executed (mix totals)."""
        return (
            self.arith + self.load + self.store + self.cmp + self.fence
            + self.br
        )

    def total_events(self) -> int:
        """The engine's unit of work: every simulated instruction and
        control-flow event, regardless of how it was delivered."""
        return (
            self.ops
            + self.enters
            + self.instructions
            + self.calls
            + sum(self.icalls.values())
            + sum(self.rets.values())
            + sum(self.ijumps.values())
        )

    def counters(self) -> Dict[str, int]:
        """The :class:`~repro.cpu.timing.TimingModel`-compatible counter
        dict (calls/icalls/rets/defended_*/ijumps)."""
        icalls = sum(self.icalls.values())
        defended_icalls = sum(
            n for (tag, _), n in self.icalls.items() if tag is not None
        )
        rets = sum(self.rets.values())
        defended_rets = sum(
            n for tag, n in self.rets.items() if tag is not None
        )
        return {
            "calls": self.calls,
            "icalls": icalls,
            "rets": rets,
            "defended_icalls": defended_icalls,
            "defended_rets": defended_rets,
            "ijumps": sum(self.ijumps.values()),
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (tag keys flattened) for bench records."""
        return {
            "ops": self.ops,
            "enters": self.enters,
            "arith": self.arith,
            "load": self.load,
            "store": self.store,
            "cmp": self.cmp,
            "fence": self.fence,
            "br": self.br,
            "calls": self.calls,
            "icalls": {
                f"{tag or '-'}|{'v' if vcall else 'i'}": n
                for (tag, vcall), n in sorted(
                    self.icalls.items(), key=lambda kv: str(kv[0])
                )
            },
            "rets": {
                tag or "-": n for tag, n in sorted(
                    self.rets.items(), key=lambda kv: str(kv[0])
                )
            },
            "ijumps": {
                tag or "-": n for tag, n in sorted(
                    self.ijumps.items(), key=lambda kv: str(kv[0])
                )
            },
            "total_events": self.total_events(),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountSummary):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in CountSummary.__slots__
        )

    def __repr__(self) -> str:
        return (
            f"<CountSummary ops={self.ops} events={self.total_events()}>"
        )


def ambient_costs(module: Module):
    """The module's classical-defense ambient cost rows, in the same
    canonical order :class:`~repro.cpu.timing.TimingModel` charges them."""
    config = applied_config(module)
    return [
        NONTRANSIENT_COSTS[d]
        for d in sorted(config.nontransient, key=lambda d: d.value)
    ]


def defense_cycles_charged(
    summary: CountSummary, costs: CostModel
) -> Dict[str, float]:
    """Per-tag defense instrumentation cycles — the quantity PIBE's
    elimination minimizes — as ``count x flat cost``."""
    per_tag: Dict[str, int] = {}
    for (tag, _), n in summary.icalls.items():
        if tag is not None:
            per_tag[tag] = per_tag.get(tag, 0) + n
    for tag, n in summary.rets.items():
        if tag is not None:
            per_tag[tag] = per_tag.get(tag, 0) + n
    for tag, n in summary.ijumps.items():
        if tag is not None:
            per_tag[tag] = per_tag.get(tag, 0) + n
    return {
        tag: per_tag[tag] * costs.defense_cost(tag)
        for tag in sorted(per_tag)
    }


def counting_cycles(
    summary: CountSummary, costs: CostModel, ambient
) -> float:
    """The canonical counting-mode cycle formula.

    Every counting-mode consumer — the sink accumulating events one by
    one and the vectorized engine delivering batched totals — computes
    cycles through this one function, so identical integer summaries
    yield bit-identical floats. Iteration over tag buckets is in sorted
    order for the same reason: float addition is not associative.
    """
    c = costs
    cycles = summary.ops * c.kernel_entry
    cycles += (
        summary.arith * c.arith
        + summary.load * c.load
        + summary.store * c.store
        + summary.cmp * c.cmp
        + summary.fence * c.fence
        + summary.br * c.branch
    )
    dcall_ambient = sum(a.dcall for a in ambient)
    icall_ambient = sum(a.icall for a in ambient)
    vcall_ambient = sum(a.vcall for a in ambient)
    cycles += summary.calls * (c.call + dcall_ambient)
    for (tag, vcall), n in sorted(
        summary.icalls.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
    ):
        unit = c.icall_predicted
        if vcall:
            unit += c.vcall_extra_load + vcall_ambient
        else:
            unit += icall_ambient
        if tag is not None:
            unit += c.defense_cost(tag)
        cycles += n * unit
    for tag, n in sorted(summary.rets.items(), key=lambda kv: str(kv[0])):
        unit = c.ret
        if tag is not None:
            unit += c.defense_cost(tag)
        cycles += n * unit
    for tag, n in sorted(summary.ijumps.items(), key=lambda kv: str(kv[0])):
        unit = c.ijump_predicted
        if tag is not None:
            unit += c.defense_cost(tag)
        cycles += n * unit
    return cycles


class CountingTimingModel(TraceSink):
    """Counting-mode cycle accounting, usable under any engine.

    As a plain trace sink (reference/compiled engines) it tallies one
    integer bucket per event. Under the vectorized engine it additionally
    receives batched :class:`CountSummary` deltas through
    :meth:`absorb_counts`; the engine binds :meth:`bind_flush` so reads
    of :attr:`cycles`/:attr:`counters` first drain any counts still held
    in the engine's vectors. The two delivery paths mix freely (the
    engine falls back to per-event delivery for behavior the vector path
    cannot express) and always sum to the same totals.
    """

    #: Marks this sink as able to consume batched count summaries — the
    #: vectorized engine's condition for keeping its vector path enabled.
    supports_counts = True

    def __init__(
        self, module: Module, costs: CostModel = DEFAULT_COSTS
    ) -> None:
        self.module = module
        self.costs = costs
        self.summary = CountSummary()
        self._ambient = ambient_costs(module)
        self._flush: Optional[Callable[[], None]] = None

    # -- batched delivery (vectorized engine) ------------------------------

    def bind_flush(self, flush: Callable[[], None]) -> None:
        """Called by the vectorized engine so property reads can drain
        counts still sitting in the engine's accumulators."""
        self._flush = flush

    def absorb_counts(self, summary: CountSummary) -> None:
        self.summary.add(summary)

    def _drain(self) -> None:
        if self._flush is not None:
            self._flush()

    # -- per-event delivery (reference/compiled engines, fallbacks) --------

    def on_run_start(self, entry: str) -> None:
        self.summary.ops += 1

    def on_enter(self, func: Function) -> None:
        self.summary.enters += 1

    def on_mix(
        self, arith: int, load: int, store: int, cmp: int, fence: int, br: int
    ) -> None:
        s = self.summary
        s.arith += arith
        s.load += load
        s.store += store
        s.cmp += cmp
        s.fence += fence
        s.br += br

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        self.summary.calls += 1

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        key = (inst.attrs.get("defense"), bool(inst.attrs.get(ATTR_VCALL)))
        icalls = self.summary.icalls
        icalls[key] = icalls.get(key, 0) + 1

    def on_ret(self, inst: Instruction, func: Function) -> None:
        tag = inst.attrs.get("defense")
        rets = self.summary.rets
        rets[tag] = rets.get(tag, 0) + 1

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        tag = inst.attrs.get("defense")
        ijumps = self.summary.ijumps
        ijumps[tag] = ijumps.get(tag, 0) + 1

    # -- results -----------------------------------------------------------

    @property
    def ops(self) -> int:
        self._drain()
        return self.summary.ops

    @property
    def cycles(self) -> float:
        self._drain()
        return counting_cycles(self.summary, self.costs, self._ambient)

    @property
    def cycles_per_op(self) -> float:
        ops = self.ops
        return self.cycles / ops if ops else 0.0

    @property
    def counters(self) -> Dict[str, int]:
        self._drain()
        return self.summary.counters()

    @property
    def defense_cycles_charged(self) -> Dict[str, float]:
        self._drain()
        return defense_cycles_charged(self.summary, self.costs)

    @property
    def total_defense_cycles(self) -> float:
        charged = self.defense_cycles_charged
        return sum(charged[tag] for tag in sorted(charged))

    @property
    def total_events(self) -> int:
        self._drain()
        return self.summary.total_events()

    def __repr__(self) -> str:
        return (
            f"<CountingTimingModel cycles={self.cycles:.0f} "
            f"ops={self.ops} events={self.total_events}>"
        )
