"""Pattern History Table model (paper Section 6.1, Spectre V1 background).

Two-bit saturating counters indexed by branch site. PIBE deliberately does
not defend conditional branches (static analysis handles Spectre V1), so
the PHT participates in the attack demonstrations but only contributes an
averaged misprediction charge to timing.
"""

from __future__ import annotations

from typing import Dict


class PHT:
    """Two-bit saturating-counter branch predictor."""

    STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = range(4)

    def __init__(self, num_entries: int = 16384) -> None:
        if num_entries <= 0:
            raise ValueError("PHT must have at least one entry")
        self.num_entries = num_entries
        self._counters: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def _index(self, site: int) -> int:
        return site % self.num_entries

    def predict(self, site: int) -> bool:
        """Predicted direction (``True`` = taken)."""
        return self._counters.get(self._index(site), self.WEAK_TAKEN) >= self.WEAK_TAKEN

    def access(self, site: int, taken: bool) -> bool:
        """Predict, score, and train. Returns prediction correctness."""
        idx = self._index(site)
        counter = self._counters.get(idx, self.WEAK_TAKEN)
        predicted = counter >= self.WEAK_TAKEN
        correct = predicted == taken
        if correct:
            self.hits += 1
        else:
            self.misses += 1
        if taken:
            counter = min(counter + 1, self.STRONG_TAKEN)
        else:
            counter = max(counter - 1, self.STRONG_NOT_TAKEN)
        self._counters[idx] = counter
        return correct

    def poison(self, site: int, direction: bool) -> None:
        """Spectre V1 training: saturate the victim branch's counter."""
        self._counters[self._index(site)] = (
            self.STRONG_TAKEN if direction else self.STRONG_NOT_TAKEN
        )

    def __repr__(self) -> str:
        return f"<PHT hits={self.hits} misses={self.misses}>"
