"""Microarchitectural substrate: predictors, caches, timing, attacks."""

from repro.cpu.attacks import (
    ALL_ATTACKS,
    ATTACKER_GADGET,
    AttackOutcome,
    LVIAttack,
    Ret2specAttack,
    SpectreV2Attack,
    attack_surface,
)
from repro.cpu.btb import BTB
from repro.cpu.costs import DEFAULT_COSTS, NONTRANSIENT_COSTS, CostModel
from repro.cpu.counting import (
    CountingTimingModel,
    CountSummary,
    counting_cycles,
)
from repro.cpu.icache import ICache
from repro.cpu.mob import MOB, LoadResult
from repro.cpu.pht import PHT
from repro.cpu.rsb import RSB
from repro.cpu.timing import TimingModel, function_footprint_bytes

__all__ = [
    "ALL_ATTACKS",
    "ATTACKER_GADGET",
    "AttackOutcome",
    "BTB",
    "CostModel",
    "CountSummary",
    "CountingTimingModel",
    "DEFAULT_COSTS",
    "ICache",
    "LVIAttack",
    "LoadResult",
    "MOB",
    "NONTRANSIENT_COSTS",
    "PHT",
    "RSB",
    "Ret2specAttack",
    "SpectreV2Attack",
    "TimingModel",
    "attack_surface",
    "counting_cycles",
    "function_footprint_bytes",
]
