"""Branch Target Buffer model (paper Section 2.2).

A direct-mapped buffer predicting indirect-branch targets, indexed by the
low bits of the branch address (we use the site id). Entries can alias —
and, crucially for Spectre V2, the buffer has no notion of privilege or
process: an attacker can install ("poison") an entry that a victim branch
aliasing to the same slot will consume speculatively.
"""

from __future__ import annotations

from typing import Dict, Optional


class BTB:
    """Direct-mapped branch target buffer.

    Parameters
    ----------
    num_entries:
        Slot count; site ids are folded modulo this (aliasing included).
    """

    def __init__(self, num_entries: int = 4096) -> None:
        if num_entries <= 0:
            raise ValueError("BTB must have at least one entry")
        self.num_entries = num_entries
        self._slots: Dict[int, str] = {}
        self.hits = 0
        self.misses = 0

    def _index(self, site_id: int) -> int:
        return site_id % self.num_entries

    def predict(self, site_id: int) -> Optional[str]:
        """Predicted target for a branch, or ``None`` (cold slot)."""
        return self._slots.get(self._index(site_id))

    def access(self, site_id: int, actual_target: str) -> bool:
        """Predict, record hit/miss, train on the actual outcome.

        Returns ``True`` on a correct prediction.
        """
        idx = self._index(site_id)
        predicted = self._slots.get(idx)
        correct = predicted == actual_target
        if correct:
            self.hits += 1
        else:
            self.misses += 1
        self._slots[idx] = actual_target
        return correct

    def poison(self, site_id: int, attacker_target: str) -> None:
        """Spectre V2: install an attacker-chosen target in the victim's
        aliased slot (trainable from another context on real hardware)."""
        self._slots[self._index(site_id)] = attacker_target

    def flush(self) -> None:
        self._slots.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        return f"<BTB entries={self.num_entries} hits={self.hits} misses={self.misses}>"
