"""Diagnostic records and reports produced by the static analyzer.

A :class:`Diagnostic` pins one finding to a stable code (``PIBE304``), a
severity, and a location (function / block / site id). Codes are part of
the tool's contract: tests, CI gates and docs reference them, so a code
is never reused for a different condition.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Finding severity; ordered so ``max()`` picks the worst."""

    #: informational — the analyzer could not fully verify something
    NOTE = 0
    #: suspicious but not a soundness violation
    WARNING = 1
    #: a CFI/profile invariant is broken; gates fail on these
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    #: stable code, e.g. ``"PIBE304"``
    code: str
    severity: Severity
    #: human-readable description of the violated invariant
    message: str
    #: name of the rule that produced this finding
    rule: str = ""
    #: containing function, if the finding is function-scoped
    function: Optional[str] = None
    #: containing basic block label
    block: Optional[str] = None
    #: call-site id the finding anchors to
    site_id: Optional[int] = None

    @property
    def where(self) -> str:
        """``@func:block`` location prefix (empty for module scope)."""
        if self.function is None:
            return ""
        if self.block is None:
            return f"@{self.function}"
        return f"@{self.function}:{self.block}"

    def render(self) -> str:
        """One text line: ``error[PIBE304] @f:b: message``."""
        loc = self.where
        head = f"{self.severity}[{self.code}]"
        body = f"{loc}: {self.message}" if loc else self.message
        if self.site_id is not None:
            body += f" (site {self.site_id})"
        return f"{head} {body}"

    def legacy_message(self) -> str:
        """The pre-registry ``ir.validate`` error string for this finding."""
        loc = self.where
        return f"{loc}: {self.message}" if loc else self.message

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "rule": self.rule,
            "message": self.message,
        }
        if self.function is not None:
            out["function"] = self.function
        if self.block is not None:
            out["block"] = self.block
        if self.site_id is not None:
            out["site_id"] = self.site_id
        return out

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the lint disk cache)."""
        return cls(
            code=str(record["code"]),
            severity=Severity[str(record["severity"]).upper()],
            message=str(record["message"]),
            rule=str(record.get("rule", "")),
            function=record.get("function"),  # type: ignore[arg-type]
            block=record.get("block"),  # type: ignore[arg-type]
            site_id=record.get("site_id"),  # type: ignore[arg-type]
        )

    def sort_key(self) -> tuple:
        """Canonical emission order: code, then location, then text.

        Every report is sorted by this key before rendering or
        serialization, so output is deterministic regardless of rule
        execution order, sharding, or cache-hit interleaving.
        """
        return (
            self.code,
            self.function or "",
            self.block or "",
            self.site_id if self.site_id is not None else -1,
            self.message,
            self.rule,
        )


@dataclass
class DiagnosticReport:
    """All findings from one analyzer run over one module."""

    module_name: str = ""
    #: names of the rules that ran (even if they found nothing)
    rules: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: incremental-lint execution stats (cache_hits / cache_misses /
    #: shards / functions); ``None`` for plain ``analyze_module`` runs.
    #: Deliberately excluded from :meth:`to_json` — two runs with
    #: different cache temperatures must serialize identically.
    stats: Optional[Dict[str, int]] = None

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    # -- queries -----------------------------------------------------------

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def by_code(self, code: str) -> List[Diagnostic]:
        """Findings whose code starts with ``code`` (``"PIBE3"`` matches
        the whole guard-shape family)."""
        return [d for d in self.diagnostics if d.code.startswith(code)]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def counts(self) -> Dict[str, int]:
        out = {"note": 0, "warning": 0, "error": 0}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    def sort(self) -> "DiagnosticReport":
        """Impose the canonical diagnostic order (in place, returns self)."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        """Human-readable listing, worst findings first."""
        lines = [
            d.render()
            for d in sorted(
                self.diagnostics,
                key=lambda d: (-int(d.severity), d.code, d.where),
            )
        ]
        counts = self.counts()
        summary = (
            f"{self.module_name or '<module>'}: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['note']} note(s) from {len(self.rules)} rule(s)"
        )
        return "\n".join(lines + [summary])

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Byte-stable JSON: keys sorted, diagnostics in canonical order."""
        record = {
            "module": self.module_name,
            "rules": list(self.rules),
            "counts": self.counts(),
            "diagnostics": [
                d.to_dict()
                for d in sorted(self.diagnostics, key=Diagnostic.sort_key)
            ],
        }
        return json.dumps(record, indent=indent, sort_keys=True)
