"""Static CFI analyzer for the PIBE IR — a mini clang-tidy.

Where the execution engines *measure* PIBE's security claims, this
package *proves* them on the IR itself: every module the pipeline emits
can be checked against a registry of rules that each produce
:class:`~repro.static.diagnostics.Diagnostic` records with stable codes
(``PIBE101``..``PIBE5xx``) and severities.

Rule families:

- ``PIBE1xx`` structural well-formedness (the old ``ir.validate`` checks);
- ``PIBE2xx`` type/signature-based feasible-target analysis;
- ``PIBE3xx`` Listing-2 guard-chain shape after ICP;
- ``PIBE4xx`` profile-flow conservation through ICP + inlining;
- ``PIBE5xx`` speculation-defense coverage (Tables 8-12 statically).

Entry points: :func:`analyze_module` for a report, :func:`assert_clean`
to raise on error-severity findings (used by ``PassManager(verify_each=)``
at every pass boundary), and the ``repro lint`` CLI subcommand.
"""

from repro.static.analyzer import (
    AnalysisContext,
    StaticAnalysisError,
    StaticAnalyzer,
    analyze_module,
    assert_clean,
)
from repro.static.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    new_diagnostics,
    write_baseline,
)
from repro.static.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.static.incremental import LINT_CACHE_VERSION, lint_module
from repro.static.registry import Rule, all_rules, get_rule, select_rules
from repro.static.sarif import to_sarif, to_sarif_json

__all__ = [
    "AnalysisContext",
    "BASELINE_FILENAME",
    "Diagnostic",
    "DiagnosticReport",
    "LINT_CACHE_VERSION",
    "Rule",
    "Severity",
    "StaticAnalysisError",
    "StaticAnalyzer",
    "all_rules",
    "analyze_module",
    "assert_clean",
    "get_rule",
    "lint_module",
    "load_baseline",
    "new_diagnostics",
    "select_rules",
    "to_sarif",
    "to_sarif_json",
    "write_baseline",
]
