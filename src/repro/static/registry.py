"""Rule registry: named analyses over modules, selectable by name or code.

Rules are stateless singletons registered at import time with the
:func:`register` decorator, mirroring how clang-tidy checks self-register.
Selection accepts rule names (``"guard-chain-shape"``) or diagnostic code
prefixes (``"PIBE3"``, ``"PIBE304"``), so CLI users can scope a lint run
to one family.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Type

from repro.ir.module import Module
from repro.static.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.static.analyzer import AnalysisContext


class Rule:
    """One registered analysis.

    Subclasses set :attr:`name`, :attr:`codes` (every diagnostic code the
    rule may emit, mapped to a short summary — the rule catalog in
    ``docs/static_analysis.md`` is generated from these) and implement
    :meth:`check_function` and/or :meth:`check_module`, yielding
    :class:`Diagnostic` records.  The split is what makes incremental
    lint possible: per-function findings are cached keyed on the
    function's fingerprint, so a rule must route every finding that can
    be recomputed from one function (plus :meth:`cache_env` facts) through
    :meth:`check_function` and keep genuinely cross-function reasoning in
    :meth:`check_module`.
    """

    #: unique kebab-case rule name
    name: str = ""
    #: one-line description for ``repro lint --list-rules``
    description: str = ""
    #: code -> short summary of the condition it flags
    codes: Dict[str, str] = {}
    #: rules that consume the edge profile are skipped when none is given
    requires_profile: bool = False
    #: bumped whenever the rule's logic changes — part of every lint
    #: cache key, so stale cached diagnostics can never survive a
    #: rule edit
    version: int = 1

    def run(
        self, module: Module, ctx: "AnalysisContext"
    ) -> Iterable[Diagnostic]:
        """All findings: every function's, then the module-scoped ones."""
        for func in module:
            yield from self.check_function(func, module, ctx)
        yield from self.check_module(module, ctx)

    def check_function(
        self, func, module: Module, ctx: "AnalysisContext"
    ) -> Iterable[Diagnostic]:
        """Findings derivable from one function + :meth:`cache_env`."""
        return ()

    def check_module(
        self, module: Module, ctx: "AnalysisContext"
    ) -> Iterable[Diagnostic]:
        """Findings that need the whole module at once (never cached)."""
        return ()

    @property
    def function_scoped(self) -> bool:
        """Whether this rule has a cacheable per-function component.

        True only for rules using the stock :meth:`run` driver with an
        overridden :meth:`check_function`; a rule that overrides
        :meth:`run` itself is opaque to the incremental engine and runs
        whole-module every time.
        """
        cls = type(self)
        return (
            cls.run is Rule.run
            and cls.check_function is not Rule.check_function
        )

    def cache_env(self, module: Module, ctx: "AnalysisContext") -> object:
        """Module-level facts :meth:`check_function` findings depend on.

        Canonicalized into every per-function cache key for this rule:
        when the environment changes, every cached entry keyed under the
        old environment is dead.  The default is maximally conservative —
        the whole-module fingerprint — which is always sound but caches
        nothing across edits; rules override it with the narrow facts
        they actually read (table contents, signature map, defense
        metadata, ...).
        """
        from repro.ir.fingerprint import module_fingerprint

        return module_fingerprint(module)

    def diag(
        self,
        code: str,
        severity: Severity,
        message: str,
        function: Optional[str] = None,
        block: Optional[str] = None,
        site_id: Optional[int] = None,
    ) -> Diagnostic:
        """Build a diagnostic, asserting the code belongs to this rule."""
        assert code in self.codes, f"{self.name} emitting undeclared {code}"
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            rule=self.name,
            function=function,
            block=block,
            site_id=site_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.name}>"


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule singleton."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    existing = _REGISTRY.get(rule.name)
    if existing is not None and type(existing) is not cls:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    for name, other in _REGISTRY.items():
        if name == rule.name:
            continue
        clash = set(other.codes) & set(rule.codes)
        if clash:
            raise ValueError(
                f"rule {rule.name!r} reuses codes {sorted(clash)} "
                f"of {name!r}"
            )
    _REGISTRY[rule.name] = rule
    return cls


def _ensure_loaded() -> None:
    """Import the built-in rule modules so they self-register."""
    from repro.static import rules  # noqa: F401  (import-for-effect)


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def get_rule(name: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"no rule named {name!r}") from None


def select_rules(selectors: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve rule names / code prefixes to rule objects.

    ``None`` selects everything. A selector matches a rule if it equals
    the rule's name or is a prefix of one of its diagnostic codes.
    """
    rules = all_rules()
    if selectors is None:
        return rules
    chosen: List[Rule] = []
    for rule in rules:
        for sel in selectors:
            if sel == rule.name or any(
                code.startswith(sel) for code in rule.codes
            ):
                chosen.append(rule)
                break
    unmatched = [
        sel
        for sel in selectors
        if not any(
            sel == r.name or any(c.startswith(sel) for c in r.codes)
            for r in rules
        )
    ]
    if unmatched:
        known = ", ".join(r.name for r in rules)
        raise KeyError(
            f"unknown rule selector(s) {unmatched}; known rules: {known}"
        )
    return chosen
