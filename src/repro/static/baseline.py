"""Baseline / suppression files: gate CI on *new* diagnostics only.

A baseline records the accepted findings of a known state of the tree
(``.repro-lint-baseline.json`` at the repo root).  CI lints, subtracts
the baseline, and fails only on findings that are not accounted for —
so turning on a new rule (or tightening an old one) over a large tree
does not require fixing every historical finding first.

Matching is by *identity multiset*: ``(code, function, block, message)``
counts.  Site ids are deliberately excluded — they come from a global
allocator and shift whenever unrelated code is rebuilt, which would
invalidate every baseline entry on every kernel regeneration.  For the
same reason numbers inside messages (several rules quote site ids or
counts in prose) are masked to ``#`` before matching; the multiset
counts keep distinct same-shape findings separate.  A baseline entry
suppresses at most ``count`` findings of its identity; extra
occurrences surface as new.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.static.diagnostics import Diagnostic, DiagnosticReport

BASELINE_VERSION = 1
#: conventional file name at the repository root
BASELINE_FILENAME = ".repro-lint-baseline.json"

_Identity = Tuple[str, str, str, str]

_NUMBERS = re.compile(r"\d+")


def _identity(diag: Diagnostic) -> _Identity:
    # Block labels of ICP-generated chains embed the site id
    # ("icp123.d0"), so they are masked alongside the message.
    return (
        diag.code,
        diag.function or "",
        _NUMBERS.sub("#", diag.block or ""),
        _NUMBERS.sub("#", diag.message),
    )


def baseline_from_report(report: DiagnosticReport) -> Dict[str, object]:
    """Build a baseline document accepting every finding in ``report``."""
    counts = Counter(_identity(d) for d in report.diagnostics)
    return {
        "version": BASELINE_VERSION,
        "module": report.module_name,
        "suppressions": [
            {
                "code": code,
                "function": function,
                "block": block,
                "message": message,
                "count": count,
            }
            for (code, function, block, message), count in sorted(
                counts.items()
            )
        ],
    }


def write_baseline(path: Path, report: DiagnosticReport) -> None:
    doc = baseline_from_report(report)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> Counter:
    """Load a baseline into an identity-multiset counter.

    A missing file is an empty baseline (everything is new) — the
    convenient semantics for bootstrapping a repo without one.
    """
    if not path.exists():
        return Counter()
    doc = json.loads(path.read_text(encoding="utf-8"))
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in doc.get("suppressions", []):
        identity = (
            str(entry["code"]),
            str(entry.get("function", "")),
            # Mask here too so hand-edited baselines with literal
            # numbers still match.
            _NUMBERS.sub("#", str(entry.get("block", ""))),
            _NUMBERS.sub("#", str(entry["message"])),
        )
        counts[identity] += int(entry.get("count", 1))
    return counts


def new_diagnostics(
    report: DiagnosticReport, baseline: Counter
) -> List[Diagnostic]:
    """Findings in ``report`` not covered by ``baseline``, in canonical
    order.  Each suppression absorbs up to its ``count`` occurrences of
    its identity; the overflow is new."""
    remaining = Counter(baseline)
    fresh: List[Diagnostic] = []
    for diag in sorted(report.diagnostics, key=Diagnostic.sort_key):
        identity = _identity(diag)
        if remaining[identity] > 0:
            remaining[identity] -= 1
        else:
            fresh.append(diag)
    return fresh
