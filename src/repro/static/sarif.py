"""SARIF 2.1.0 export for analyzer reports.

SARIF (Static Analysis Results Interchange Format) is what CI systems
ingest for code-scanning annotations.  The mapping:

- each registered rule becomes a ``tool.driver.rules`` reporting
  descriptor per diagnostic *code* (codes are the stable contract;
  rule names become the descriptor's ``name``);
- each diagnostic becomes a ``result`` with ``ruleId`` = code and
  ``level`` mapped note/warning/error;
- IR locations (function / block / site id) have no file/line to point
  at, so they are emitted as ``logicalLocations`` (kind ``function`` /
  ``block``) plus a synthetic ``physicalLocation`` against the module
  pseudo-URI, keeping strict consumers happy.

Output is deterministic: results are emitted in the report's canonical
diagnostic order, rule descriptors sorted by code, keys sorted.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.static.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.static.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_descriptors(rule_names: Sequence[str]) -> List[Dict[str, Any]]:
    descriptors = []
    for rule in all_rules():
        if rule_names and rule.name not in rule_names:
            continue
        for code, summary in rule.codes.items():
            descriptors.append(
                {
                    "id": code,
                    "name": rule.name,
                    "shortDescription": {"text": summary},
                    "fullDescription": {"text": rule.description},
                    "properties": {"ruleVersion": rule.version},
                }
            )
    return sorted(descriptors, key=lambda d: d["id"])


def _result(diag: Diagnostic, module_uri: str) -> Dict[str, Any]:
    logical: List[Dict[str, Any]] = []
    if diag.function is not None:
        logical.append(
            {"name": diag.function, "kind": "function"}
        )
    if diag.block is not None:
        logical.append(
            {
                "name": diag.block,
                "fullyQualifiedName": f"{diag.function}:{diag.block}",
                "kind": "block",
            }
        )
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": module_uri},
        }
    }
    if logical:
        location["logicalLocations"] = logical
    result: Dict[str, Any] = {
        "ruleId": diag.code,
        "level": _LEVEL[diag.severity],
        "message": {"text": diag.message},
        "locations": [location],
        "properties": {"rule": diag.rule},
    }
    if diag.site_id is not None:
        result["properties"]["siteId"] = diag.site_id
    return result


def to_sarif(
    report: DiagnosticReport, tool_version: Optional[str] = None
) -> Dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 log object."""
    module_uri = f"ir://{report.module_name or 'module'}"
    driver: Dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": "https://github.com/pibe-repro/repro",
        "rules": _rule_descriptors(report.rules),
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    _result(d, module_uri)
                    for d in sorted(
                        report.diagnostics, key=Diagnostic.sort_key
                    )
                ],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def to_sarif_json(
    report: DiagnosticReport, tool_version: Optional[str] = None
) -> str:
    """Byte-stable SARIF JSON (sorted keys, canonical result order)."""
    return json.dumps(
        to_sarif(report, tool_version=tool_version), indent=2, sort_keys=True
    )
