"""Profile-flow conservation through ICP + inlining (``PIBE4xx``).

For every profiled indirect site ``S`` with value profile
``{t_i: c_i}``, the transformed module must account for every count:

- a target promoted at the original chain carries ``c_i`` verbatim on
  its ``!promoted !icp_site=S`` direct call — or, if the inliner later
  consumed that call, on the module's inlining provenance record
  (``metadata["inlined_promoted"]``, written by both inliners);
- every other profiled target must appear in the fallback's residual
  distribution;
- the sum of promoted counts plus residual profile weight equals the
  site's total profile weight;
- cloned chains (created when a function containing a chain is inlined
  elsewhere) may only carry *scaled-down* counts — a clone exceeding the
  profile count would double flow.

When the provenance record is absent (e.g. the module was round-tripped
through the textual dumper, which does not serialize metadata), missing
accounting degrades to a note instead of an error: the analyzer cannot
distinguish an inlined promoted call from lost flow.

Requires a profile; the analyzer skips this rule without one.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.ir.types import (
    ATTR_CLONED_FROM,
    ATTR_EDGE_COUNT,
    ATTR_ICP_SITE,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    METADATA_INLINED_PROMOTED,
    Opcode,
)
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register

#: (function, block, site_id) location for one found instruction
_Loc = Tuple[str, Optional[str], Optional[int]]


@register
class FlowConservationRule(Rule):
    name = "profile-flow-conservation"
    description = (
        "edge counts into each icall equal promoted directs + residual"
    )
    requires_profile = True
    codes = {
        "PIBE401": "promoted direct count disagrees with the profile",
        "PIBE402": "site flow not conserved across promoted + residual",
        "PIBE403": "flow unverifiable (inlining provenance unavailable)",
        "PIBE404": "profiled target neither promoted nor in the residual",
        "PIBE405": "cloned promoted call exceeds the profiled count",
        "PIBE406": "target promoted/accounted more than once at one site",
    }

    # Aggregates promoted/clone/fallback artifacts across *all* functions
    # by origin site id, so it is genuinely module-scoped: a clone in one
    # function changes another site's accounting.  Never cached
    # per-function (``check_module`` runs inline on every lint).
    def check_module(self, module: Module, ctx) -> Iterable[Diagnostic]:
        profile = ctx.profile
        assert profile is not None  # analyzer gates on requires_profile

        # Index every ICP artifact by original site id.
        originals: Dict[int, Dict[str, List[Tuple[int, _Loc]]]] = (
            defaultdict(lambda: defaultdict(list))
        )
        clones: Dict[int, List[Tuple[str, int, _Loc]]] = defaultdict(list)
        fallbacks: Dict[int, Tuple[Set[str], _Loc]] = {}
        for func in module:
            for block in func.blocks.values():
                for inst in block.instructions:
                    site = inst.attrs.get(ATTR_ICP_SITE)
                    if site is None:
                        continue
                    loc: _Loc = (func.name, block.label, inst.site_id)
                    cloned = ATTR_CLONED_FROM in inst.attrs
                    if inst.opcode == Opcode.CALL and inst.attrs.get(
                        ATTR_PROMOTED
                    ):
                        count = inst.attrs.get(ATTR_EDGE_COUNT, 0)
                        if cloned:
                            clones[site].append(
                                (inst.callee or "", count, loc)
                            )
                        else:
                            originals[site][inst.callee or ""].append(
                                (count, loc)
                            )
                    elif (
                        inst.opcode == Opcode.ICALL
                        and inst.site_id == site
                    ):
                        # The original fallback keeps the promoted site's
                        # id; chain clones get fresh ids.
                        fallbacks[site] = (
                            set(inst.attrs.get(ATTR_TARGETS) or {}),
                            loc,
                        )

        inlined: Dict[int, Dict[str, int]] = defaultdict(dict)
        records = module.metadata.get(METADATA_INLINED_PROMOTED)
        has_provenance = records is not None
        for rec in records or []:
            site, target = int(rec["site"]), str(rec["target"])
            if target in inlined[site]:
                yield self.diag(
                    "PIBE406",
                    Severity.ERROR,
                    f"icp site {site}: target @{target} recorded as "
                    "inlined more than once",
                    site_id=site,
                )
            inlined[site][target] = inlined[site].get(target, 0) + int(
                rec["count"]
            )

        touched = set(originals) | set(fallbacks) | set(clones)
        for site in sorted(touched):
            vp = profile.indirect.get(site)
            if not vp:
                continue  # lint run against a non-matching profile
            yield from self._check_site(
                site,
                vp,
                originals.get(site, {}),
                inlined.get(site, {}),
                fallbacks.get(site),
                clones.get(site, []),
                has_provenance,
            )

    def _check_site(
        self,
        site: int,
        vp: Dict[str, int],
        site_originals: Dict[str, List[Tuple[int, _Loc]]],
        site_inlined: Dict[str, int],
        fallback: Optional[Tuple[Set[str], _Loc]],
        site_clones: List[Tuple[str, int, _Loc]],
        has_provenance: bool,
    ) -> Iterable[Diagnostic]:
        err = Severity.ERROR
        residual = fallback[0] if fallback is not None else None
        promoted_names = set(site_originals) | set(site_inlined)

        # When neither the fallback nor any original direct survives, the
        # whole chain's function was inlined away and DCE'd — only scaled
        # clones remain, and per-target accounting is meaningless.
        chain_alive = fallback is not None or bool(site_originals)

        fully_accounted = True
        promoted_sum = 0
        for target, expected in sorted(vp.items()) if chain_alive else []:
            entries = site_originals.get(target, [])
            recorded = site_inlined.get(target)
            if len(entries) > 1 or (entries and recorded is not None):
                func, block, _ = entries[0][1]
                yield self.diag(
                    "PIBE406",
                    err,
                    f"icp site {site}: target @{target} accounted "
                    f"{len(entries)} time(s) in IR plus "
                    f"{'an' if recorded is not None else 'no'} inlining "
                    "record",
                    function=func,
                    block=block,
                    site_id=site,
                )
                fully_accounted = False
                continue
            if entries:
                count, (func, block, inst_site) = entries[0]
                promoted_sum += count
                if count != expected:
                    yield self.diag(
                        "PIBE401",
                        err,
                        f"icp site {site}: promoted direct to "
                        f"@{target} carries count {count}, profile "
                        f"says {expected}",
                        function=func,
                        block=block,
                        site_id=inst_site,
                    )
            elif recorded is not None:
                promoted_sum += recorded
                if recorded != expected:
                    yield self.diag(
                        "PIBE401",
                        err,
                        f"icp site {site}: inlined promoted call to "
                        f"@{target} was recorded with count {recorded}, "
                        f"profile says {expected}",
                        site_id=site,
                    )
            elif residual is not None and target in residual:
                pass  # flows through the fallback icall
            elif residual is None:
                # Fallback missing while directs survive: the guard-shape
                # rule owns that corruption (PIBE303); without a residual
                # set there is nothing to check flow against.
                fully_accounted = False
            elif has_provenance:
                loc = fallback[1] if fallback is not None else ("", None, None)
                yield self.diag(
                    "PIBE404",
                    err,
                    f"icp site {site}: profiled target @{target} "
                    f"({expected} counts) is neither promoted, "
                    "recorded as inlined, nor in the residual",
                    function=loc[0] or None,
                    block=loc[1],
                    site_id=site,
                )
                fully_accounted = False
            else:
                yield self.diag(
                    "PIBE403",
                    Severity.NOTE,
                    f"icp site {site}: cannot account for @{target} "
                    f"({expected} counts) — no inlining provenance in "
                    "this module (round-tripped dump?)",
                    site_id=site,
                )
                fully_accounted = False

        # Aggregate conservation over the whole site.
        if fully_accounted and residual is not None:
            residual_sum = sum(
                c
                for t, c in vp.items()
                if t in residual and t not in promoted_names
            )
            total = sum(vp.values())
            if promoted_sum + residual_sum != total:
                func, block, inst_site = fallback[1]
                yield self.diag(
                    "PIBE402",
                    err,
                    f"icp site {site}: promoted ({promoted_sum}) + "
                    f"residual ({residual_sum}) != profiled total "
                    f"({total})",
                    function=func,
                    block=block,
                    site_id=inst_site,
                )

        # Clones may only scale flow down.
        for target, count, (func, block, inst_site) in site_clones:
            limit = vp.get(target, 0)
            if count > limit:
                yield self.diag(
                    "PIBE405",
                    err,
                    f"icp site {site}: cloned promoted call to "
                    f"@{target} carries count {count} > profiled "
                    f"{limit} (inheritance must scale down)",
                    function=func,
                    block=block,
                    site_id=inst_site,
                )
