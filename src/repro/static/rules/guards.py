"""Guard-chain shape checker (``PIBE3xx``).

Every site ICP promotes must survive later passes as the Listing-2 CFG::

    pre:      [prefix] [load] cmp; br d0, g1     ; head guard
    g1:       cmp; br d1, g2                     ; inner guards
    ...
    gk:       cmp; br dk, fallback
    d_i:      call @t_i !promoted; jmp cont      ; direct blocks
    fallback: icall (residual); jmp cont
    cont:     ...

The rule anchors on the two markers ICP leaves behind — ``!promoted``
direct calls and the ``!icp_site`` provenance on the fallback icall —
and checks the shape from both ends, so a corruption that deletes one
anchor is still caught from the other:

- from each surviving promoted call: its block is exactly
  ``[call, jmp]``, its only predecessor is a guard's taken edge, and
  walking the guard fallthrough chain reaches an icall fallback;
- from each fallback icall: the block is exactly ``[icall, jmp]``, at
  least one guard feeds it, every promoted direct hanging off the chain
  rejoins the same continuation, the residual target set never partially
  overlaps the promoted set (a full overlap is the legal fully-promoted
  passthrough, where ICP keeps the ground truth on a never-taken
  fallback), and the fallback carries no leftover value profile.

Direct blocks whose promoted call was later *inlined* degrade to plain
``jmp`` blocks (or whole inlined bodies); those hang off guard taken
edges and are deliberately not constrained.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.types import (
    ATTR_ICP_SITE,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    Opcode,
)
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register


def _is_guard_shape(block: BasicBlock) -> bool:
    """A pure inner guard: exactly ``[cmp, br]``."""
    insts = block.instructions
    return (
        len(insts) == 2
        and insts[0].opcode == Opcode.CMP
        and insts[1].opcode == Opcode.BR
    )


def _ends_as_guard(block: BasicBlock) -> bool:
    """Ends ``..., cmp, br`` (the head guard keeps the original block's
    prefix and, for vcalls, the vtable load)."""
    insts = block.instructions
    return (
        len(insts) >= 2
        and insts[-1].opcode == Opcode.BR
        and insts[-2].opcode == Opcode.CMP
    )


def _pred_edges(func: Function) -> Dict[str, List[Tuple[str, str]]]:
    """label -> [(pred_label, edge_kind)] over every terminator edge."""
    preds: Dict[str, List[Tuple[str, str]]] = {}
    for block in func.blocks.values():
        term = block.terminator
        if term is None:
            continue
        if term.opcode == Opcode.BR and len(term.targets) == 2:
            kinds = ("taken", "fallthrough")
        else:
            kinds = tuple("target" for _ in term.targets)
        for label, kind in zip(term.targets, kinds):
            preds.setdefault(label, []).append((block.label, kind))
    return preds


@register
class GuardChainRule(Rule):
    name = "guard-chain-shape"
    description = "ICP sites keep the Listing-2 guard/direct/fallback CFG"
    codes = {
        "PIBE301": "promoted-call block is not [call, jmp]",
        "PIBE302": "promoted call not reached by a single guard taken-edge",
        "PIBE303": "guard chain does not terminate in an icall fallback",
        "PIBE304": "residual targets partially overlap promoted targets",
        "PIBE305": "direct and fallback blocks rejoin different continuations",
        "PIBE306": "fallback block is not [icall, jmp]",
        "PIBE307": "fallback icall retains a value profile",
    }

    def check_function(self, func: Function, module, ctx) -> Iterable[Diagnostic]:
        return self._check_function(func)

    def cache_env(self, module, ctx) -> object:
        # The Listing-2 shape check is purely function-local.
        return ()

    def _check_function(self, func: Function) -> Iterable[Diagnostic]:
        preds = _pred_edges(func)
        blocks = func.blocks

        for block in blocks.values():
            for idx, inst in enumerate(block.instructions):
                if (
                    inst.opcode == Opcode.CALL
                    and inst.attrs.get(ATTR_PROMOTED)
                    and ATTR_ICP_SITE in inst.attrs
                ):
                    yield from self._check_promoted(
                        func, block, idx, inst, preds
                    )
            first = block.instructions[0] if block.instructions else None
            if (
                first is not None
                and first.opcode == Opcode.ICALL
                and ATTR_ICP_SITE in first.attrs
            ):
                yield from self._check_fallback(func, block, first, preds)

    # -- promoted-call side ------------------------------------------------

    def _check_promoted(
        self, func: Function, block: BasicBlock, idx: int, inst, preds
    ) -> Iterable[Diagnostic]:
        err = Severity.ERROR
        site = inst.attrs.get(ATTR_ICP_SITE)
        loc = dict(
            function=func.name, block=block.label, site_id=inst.site_id
        )
        shape_ok = (
            idx == 0
            and len(block.instructions) == 2
            and block.instructions[1].opcode == Opcode.JMP
        )
        if not shape_ok:
            yield self.diag(
                "PIBE301",
                err,
                f"promoted call to @{inst.callee} (icp site {site}) sits "
                "in a block that is not exactly [call, jmp]",
                **loc,
            )

        edges = preds.get(block.label, [])
        guard = None
        if len(edges) == 1:
            pred_label, kind = edges[0]
            pred = func.blocks.get(pred_label)
            if kind == "taken" and pred is not None and _ends_as_guard(pred):
                guard = pred
        if guard is None:
            yield self.diag(
                "PIBE302",
                err,
                f"promoted call to @{inst.callee} (icp site {site}) is "
                "not reached by exactly one guard cmp/br taken-edge",
                **loc,
            )
            return

        # Walk the guard fallthrough chain; it must end at an icall.
        seen: Set[str] = {guard.label}
        cur = func.blocks.get(guard.terminator.targets[1])
        while (
            cur is not None
            and _is_guard_shape(cur)
            and cur.label not in seen
        ):
            seen.add(cur.label)
            cur = func.blocks.get(cur.terminator.targets[1])
        terminal_icall = (
            cur is not None
            and bool(cur.instructions)
            and cur.instructions[0].opcode == Opcode.ICALL
        )
        if not terminal_icall:
            yield self.diag(
                "PIBE303",
                err,
                f"guard chain below promoted call to @{inst.callee} "
                f"(icp site {site}) never reaches an icall fallback",
                **loc,
            )

    # -- fallback side -----------------------------------------------------

    def _check_fallback(
        self, func: Function, block: BasicBlock, icall, preds
    ) -> Iterable[Diagnostic]:
        err = Severity.ERROR
        site = icall.attrs.get(ATTR_ICP_SITE)
        loc = dict(
            function=func.name, block=block.label, site_id=icall.site_id
        )

        if not (
            len(block.instructions) == 2
            and block.instructions[1].opcode == Opcode.JMP
        ):
            yield self.diag(
                "PIBE306",
                err,
                f"fallback for icp site {site} is not exactly "
                "[icall, jmp]",
                **loc,
            )
        if icall.attrs.get(ATTR_VALUE_PROFILE):
            yield self.diag(
                "PIBE307",
                Severity.WARNING,
                f"fallback for icp site {site} still carries a value "
                "profile (should be consumed by promotion)",
                **loc,
            )

        cont = self._jmp_target(block)

        # Collect the guard chain feeding this fallback, bottom-up.
        guards: List[BasicBlock] = []
        seen: Set[str] = {block.label}
        cur = block.label
        while True:
            feeders = [
                func.blocks[p]
                for p, kind in preds.get(cur, [])
                if kind == "fallthrough"
                and p in func.blocks
                and _ends_as_guard(func.blocks[p])
            ]
            if len(feeders) != 1 or feeders[0].label in seen:
                break
            guard = feeders[0]
            guards.append(guard)
            seen.add(guard.label)
            cur = guard.label

        if not guards:
            yield self.diag(
                "PIBE303",
                err,
                f"fallback for icp site {site} has no guard feeding it",
                **loc,
            )
            return

        promoted: Set[str] = set()
        for guard in guards:
            taken = func.blocks.get(guard.terminator.targets[0])
            if taken is None or not taken.instructions:
                continue
            head = taken.instructions[0]
            if head.opcode == Opcode.CALL and head.attrs.get(ATTR_PROMOTED):
                if head.callee:
                    promoted.add(head.callee)
                direct_cont = self._jmp_target(taken)
                if (
                    cont is not None
                    and direct_cont is not None
                    and direct_cont != cont
                ):
                    yield self.diag(
                        "PIBE305",
                        err,
                        f"direct block {taken.label!r} rejoins "
                        f"{direct_cont!r} but the fallback rejoins "
                        f"{cont!r}",
                        **loc,
                    )

        residual = set(icall.attrs.get(ATTR_TARGETS) or {})
        overlap = promoted & residual
        if overlap and not promoted <= residual:
            # A full overlap is the fully-promoted passthrough (empty
            # residual keeps the ground-truth distribution); a partial
            # one means a promoted target leaked back into the residual.
            yield self.diag(
                "PIBE304",
                err,
                f"residual of icp site {site} repeats promoted "
                f"target(s) {sorted(overlap)} without being the "
                "fully-promoted passthrough",
                **loc,
            )

    @staticmethod
    def _jmp_target(block: BasicBlock) -> Optional[str]:
        term = block.terminator
        if term is not None and term.opcode == Opcode.JMP and term.targets:
            return term.targets[0]
        return None
