"""Speculation-defense coverage lint (``PIBE5xx``).

Makes the paper's Tables 8-12 coverage claims *statically checkable*:
after hardening, every residual indirect branch must carry exactly the
defense tag its :class:`~repro.hardening.defenses.DefenseConfig`
promises — and that tag must belong to the protection class
(``SPECTRE_V2_SAFE`` / ``RSB_SAFE`` / ``LVI_SAFE``) covering the attack
vectors the config claims to close. Exempt branches (inline-asm
functions and sites, boot-only returns, target-less asm ijumps) must
stay *untagged*: a tag there would claim protection the lowering cannot
actually emit.

Eligibility comes from :mod:`repro.hardening.coverage` — the same
predicates the hardening passes use, so checker and transformation
cannot drift. Registered custom defenses
(:mod:`repro.hardening.custom`) are accepted in place of the stock tag
on modules a custom pass has processed.
"""

from __future__ import annotations

from typing import Iterable

from repro.hardening.coverage import (
    applied_config,
    branch_exempt,
    custom_hardened,
    expected_defense,
)
from repro.hardening.custom import registered_defense
from repro.hardening.defenses import (
    LVI_SAFE,
    RSB_SAFE,
    SPECTRE_V2_SAFE,
    Defense,
)
from repro.ir.module import Module
from repro.ir.types import INDIRECT_BRANCHES, Opcode
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register

_STOCK_TAGS = frozenset(d.value for d in Defense)

_UNPROTECTED_CODE = {
    Opcode.ICALL: "PIBE501",
    Opcode.RET: "PIBE502",
    Opcode.IJUMP: "PIBE503",
}


@register
class SpeculationCoverageRule(Rule):
    name = "speculation-coverage"
    description = (
        "residual indirect branches carry exactly the promised defense tags"
    )
    codes = {
        "PIBE501": "icall the config promises to protect is untagged",
        "PIBE502": "return the config promises to protect is untagged",
        "PIBE503": "indirect jump the config promises to protect is untagged",
        "PIBE504": "branch carries a different tag than the config promises",
        "PIBE505": "exempt/undefended branch carries a defense tag",
        "PIBE506": "unknown defense tag (not stock, not registered custom)",
        "PIBE507": "promised tag is outside its protection class",
    }

    def run(self, module: Module, ctx) -> Iterable[Diagnostic]:
        config = applied_config(module)
        allow_custom = custom_hardened(module)
        err = Severity.ERROR

        for func in module:
            for block in func.blocks.values():
                for inst in block.instructions:
                    if inst.opcode not in INDIRECT_BRANCHES:
                        continue
                    loc = dict(
                        function=func.name,
                        block=block.label,
                        site_id=inst.site_id,
                    )
                    tag = inst.defense
                    expected = expected_defense(func, inst, config)

                    if tag is not None and tag not in _STOCK_TAGS:
                        if registered_defense(tag) is None:
                            yield self.diag(
                                "PIBE506",
                                err,
                                f"{inst.opcode.value} carries unknown "
                                f"defense tag {tag!r}",
                                **loc,
                            )
                        elif branch_exempt(func, inst):
                            yield self.diag(
                                "PIBE505",
                                err,
                                f"exempt {inst.opcode.value} carries "
                                f"custom defense tag {tag!r}",
                                **loc,
                            )
                        # custom tag on an eligible branch: accepted
                        continue

                    if expected is None:
                        if tag is not None:
                            yield self.diag(
                                "PIBE505",
                                err,
                                f"{inst.opcode.value} is exempt or "
                                "undefended under config "
                                f"{config.label()!r} but carries tag "
                                f"{tag!r}",
                                **loc,
                            )
                        continue

                    if tag is None:
                        if allow_custom:
                            # A custom pass replaced the stock lowering;
                            # whether it covers this edge kind is its
                            # registration's business, not the stock
                            # config's promise.
                            continue
                        yield self.diag(
                            _UNPROTECTED_CODE[inst.opcode],
                            err,
                            f"{inst.opcode.value} is unprotected but "
                            f"config {config.label()!r} promises "
                            f"{expected.value!r}",
                            **loc,
                        )
                        continue

                    if tag != expected.value:
                        yield self.diag(
                            "PIBE504",
                            err,
                            f"{inst.opcode.value} tagged {tag!r} but "
                            f"config {config.label()!r} promises "
                            f"{expected.value!r}",
                            **loc,
                        )
                        continue

                    yield from self._check_class(inst, tag, config, loc)

    def _check_class(self, inst, tag, config, loc) -> Iterable[Diagnostic]:
        """The promised tag must sit in every protection class the
        config claims for this edge (taxonomy self-consistency)."""
        required = []
        if inst.opcode in (Opcode.ICALL, Opcode.IJUMP):
            if config.retpolines:
                required.append(("SPECTRE_V2_SAFE", SPECTRE_V2_SAFE))
            if config.lvi_cfi:
                required.append(("LVI_SAFE", LVI_SAFE))
        elif inst.opcode == Opcode.RET:
            if config.ret_retpolines:
                required.append(("RSB_SAFE", RSB_SAFE))
            if config.lvi_cfi:
                required.append(("LVI_SAFE", LVI_SAFE))
        for class_name, members in required:
            if tag not in members:
                yield self.diag(
                    "PIBE507",
                    Severity.ERROR,
                    f"tag {tag!r} is not in {class_name} although "
                    f"config {config.label()!r} requires it",
                    **loc,
                )
