"""Speculation-defense coverage lint (``PIBE5xx``).

Makes the paper's Tables 8-12 coverage claims *statically checkable*:
after hardening, every residual indirect branch must carry exactly the
defense tag its :class:`~repro.hardening.defenses.DefenseConfig`
promises — and that tag must belong to every protection class
(``spectre_v2`` / ``ret2spec`` / ``lvi``) covering the attack vectors
the config claims to close. Exempt branches (inline-asm functions and
sites, boot-only returns, target-less asm ijumps) must stay *untagged*:
a tag there would claim protection the lowering cannot actually emit.

Eligibility comes from :mod:`repro.hardening.coverage` — the same
predicates the hardening passes use, so checker and transformation
cannot drift.  The tag → protection-class table is *data*, not code:
:mod:`repro.hardening.classes` seeds it from the stock defense
frozensets and lets new backends (FineIBT, PAC) register their tags at
runtime; a registered extension tag is accepted in place of the stock
tag wherever it covers every class the config promises.  Registered
custom defenses (:mod:`repro.hardening.custom`) are accepted in place
of the stock tag on modules a custom pass has processed.
"""

from __future__ import annotations

from typing import Iterable

from repro.hardening import classes as defense_classes_registry
from repro.hardening.classes import defense_classes, required_classes
from repro.hardening.coverage import (
    applied_config,
    branch_exempt,
    custom_hardened,
    expected_defense,
)
from repro.hardening.custom import registered_defense
from repro.hardening.defenses import Defense
from repro.ir.module import Module
from repro.ir.types import INDIRECT_BRANCHES, Opcode
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register

_STOCK_TAGS = frozenset(d.value for d in Defense)

_UNPROTECTED_CODE = {
    Opcode.ICALL: "PIBE501",
    Opcode.RET: "PIBE502",
    Opcode.IJUMP: "PIBE503",
}


@register
class SpeculationCoverageRule(Rule):
    name = "speculation-coverage"
    description = (
        "residual indirect branches carry exactly the promised defense tags"
    )
    codes = {
        "PIBE501": "icall the config promises to protect is untagged",
        "PIBE502": "return the config promises to protect is untagged",
        "PIBE503": "indirect jump the config promises to protect is untagged",
        "PIBE504": "branch carries a different tag than the config promises",
        "PIBE505": "exempt/undefended branch carries a defense tag",
        "PIBE506": "unknown defense tag (not stock, not registered custom)",
        "PIBE507": "promised tag is outside its protection class",
    }
    version = 2  # tag -> class table moved to repro.hardening.classes

    def check_function(self, func, module: Module, ctx) -> Iterable[Diagnostic]:
        config = applied_config(module)
        allow_custom = custom_hardened(module)
        err = Severity.ERROR

        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode not in INDIRECT_BRANCHES:
                    continue
                loc = dict(
                    function=func.name,
                    block=block.label,
                    site_id=inst.site_id,
                )
                tag = inst.defense
                expected = expected_defense(func, inst, config)

                if (
                    tag is not None
                    and tag not in _STOCK_TAGS
                    and not defense_classes_registry.is_class_registered(tag)
                ):
                    if registered_defense(tag) is None:
                        yield self.diag(
                            "PIBE506",
                            err,
                            f"{inst.opcode.value} carries unknown "
                            f"defense tag {tag!r}",
                            **loc,
                        )
                    elif branch_exempt(func, inst):
                        yield self.diag(
                            "PIBE505",
                            err,
                            f"exempt {inst.opcode.value} carries "
                            f"custom defense tag {tag!r}",
                            **loc,
                        )
                    # custom tag on an eligible branch: accepted
                    continue

                if expected is None:
                    if tag is not None:
                        yield self.diag(
                            "PIBE505",
                            err,
                            f"{inst.opcode.value} is exempt or "
                            "undefended under config "
                            f"{config.label()!r} but carries tag "
                            f"{tag!r}",
                            **loc,
                        )
                    continue

                if tag is None:
                    if allow_custom:
                        # A custom pass replaced the stock lowering;
                        # whether it covers this edge kind is its
                        # registration's business, not the stock
                        # config's promise.
                        continue
                    yield self.diag(
                        _UNPROTECTED_CODE[inst.opcode],
                        err,
                        f"{inst.opcode.value} is unprotected but "
                        f"config {config.label()!r} promises "
                        f"{expected.value!r}",
                        **loc,
                    )
                    continue

                required = required_classes(inst.opcode, config)

                if tag != expected.value:
                    # A registered extension backend (FineIBT/PAC) is an
                    # acceptable alternative lowering iff its registered
                    # classes cover everything the config promises here;
                    # the gaps, if any, are class findings (PIBE507) —
                    # sharper than a generic wrong-tag error.
                    if tag not in _STOCK_TAGS:
                        yield from self._check_class(
                            inst, tag, required, config, loc
                        )
                        continue
                    yield self.diag(
                        "PIBE504",
                        err,
                        f"{inst.opcode.value} tagged {tag!r} but "
                        f"config {config.label()!r} promises "
                        f"{expected.value!r}",
                        **loc,
                    )
                    continue

                yield from self._check_class(inst, tag, required, config, loc)

    def cache_env(self, module: Module, ctx) -> object:
        # Coverage depends on the module's applied defense config, the
        # custom-hardening marker, the custom-defense registry, and the
        # tag -> protection-class table.
        from repro.hardening.coverage import CUSTOM_METADATA_KEY, METADATA_KEY
        from repro.hardening.custom import _REGISTRY as custom_registry

        return {
            "config": repr(module.metadata.get(METADATA_KEY)),
            "custom_marker": repr(module.metadata.get(CUSTOM_METADATA_KEY)),
            "custom_registry": sorted(
                (name, d.kind, tuple(sorted(d.protects)))
                for name, d in custom_registry.items()
            ),
            "classes": defense_classes_registry.registry_snapshot(),
        }

    def _check_class(
        self, inst, tag, required, config, loc
    ) -> Iterable[Diagnostic]:
        """The promised tag must sit in every protection class the
        config claims for this edge (taxonomy self-consistency)."""
        provided = defense_classes(tag)
        for class_name in required:
            if class_name not in provided:
                yield self.diag(
                    "PIBE507",
                    Severity.ERROR,
                    f"tag {tag!r} does not protect {class_name!r} "
                    f"although config {config.label()!r} requires it",
                    **loc,
                )
