"""Structural well-formedness (``PIBE1xx``).

The registry home of the checks that used to live inline in
``ir/validate.py`` — ``validate_module`` is now a thin wrapper over this
rule — plus two checks the old verifier missed: terminators that repeat
a successor label (a broken CFG edge split) and ``ICALL`` target lists
with duplicate entries (a corrupted ground-truth distribution).

Message texts for the pre-existing checks are kept byte-identical to the
old verifier so its error strings (asserted by tests and familiar from
tracebacks) survive the move.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import ATTR_TARGETS, Opcode
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register


@register
class StructuralRule(Rule):
    name = "structural"
    description = "CFG / call-graph well-formedness (the module verifier)"
    codes = {
        "PIBE101": "function has no blocks",
        "PIBE102": "block lacks a terminator",
        "PIBE103": "terminator appears mid-block",
        "PIBE104": "direct call without a callee",
        "PIBE105": "direct call to an undefined function",
        "PIBE106": "icall without target metadata",
        "PIBE107": "icall may-target an undefined function",
        "PIBE108": "branch to an unknown block label",
        "PIBE109": "terminator repeats a successor label",
        "PIBE110": "icall target list has duplicate entries",
        "PIBE111": "fptr table entry is undefined",
        "PIBE112": "syscall handler is undefined",
    }

    def check_function(self, func: Function, module: Module, ctx) -> Iterable[Diagnostic]:
        return self.function_diagnostics(func, module)

    def check_module(self, module: Module, ctx) -> Iterable[Diagnostic]:
        return self.module_diagnostics(module)

    def cache_env(self, module: Module, ctx) -> object:
        # Function checks consult only module *membership* (undefined
        # callees / icall targets) and block-local shape. Pre-hashed:
        # a 31k-name list through generic canonicalization costs more
        # than the checks themselves.
        import hashlib

        return hashlib.sha256(
            "\n".join(sorted(module.functions)).encode("utf-8")
        ).hexdigest()

    # Split out so ``ir.validate`` can reuse the exact same pieces.

    def function_diagnostics(
        self, func: Function, module: Module
    ) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        err = Severity.ERROR
        if not func.blocks:
            return [
                self.diag(
                    "PIBE101", err, "has no blocks", function=func.name
                )
            ]

        def d(code: str, message: str, block: str, site_id=None) -> None:
            out.append(
                self.diag(
                    code,
                    err,
                    message,
                    function=func.name,
                    block=block,
                    site_id=site_id,
                )
            )

        for block in func.blocks.values():
            label = block.label
            if block.terminator is None:
                d("PIBE102", "block is not terminated", label)
            for i, inst in enumerate(block.instructions):
                if inst.is_terminator and i != len(block.instructions) - 1:
                    d("PIBE103", f"terminator mid-block at index {i}", label)
                if inst.opcode == Opcode.CALL:
                    if inst.callee is None:
                        d(
                            "PIBE104",
                            "direct call without callee",
                            label,
                            inst.site_id,
                        )
                    elif inst.callee not in module:
                        d(
                            "PIBE105",
                            f"call to undefined @{inst.callee}",
                            label,
                            inst.site_id,
                        )
                if inst.opcode == Opcode.ICALL:
                    targets = inst.attrs.get(ATTR_TARGETS)
                    if not targets:
                        d(
                            "PIBE106",
                            "icall without target metadata",
                            label,
                            inst.site_id,
                        )
                    else:
                        for t in targets:
                            if t not in module:
                                d(
                                    "PIBE107",
                                    f"icall may-target undefined @{t}",
                                    label,
                                    inst.site_id,
                                )
                        if isinstance(targets, (list, tuple)) and len(
                            set(targets)
                        ) != len(targets):
                            d(
                                "PIBE110",
                                "icall target list has duplicate entries",
                                label,
                                inst.site_id,
                            )
                for tlabel in inst.targets:
                    if tlabel not in func.blocks:
                        d(
                            "PIBE108",
                            f"branch to unknown block {tlabel!r}",
                            label,
                        )
                if (
                    inst.is_terminator
                    and len(inst.targets) > 1
                    and len(set(inst.targets)) != len(inst.targets)
                ):
                    dups = sorted(
                        {t for t in inst.targets if inst.targets.count(t) > 1}
                    )
                    d(
                        "PIBE109",
                        f"terminator repeats successor label(s) {dups}",
                        label,
                    )
        return out

    def module_diagnostics(self, module: Module) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for table in module.fptr_tables.values():
            for entry in table.entries:
                if entry not in module:
                    out.append(
                        self.diag(
                            "PIBE111",
                            Severity.ERROR,
                            f"fptr table {table.name!r}: "
                            f"undefined entry @{entry}",
                        )
                    )
        for syscall, handler in module.syscalls.items():
            if handler not in module:
                out.append(
                    self.diag(
                        "PIBE112",
                        Severity.ERROR,
                        f"syscall {syscall!r}: undefined handler @{handler}",
                    )
                )
        return out


#: The registered singleton (used by ``ir.validate``'s thin wrapper).
STRUCTURAL = StructuralRule()
