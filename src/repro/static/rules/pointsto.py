"""Points-to target refinement diagnostics (``PIBE6xx``).

Consumes the Andersen-style analysis in :mod:`repro.analysis.pointsto`
to flag where a site's *guard* (the set of targets the hardened kernel
would still admit) is broader than what can actually flow there:

- ``PIBE601`` — a declared-table entry that is undefined or whose arity
  mismatches a site dispatching through the table: the entry can never
  execute from that site, yet every table-confined guard pays for it
  (an unreachable target widening the residual set);
- ``PIBE602`` — an ICP-promoted direct call whose callee is outside the
  feasible set of its (table-declared) origin site: the guard compares
  against a pointer value the data flow proves can never reach the site
  (an over-broad, dead guard arm).  Undeclared origin sites are skipped
  — their post-ICP flow covers only the residual targets, which would
  indict every legitimately promoted arm;
- ``PIBE603`` — an indirect call that neither declares its table nor is
  inline-asm, whose data-flow set degraded to ⊤: the analysis had to
  fall back to the global census, so this site's bound is no tighter
  than PIBE2xx's (a note; declaring the table restores precision).

All severities stay below ERROR: these are precision findings, not
soundness violations, so ``PassManager(verify_each=)`` boundaries
(which fail on errors) are unaffected.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.pointsto import pointsto_inputs_digest
from repro.ir.module import Module
from repro.ir.types import ATTR_ICP_SITE, ATTR_PROMOTED, Opcode
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register


@register
class PointsToTargetsRule(Rule):
    name = "pointsto-targets"
    description = (
        "per-site feasible-target sets refined by points-to data flow"
    )
    codes = {
        "PIBE601": "declared-table entry is unreachable from a site",
        "PIBE602": "promoted call guards a flow-infeasible target",
        "PIBE603": "undeclared icall degraded to the census bound",
    }

    def check_function(self, func, module: Module, ctx) -> Iterable[Diagnostic]:
        pt = ctx.pointsto
        warn = Severity.WARNING
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode == Opcode.ICALL:
                    st = pt.site(inst.site_id)
                    if st is None:
                        continue
                    loc = dict(
                        function=func.name,
                        block=block.label,
                        site_id=inst.site_id,
                    )
                    if st.table is not None:
                        table = module.fptr_tables[st.table]
                        for entry in table.entries:
                            reason = None
                            if entry not in module:
                                reason = "is undefined"
                            else:
                                p = module.get(entry).num_params
                                if p != inst.num_args:
                                    reason = (
                                        f"takes {p} params but the site "
                                        f"passes {inst.num_args} args"
                                    )
                            if reason is not None:
                                yield self.diag(
                                    "PIBE601",
                                    warn,
                                    f"table {st.table!r} entry @{entry} "
                                    f"{reason}; it can never dispatch "
                                    "here yet widens the guard",
                                    **loc,
                                )
                    elif not st.asm and st.census_fallback:
                        yield self.diag(
                            "PIBE603",
                            Severity.NOTE,
                            "icall declares no fptr table and its "
                            "data-flow set degraded to the census "
                            "bound; declaring the table would tighten "
                            f"{len(st.feasible or ())} residual "
                            "targets",
                            **loc,
                        )
                elif (
                    inst.opcode == Opcode.CALL
                    and inst.attrs.get(ATTR_PROMOTED)
                    and ATTR_ICP_SITE in inst.attrs
                ):
                    origin = inst.attrs[ATTR_ICP_SITE]
                    st = pt.site(origin)
                    # Only judge arms of sites that declare their table:
                    # the table is ICP-invariant, whereas an undeclared
                    # fallback's flow reflects the *residual* targets
                    # only and would flag every legitimately promoted
                    # arm.
                    if st is None or st.table is None or st.feasible is None:
                        continue
                    callee = inst.callee
                    if callee is not None and callee not in st.feasible:
                        yield self.diag(
                            "PIBE602",
                            warn,
                            f"promoted call guards @{callee}, which "
                            "points-to analysis proves can never flow "
                            f"to origin site {origin} (over-broad "
                            "guard arm)",
                            function=func.name,
                            block=block.label,
                            site_id=inst.site_id,
                        )

    def cache_env(self, module: Module, ctx) -> object:
        # Per-function findings read the whole-module points-to solution;
        # its input digest (tables, signatures, sites, call edges —
        # defense-tag insensitive) is exactly the cross-function state
        # they depend on.
        return pointsto_inputs_digest(module)
