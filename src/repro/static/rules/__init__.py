"""Built-in analyzer rules; importing this package registers them all."""

from repro.static.rules import (  # noqa: F401  (import-for-effect)
    flow,
    guards,
    pointsto,
    speculation,
    structural,
    targets,
)
