"""Type/signature-based feasible-target analysis (``PIBE2xx``).

FineIBT-style static may-target sets for every indirect call: a target
is *feasible* iff its address escapes into some function-pointer table
(the address-taken census) and its signature — here, arity — matches the
call site. Every ``ATTR_TARGETS`` entry (the interpreter's ground
truth), every profile-observed target, and every ICP-promoted direct
call must stay inside that set; anything outside it means the kernel
generator, the profiler or a transformation pass invented a control-flow
edge the type system forbids.

Census checks go vacuous on modules that declare no pointer tables
(hand-built test IR) — the universe is unknowable there. Signature
checks always run.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.module import Module
from repro.ir.types import (
    ATTR_FPTR_TABLE,
    ATTR_ICP_SITE,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    Opcode,
)
from repro.static.diagnostics import Diagnostic, Severity
from repro.static.registry import Rule, register


@register
class FeasibleTargetsRule(Rule):
    name = "type-feasible-targets"
    description = (
        "indirect-call targets confined to the address-taken + "
        "signature-compatible set"
    )
    codes = {
        "PIBE201": "icall target is never address-taken",
        "PIBE202": "icall target arity mismatches the call site",
        "PIBE203": "icall target outside its declared fptr table",
        "PIBE204": "profile-observed target outside the feasible set",
        "PIBE205": "profile-observed target no longer defined (stale)",
        "PIBE206": "promoted direct call targets an infeasible function",
    }

    def check_function(self, func, module: Module, ctx) -> Iterable[Diagnostic]:
        census_known = ctx.has_fptr_tables
        census = ctx.address_taken if census_known else frozenset()
        err = Severity.ERROR

        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode == Opcode.ICALL:
                    yield from self._check_icall(
                        inst, func, block, module, ctx, census, census_known
                    )
                elif (
                    inst.opcode == Opcode.CALL
                    and inst.attrs.get(ATTR_PROMOTED)
                    and ATTR_ICP_SITE in inst.attrs
                ):
                    t = inst.callee
                    if t is None or t not in module:
                        continue  # structural PIBE104/105 territory
                    params = ctx.num_params(t)
                    if params is not None and params != inst.num_args:
                        yield self.diag(
                            "PIBE206",
                            err,
                            f"promoted call to @{t} passes "
                            f"{inst.num_args} args but @{t} takes "
                            f"{params} params",
                            function=func.name,
                            block=block.label,
                            site_id=inst.site_id,
                        )
                    elif census_known and t not in census:
                        yield self.diag(
                            "PIBE206",
                            err,
                            f"promoted call targets @{t}, which is "
                            "never address-taken",
                            function=func.name,
                            block=block.label,
                            site_id=inst.site_id,
                        )

    def cache_env(self, module: Module, ctx) -> object:
        # Feasibility = census (table contents) + signature map; a change
        # to either invalidates every cached finding of this rule.
        # Pre-hashed — the raw map is ~31k entries on scaled kernels.
        import hashlib

        digest = hashlib.sha256()
        for name, table in sorted(module.fptr_tables.items()):
            digest.update(f"table {name} {sorted(table.entries)}\n".encode())
        for name, params in sorted((f.name, f.num_params) for f in module):
            digest.update(f"sig {name} {params}\n".encode())
        return digest.hexdigest()

    def _check_icall(
        self, inst, func, block, module, ctx, census, census_known
    ) -> Iterable[Diagnostic]:
        err = Severity.ERROR
        loc = dict(
            function=func.name, block=block.label, site_id=inst.site_id
        )
        table_name = inst.attrs.get(ATTR_FPTR_TABLE)
        table = (
            module.fptr_tables.get(table_name) if table_name else None
        )

        targets = inst.attrs.get(ATTR_TARGETS) or {}
        for t in targets:
            if t not in module:
                continue  # structural PIBE107 territory
            params = ctx.num_params(t)
            if params is not None and params != inst.num_args:
                yield self.diag(
                    "PIBE202",
                    err,
                    f"target @{t} takes {params} params but the site "
                    f"passes {inst.num_args} args",
                    **loc,
                )
            elif census_known and t not in census:
                yield self.diag(
                    "PIBE201",
                    err,
                    f"target @{t} is never address-taken "
                    "(absent from every fptr table)",
                    **loc,
                )
            elif table is not None and t not in table:
                yield self.diag(
                    "PIBE203",
                    err,
                    f"target @{t} is outside declared table "
                    f"{table_name!r}",
                    **loc,
                )

        for t, _count in inst.attrs.get(ATTR_VALUE_PROFILE) or []:
            if t not in module:
                yield self.diag(
                    "PIBE205",
                    Severity.WARNING,
                    f"profiled target @{t} is no longer defined "
                    "(stale profile entry)",
                    **loc,
                )
                continue
            params = ctx.num_params(t)
            if params is not None and params != inst.num_args:
                yield self.diag(
                    "PIBE204",
                    err,
                    f"profiled target @{t} takes {params} params but "
                    f"the site passes {inst.num_args} args",
                    **loc,
                )
            elif census_known and t not in census:
                yield self.diag(
                    "PIBE204",
                    err,
                    f"profiled target @{t} is never address-taken",
                    **loc,
                )
