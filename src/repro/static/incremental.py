"""Incremental + parallel lint engine.

``analyze_module`` runs every rule over every function on every call —
fine for a 3k-function module, hopeless for the 31k-function ScaledSpec
kernel linted once per sweep variant.  This module adds the two layers
that make lint scale:

**Incremental.**  Rules now split per-function findings
(:meth:`~repro.static.registry.Rule.check_function`) from genuinely
module-scoped ones (:meth:`~repro.static.registry.Rule.check_module`).
Per-function findings are cached in a DiskCache ``"lint"`` kind
(mirroring the staged-build prefix cache).  One entry per *chunk* of
``CHUNK_SIZE`` functions — per-function files would drown a 31k-function
module in filesystem round-trips — holding every function-scoped rule's
diagnostics for the chunk's functions, keyed on

- ``LINT_CACHE_VERSION``,
- the selected rule set with each rule's :attr:`version` and
  canonicalized :meth:`cache_env` (the module-level facts its
  per-function findings read — table contents, signature maps, defense
  metadata, the points-to input digest, ...),
- the chunk's function names and content fingerprints.

Editing one function re-lints one chunk; editing a pointer table (or
bumping a rule's version) changes the environment and re-lints
everything — soundness comes from the key, not from invalidation
bookkeeping.  Function fingerprints are memoized per
``(module identity, module.version)`` — the same staleness contract the
compiled/vectorized engine caches rely on — so a warm lint of a
resident module (the serve/sweep case) skips fingerprinting entirely.
Module-scoped findings always run inline.

**Parallel.**  Cache misses are sharded rule×function-chunk and mapped
over worker processes — either a caller-provided ``map_shards`` (the
evaluation harness routes shards through its persistent pool) or a
transient fork pool that inherits the module by memory sharing.
Workers are pure compute; the parent does all cache I/O, so a shared
cache directory never sees write races beyond DiskCache's atomic
renames.

The engine produces byte-identical reports to :func:`analyze_module`
(canonical diagnostic order; asserted by tests) and attaches a
``stats`` dict (``cache_hits`` / ``cache_misses`` / ``shards`` /
``functions``) to the returned report.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.evaluation.cache import DiskCache, cache_key, canonicalize
from repro.ir.fingerprint import function_fingerprint
from repro.ir.module import Module
from repro.static.analyzer import AnalysisContext, RuleSelection, StaticAnalyzer
from repro.static.diagnostics import Diagnostic, DiagnosticReport
from repro.static.registry import Rule

#: Bumped when the cache entry layout or keying scheme changes.
LINT_CACHE_VERSION = 1

#: Functions per cache entry. Large enough that a 31k-function module
#: costs ~250 filesystem round-trips instead of 31k, small enough that
#: one edited function only re-lints 1/CHUNK_SIZE of the module.
CHUNK_SIZE = 128

#: A shard: (rule names, function names) to lint together in one worker.
Shard = Tuple[Tuple[str, ...], Tuple[str, ...]]
#: Shard result: {(rule_name, function_name): [diagnostic dicts]}
ShardResult = Dict[Tuple[str, str], List[Dict[str, Any]]]
MapShards = Callable[[Sequence[Shard]], List[Optional[ShardResult]]]

#: Below this many cache-missing functions, sharding overhead beats the
#: win and the engine lints inline even when jobs > 1.
_MIN_FUNCTIONS_TO_SHARD = 64


def rule_signature(
    rules: Sequence[Rule], module: Module, ctx: AnalysisContext
) -> List[Any]:
    """Canonical key material for a function-scoped rule selection."""
    return [
        [rule.name, rule.version, canonicalize(rule.cache_env(module, ctx))]
        for rule in rules
    ]


def signature_digest(signature: Any) -> str:
    """Pre-hash the (potentially large) rule signature once — chunk keys
    embed the digest, not the structure, so keying 250 chunks does not
    re-canonicalize a 31k-entry signature map 250 times."""
    return cache_key("lint-env", LINT_CACHE_VERSION, signature)


def chunk_entry_key(
    sig_digest: str, names: Sequence[str], fingerprints: Dict[str, str]
) -> str:
    # Hash the (name, fingerprint) pairs directly instead of routing a
    # 128-tuple structure through canonicalize — at 31k functions the
    # generic traversal was half the warm-lint wall time.
    body = hashlib.sha256()
    for n in names:
        body.update(n.encode("utf-8"))
        body.update(b"=")
        body.update(fingerprints[n].encode("ascii"))
        body.update(b"\n")
    return cache_key("lint", sig_digest, body.hexdigest())


#: module -> (module.version, {function name: fingerprint})
_FP_MEMO: "weakref.WeakKeyDictionary[Module, Tuple[int, Dict[str, str]]]" = (
    weakref.WeakKeyDictionary()
)


def lint_fingerprints(module: Module) -> Dict[str, str]:
    """Per-function fingerprints, memoized on (module identity, version).

    Every in-place IR mutation path bumps ``module.version`` (pass
    boundaries, workload hardening), which is the same contract the
    compiled/vectorized program caches key on.
    """
    cached = _FP_MEMO.get(module)
    if cached is not None and cached[0] == module.version:
        return cached[1]
    fps = {f.name: function_fingerprint(f) for f in module}
    try:
        _FP_MEMO[module] = (module.version, fps)
    except TypeError:  # pragma: no cover - unweakrefable stand-ins
        pass
    return fps


def run_shard(
    module: Module,
    profile,
    rule_names: Sequence[str],
    func_names: Sequence[str],
) -> ShardResult:
    """Lint ``rule_names`` × ``func_names`` (pure compute, no cache I/O)."""
    from repro.static.registry import get_rule

    ctx = AnalysisContext(module, profile=profile)
    out: ShardResult = {}
    for rule_name in rule_names:
        rule = get_rule(rule_name)
        for fname in func_names:
            func = module.get(fname)
            diags = list(rule.check_function(func, module, ctx))
            out[(rule_name, fname)] = [d.to_dict() for d in diags]
    return out


def lint_module(
    module: Module,
    rules: RuleSelection = None,
    profile=None,
    cache: Optional[DiskCache] = None,
    jobs: int = 1,
    map_shards: Optional[MapShards] = None,
) -> DiagnosticReport:
    """Incrementally lint ``module``; equivalent to :func:`analyze_module`.

    ``cache=None`` disables the incremental layer (everything is
    computed), ``jobs=1`` the parallel one.  ``map_shards`` overrides
    how miss shards are executed (the evaluation harness passes its
    persistent-pool dispatcher); a shard that comes back ``None``
    (worker lost) is recomputed inline, so results never go missing.
    """
    analyzer = StaticAnalyzer(rules)
    active = [
        r
        for r in analyzer.rules
        if not (r.requires_profile and profile is None)
    ]
    ctx = AnalysisContext(module, profile=profile)
    report = DiagnosticReport(module_name=module.name)
    report.rules = [r.name for r in active]

    func_rules = [r for r in active if r.function_scoped]
    stats = {
        "functions": len(module),
        "cache_hits": 0,
        "cache_misses": 0,
        "chunks": 0,
        "shards": 0,
    }

    # -- per-function findings: chunked cache read -------------------------
    missing: List[str] = []
    miss_chunks: List[Tuple[str, Tuple[str, ...]]] = []
    if func_rules:
        if cache is not None:
            sig_digest = signature_digest(
                rule_signature(func_rules, module, ctx)
            )
            fingerprints = lint_fingerprints(module)
            names = sorted(module.functions)
            chunks = [
                tuple(names[i : i + CHUNK_SIZE])
                for i in range(0, len(names), CHUNK_SIZE)
            ]
            stats["chunks"] = len(chunks)
            for chunk in chunks:
                key = chunk_entry_key(sig_digest, chunk, fingerprints)
                entry = cache.get("lint", key)
                if entry is not None:
                    stats["cache_hits"] += len(chunk)
                    for fname in chunk:
                        per_rule = entry["functions"].get(fname, {})
                        for rule in func_rules:
                            for rec in per_rule.get(rule.name, ()):
                                report.add(Diagnostic.from_dict(rec))
                else:
                    stats["cache_misses"] += len(chunk)
                    missing.extend(chunk)
                    miss_chunks.append((key, chunk))
        else:
            missing = sorted(module.functions)

    # -- per-function findings: compute misses -----------------------------
    if missing and func_rules:
        results: ShardResult = {}
        rule_names = tuple(r.name for r in func_rules)
        if jobs > 1 and len(missing) >= _MIN_FUNCTIONS_TO_SHARD:
            shards = build_shards(rule_names, missing, jobs)
            stats["shards"] = len(shards)
            mapper = map_shards or _fork_map_shards(module, profile, jobs)
            shard_results = mapper(shards)
            redo: List[Shard] = []
            for shard, res in zip(shards, shard_results):
                if res is None:
                    redo.append(shard)
                else:
                    results.update(
                        {tuple(k): v for k, v in res.items()}  # type: ignore[misc]
                    )
            for shard in redo:  # lost workers: recompute inline
                results.update(run_shard(module, profile, *shard))
        else:
            results = run_shard(module, profile, rule_names, missing)

        for name in missing:
            for rule in func_rules:
                for rec in results.get((rule.name, name), ()):
                    report.add(Diagnostic.from_dict(rec))
        if cache is not None:
            for key, chunk in miss_chunks:
                payload = {
                    "functions": {
                        fname: {
                            rule.name: results.get((rule.name, fname), [])
                            for rule in func_rules
                        }
                        for fname in chunk
                    }
                }
                cache.put("lint", key, payload)

    # -- module-scoped findings: always inline -----------------------------
    for rule in active:
        if rule.function_scoped:
            report.extend(list(rule.check_module(module, ctx)))
        else:
            # Opaque (custom ``run``) or purely module-scoped rules run
            # whole-module, uncached.
            report.extend(list(rule.run(module, ctx)))

    report.sort()
    report.stats = stats
    return report


def build_shards(
    rule_names: Tuple[str, ...], func_names: Sequence[str], jobs: int
) -> List[Shard]:
    """Rule × function-chunk shards, ~2 chunks per worker for balance."""
    chunks = max(1, min(len(func_names), 2 * jobs))
    size = (len(func_names) + chunks - 1) // chunks
    return [
        (rule_names, tuple(func_names[i : i + size]))
        for i in range(0, len(func_names), size)
    ]


# -- standalone parallel path (CLI / benchmarks) ------------------------------

#: Fork-inherited state for standalone shard workers.
_SHARD_STATE: Dict[str, Any] = {}


def _run_shard_from_state(shard: Shard) -> ShardResult:
    return run_shard(
        _SHARD_STATE["module"], _SHARD_STATE["profile"], *shard
    )


def _fork_map_shards(module: Module, profile, jobs: int) -> MapShards:
    """Map shards over a transient fork pool (workers inherit the module
    read-only by memory sharing; no serialization of 31k functions)."""

    def mapper(shards: Sequence[Shard]) -> List[Optional[ShardResult]]:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return [run_shard(module, profile, *s) for s in shards]
        import multiprocessing

        _SHARD_STATE["module"] = module
        _SHARD_STATE["profile"] = profile
        try:
            mp = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(shards)), mp_context=mp
            ) as pool:
                futures = [
                    pool.submit(_run_shard_from_state, s) for s in shards
                ]
                out: List[Optional[ShardResult]] = []
                for fut in futures:
                    try:
                        out.append(fut.result())
                    except Exception:
                        out.append(None)
                return out
        finally:
            _SHARD_STATE.clear()

    return mapper
