"""Analyzer driver: runs selected rules over a module and aggregates
findings, with shared per-module facts cached on an
:class:`AnalysisContext` (address-taken census, signature lookups,
predecessor maps would all be quadratic if every rule recomputed them).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Union

from repro.ir.module import Module
from repro.profiling.profile_data import EdgeProfile
from repro.static.diagnostics import DiagnosticReport, Severity
from repro.static.registry import Rule, select_rules

RuleSelection = Optional[Sequence[Union[str, Rule]]]


class StaticAnalysisError(Exception):
    """A module failed static analysis at error severity.

    Raised by :func:`assert_clean` (and therefore by
    ``PassManager(verify_each=...)`` at pass boundaries). ``report``
    carries every finding, not just the errors.
    """

    def __init__(
        self,
        report: DiagnosticReport,
        context: str = "",
        fail_on: "Severity" = Severity.ERROR,
    ) -> None:
        findings = report.at_least(fail_on)
        head = f"{len(findings)} static-analysis finding(s) at {fail_on}+"
        if context:
            head += f" {context}"
        super().__init__(
            head + ":\n" + "\n".join(d.render() for d in findings)
        )
        self.report = report
        self.context = context


class AnalysisContext:
    """Shared facts about the module under analysis.

    Everything is computed lazily: a structural-only run never pays for
    the census, a profile-less run never touches flow data.
    """

    def __init__(
        self, module: Module, profile: Optional[EdgeProfile] = None
    ) -> None:
        self.module = module
        self.profile = profile
        self._address_taken: Optional[FrozenSet[str]] = None
        self._num_params: Optional[Dict[str, int]] = None

    @property
    def pointsto(self):
        """Andersen points-to solution for the module (lazy + memoized
        per module object, so repeated contexts over one module share
        the solve)."""
        from repro.analysis.pointsto import analyze_pointsto

        return analyze_pointsto(self.module)

    @property
    def has_fptr_tables(self) -> bool:
        """Whether the module declares any function-pointer tables.

        Hand-built test modules often model icalls without tables; the
        address-taken census is unknowable there, so census-based checks
        go vacuous instead of flagging every target.
        """
        return bool(self.module.fptr_tables)

    @property
    def address_taken(self) -> FrozenSet[str]:
        """Census of functions whose address escapes into a pointer table
        — the static universe of feasible indirect-call targets."""
        if self._address_taken is None:
            self._address_taken = self.module.address_taken()
        return self._address_taken

    def num_params(self, func_name: str) -> Optional[int]:
        """Parameter count of a defined function (``None`` if undefined)."""
        if self._num_params is None:
            self._num_params = {
                f.name: f.num_params for f in self.module
            }
        return self._num_params.get(func_name)


class StaticAnalyzer:
    """Runs a fixed rule selection over modules."""

    def __init__(self, rules: RuleSelection = None) -> None:
        if rules is not None and any(isinstance(r, Rule) for r in rules):
            self.rules = [
                r if isinstance(r, Rule) else _by_name(r) for r in rules
            ]
        else:
            self.rules = select_rules(rules)  # type: ignore[arg-type]

    def analyze(
        self, module: Module, profile: Optional[EdgeProfile] = None
    ) -> DiagnosticReport:
        ctx = AnalysisContext(module, profile=profile)
        report = DiagnosticReport(module_name=module.name)
        for rule in self.rules:
            if rule.requires_profile and profile is None:
                continue
            report.rules.append(rule.name)
            report.extend(list(rule.run(module, ctx)))
        return report.sort()


def _by_name(name: str) -> Rule:
    from repro.static.registry import get_rule

    return get_rule(name)


def analyze_module(
    module: Module,
    rules: RuleSelection = None,
    profile: Optional[EdgeProfile] = None,
) -> DiagnosticReport:
    """One-shot analysis: run ``rules`` (default: all) over ``module``."""
    return StaticAnalyzer(rules).analyze(module, profile=profile)


def assert_clean(
    module: Module,
    rules: RuleSelection = None,
    profile: Optional[EdgeProfile] = None,
    context: str = "",
    fail_on: Severity = Severity.ERROR,
) -> DiagnosticReport:
    """Analyze and raise :class:`StaticAnalysisError` on findings at or
    above ``fail_on``; returns the report when clean enough."""
    report = analyze_module(module, rules=rules, profile=profile)
    if report.at_least(fail_on):
        raise StaticAnalysisError(report, context=context, fail_on=fail_on)
    return report
