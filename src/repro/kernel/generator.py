"""Synthetic-kernel assembly: build order, validation, and summary stats.

``build_kernel`` is deterministic per spec: the same :class:`KernelSpec`
always yields a structurally identical module. Call-site ids are drawn
from a process-global counter, so profiles are keyed to one build and its
deep copies — the pipeline copies the baseline module per variant, which
is how one profiling run feeds every configuration in the evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.ir.validate import validate_module
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec
from repro.kernel.subsystems import (
    block,
    boot,
    drivers,
    entry,
    ipc,
    mm,
    net,
    sched,
    signal,
    timers,
    vfs,
    workqueue,
)

#: Build order matters only for name references inside builders; validation
#: at the end catches any dangling reference regardless.
_BUILDERS = (
    entry.build,
    vfs.build,
    net.build,
    mm.build,
    sched.build,
    ipc.build,
    signal.build,
    timers.build,
    block.build,
    workqueue.build,
    drivers.build,
    boot.build,
)


def build_kernel(spec: KernelSpec = DEFAULT_SPEC) -> Module:
    """Construct and validate the synthetic kernel."""
    module = Module(name=f"vmlinux-seed{spec.seed}")
    rng = random.Random(spec.seed)
    for builder in _BUILDERS:
        builder(module, spec, rng)
    validate_module(module)
    return module


@dataclass(frozen=True)
class KernelStats:
    """Static census of a kernel image."""

    functions: int
    instructions: int
    icall_sites: int
    return_sites: int
    switch_sites: int
    ijump_sites: int
    fptr_tables: int
    syscalls: int
    address_taken: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "functions": self.functions,
            "instructions": self.instructions,
            "icall_sites": self.icall_sites,
            "return_sites": self.return_sites,
            "switch_sites": self.switch_sites,
            "ijump_sites": self.ijump_sites,
            "fptr_tables": self.fptr_tables,
            "syscalls": self.syscalls,
            "address_taken": self.address_taken,
        }


def kernel_stats(module: Module) -> KernelStats:
    """Compute the static census of a kernel image."""
    icalls = rets = switches = ijumps = 0
    for inst in module.instructions():
        if inst.opcode == Opcode.ICALL:
            icalls += 1
        elif inst.opcode == Opcode.RET:
            rets += 1
        elif inst.opcode == Opcode.SWITCH:
            switches += 1
        elif inst.opcode == Opcode.IJUMP:
            ijumps += 1
    return KernelStats(
        functions=len(module),
        instructions=module.size(),
        icall_sites=icalls,
        return_sites=rets,
        switch_sites=switches,
        ijump_sites=ijumps,
        fptr_tables=len(module.fptr_tables),
        syscalls=len(module.syscalls),
        address_taken=len(module.address_taken()),
    )
