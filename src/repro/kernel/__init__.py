"""Synthetic Linux-like kernel: the program PIBE optimizes and hardens."""

from repro.kernel.generator import KernelStats, build_kernel, kernel_stats
from repro.kernel.helpers import Body, define, leaf, ops_table, table_dist
from repro.kernel.spec import (
    DEFAULT_SPEC,
    SCALED_SPEC,
    KernelSpec,
    ScaledSpec,
    SmallSpec,
)

__all__ = [
    "Body",
    "DEFAULT_SPEC",
    "KernelSpec",
    "KernelStats",
    "SCALED_SPEC",
    "ScaledSpec",
    "SmallSpec",
    "build_kernel",
    "define",
    "kernel_stats",
    "leaf",
    "ops_table",
    "table_dist",
]
