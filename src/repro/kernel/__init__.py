"""Synthetic Linux-like kernel: the program PIBE optimizes and hardens."""

from repro.kernel.generator import KernelStats, build_kernel, kernel_stats
from repro.kernel.helpers import Body, define, leaf, ops_table, table_dist
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec, SmallSpec

__all__ = [
    "Body",
    "DEFAULT_SPEC",
    "KernelSpec",
    "KernelStats",
    "SmallSpec",
    "build_kernel",
    "define",
    "kernel_stats",
    "leaf",
    "ops_table",
    "table_dist",
]
