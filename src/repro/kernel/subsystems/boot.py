"""Boot-only initialization code (``__init`` sections).

These functions run once during early boot and are unmapped afterwards;
the paper's security analysis exempts their backward edges from transient
hardening (Section 8.6). They reference driver probe functions, keeping
the cold driver bulk rooted against dead-code elimination the same way
``initcall`` tables do in the real kernel.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "init"


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    probes = sorted(
        name for name in module.functions if name.endswith("_probe")
    )
    initcalls = []
    for i in range(spec.num_boot_functions):
        name = f"init_stage_{i}"
        body = define(
            module,
            name,
            SUBSYSTEM,
            params=0,
            attrs=[FunctionAttr.BOOT_ONLY],
        )
        body.work(
            arith=rng.randint(4, 12),
            loads=rng.randint(1, 4),
            stores=rng.randint(1, 4),
        )
        body.call("kmalloc", args=2)
        if probes:
            body.call(probes[i % len(probes)], args=2)
        body.done()
        initcalls.append(name)

    body = define(
        module,
        "start_kernel",
        SUBSYSTEM,
        params=0,
        attrs=[FunctionAttr.BOOT_ONLY, FunctionAttr.NOINLINE],
    )
    for name in initcalls:
        body.call(name, args=0)
    body.done()
