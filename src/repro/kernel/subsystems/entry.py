"""Core kernel plumbing: shared helpers every subsystem leans on.

This is where the synthetic kernel gets its realistic *backward-edge*
weight: tiny, extremely hot helpers (locking, RCU, uaccess, slab) called
from every path. Each dynamic call contributes one return the paper's
return retpolines must otherwise pay for — exactly the weight PIBE's
inliner is designed to elide.

Also defines:

- the LSM security-hook layer — stacks of single-target indirect calls,
  matching the paper's observation (Table 4) that most kernel indirect
  call sites have exactly one observed target;
- the paravirt hypercall wrappers (inline assembly, not hardenable — the
  vulnerable indirect calls of Table 11);
- opaque assembly trampolines (the five vulnerable indirect jumps);
- the syscall dispatch switch (a jump-table candidate).
"""

from __future__ import annotations

import random
from typing import List

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "core"

#: LSM hook points wired through the stacked-module tables.
LSM_HOOKS = (
    "file_permission",
    "file_open",
    "task_create",
    "socket_sendmsg",
    "mmap_region",
    "signal_deliver",
)

_LSM_MODULE_NAMES = ("capability", "selinux", "yama", "lockdown", "apparmor")


def lsm_table_name(hook: str) -> str:
    return f"lsm_{hook}_hooks"


def security_hook_name(hook: str) -> str:
    return f"security_{hook}"


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_primitives(module, spec)
    _build_uaccess(module, spec)
    _build_lsm(module, spec)
    _build_paravirt(module, spec, rng)
    _build_trampolines(module, spec)
    _build_null_syscalls(module, spec)
    _build_dispatch(module, spec)


# -- locking / RCU / slab -----------------------------------------------------


def _build_primitives(module: Module, spec: KernelSpec) -> None:
    leaf(module, "get_current", SUBSYSTEM, work=1, loads=1, stores=0, params=0)
    leaf(module, "preempt_disable", SUBSYSTEM, work=1, loads=0, stores=1, params=0)
    leaf(module, "preempt_enable", SUBSYSTEM, work=1, loads=1, stores=1, params=0)

    # Paravirt-backed IRQ control used by the spinlock fast path: the
    # wrappers themselves are built in _build_paravirt, forward-declared
    # here by name.
    body = define(module, "spin_lock", SUBSYSTEM, params=1, frame=16)
    body.call("preempt_disable", args=0)
    body.work(arith=2, loads=1, stores=1)
    body.maybe(0.02, lambda b: b.work(arith=8, loads=2))  # contention spin
    body.done()

    body = define(module, "spin_unlock", SUBSYSTEM, params=1, frame=16)
    body.work(arith=1, loads=0, stores=1)
    body.call("preempt_enable", args=0)
    body.done()

    body = define(module, "spin_lock_irqsave", SUBSYSTEM, params=1, frame=16)
    body.call("pv_irq_save", args=0)
    body.work(arith=2, loads=1, stores=1)
    body.done()

    body = define(module, "spin_unlock_irqrestore", SUBSYSTEM, params=1, frame=16)
    body.work(arith=1, stores=1)
    body.call("pv_irq_restore", args=1)
    body.done()

    leaf(module, "rcu_read_lock", SUBSYSTEM, work=1, loads=0, stores=1, params=0)
    leaf(module, "rcu_read_unlock", SUBSYSTEM, work=1, loads=0, stores=1, params=0)

    body = define(module, "mutex_lock", SUBSYSTEM, params=1, frame=24)
    body.work(arith=2, loads=1, stores=1)
    body.maybe(0.03, lambda b: b.call("mutex_lock_slowpath", args=1))
    body.done()
    body = define(module, "mutex_lock_slowpath", SUBSYSTEM, params=1, frame=48)
    body.call("spin_lock", args=1)
    body.work(arith=6, loads=2, stores=2)
    body.call("spin_unlock", args=1)
    body.done()
    body = define(module, "mutex_unlock", SUBSYSTEM, params=1, frame=16)
    body.work(arith=2, loads=1, stores=1)
    body.done()

    # Slab allocator fast path with occasional refill.
    body = define(module, "kmem_cache_refill", SUBSYSTEM, params=2, frame=64)
    body.call("spin_lock_irqsave", args=1)
    body.work(arith=10, loads=4, stores=4)
    body.call("spin_unlock_irqrestore", args=1)
    body.done()
    body = define(module, "kmalloc", SUBSYSTEM, params=2, frame=32)
    body.work(arith=3, loads=2, stores=1)
    body.maybe(0.05, lambda b: b.call("kmem_cache_refill", args=2))
    body.done()
    body = define(module, "kfree", SUBSYSTEM, params=1, frame=16)
    body.work(arith=2, loads=1, stores=1)
    body.done()

    # String/memory primitives are hand-written assembly in the real
    # kernel: callable and return-thunk-protectable, but never inlinable —
    # a permanent source of defended hot returns (Table 9's "other").
    leaf(
        module, "memset_kernel", SUBSYSTEM, work=6, loads=0, stores=4,
        params=2, attrs=[FunctionAttr.NOINLINE],
    )
    leaf(
        module, "memcpy_kernel", SUBSYSTEM, work=4, loads=3, stores=3,
        params=3, attrs=[FunctionAttr.NOINLINE],
    )

    # File-descriptor table access.
    body = define(module, "fdget", SUBSYSTEM, params=1, frame=16)
    body.call("rcu_read_lock", args=0)
    body.work(arith=2, loads=2)
    body.done()
    body = define(module, "fdput", SUBSYSTEM, params=1, frame=16)
    body.work(arith=1, loads=1)
    body.call("rcu_read_unlock", args=0)
    body.done()

    # Wait-queue machinery (used by pipes, sockets, poll).
    leaf(module, "default_wake_function", SUBSYSTEM, work=4, loads=2, stores=2, params=2)
    leaf(module, "autoremove_wake_function", SUBSYSTEM, work=5, loads=2, stores=2, params=2)
    ops_table(
        module,
        "wait_queue_funcs",
        ["default_wake_function", "autoremove_wake_function"],
    )
    body = define(module, "wake_up_common", SUBSYSTEM, params=2, frame=40)
    body.call("spin_lock_irqsave", args=1)
    body.icall(
        {"default_wake_function": 7, "autoremove_wake_function": 3},
        args=2,
        table="wait_queue_funcs",
    )
    body.call("spin_unlock_irqrestore", args=1)
    body.done()


# -- user memory access ---------------------------------------------------------


def _build_uaccess(module: Module, spec: KernelSpec) -> None:
    leaf(module, "stac", SUBSYSTEM, work=1, loads=0, stores=0, params=0)
    leaf(module, "clac", SUBSYSTEM, work=1, loads=0, stores=0, params=0)

    # uaccess primitives: rep-movs assembly with fixup tables in the
    # real kernel — noinline for the same reason as memcpy above.
    for name in ("copy_to_user", "copy_from_user"):
        body = define(
            module, name, SUBSYSTEM, params=3, frame=32,
            attrs=[FunctionAttr.NOINLINE],
        )
        body.call("stac", args=0)
        body.loop(
            spec.copy_user_chunks,
            lambda b: b.work(arith=2, loads=2, stores=2),
        )
        body.call("clac", args=0)
        body.done()

    body = define(
        module, "strncpy_from_user", SUBSYSTEM, params=3, frame=32,
        attrs=[FunctionAttr.NOINLINE],
    )
    body.call("stac", args=0)
    body.loop(2, lambda b: b.work(arith=3, loads=2, stores=1))
    body.call("clac", args=0)
    body.done()


# -- LSM security hooks -----------------------------------------------------------


def _build_lsm(module: Module, spec: KernelSpec) -> None:
    modules = _LSM_MODULE_NAMES[: max(1, spec.lsm_modules)]
    for hook in LSM_HOOKS:
        entries: List[str] = []
        for mod in modules:
            name = f"lsm_{mod}_{hook}"
            leaf(module, name, "security", work=3, loads=2, stores=0, params=2)
            entries.append(name)
        ops_table(module, lsm_table_name(hook), entries)
        body = define(module, security_hook_name(hook), "security", params=2)
        body.work(arith=1, loads=1)
        # The hook list is walked module by module: each step is an
        # indirect call with a single runtime target.
        for name in entries:
            body.icall({name: 1}, args=2, table=lsm_table_name(hook))
        body.done()


# -- paravirt (inline assembly, not hardenable) ------------------------------------


def _build_paravirt(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    # The first five are referenced from hot paths and always built.
    pv_names = [
        "pv_irq_save",
        "pv_irq_restore",
        "pv_read_cr2",
        "pv_flush_tlb",
        "pv_load_tls",
        "pv_write_msr",
        "pv_read_msr",
        "pv_set_pte",
        "pv_cpuid",
        "pv_io_delay",
        "pv_wbinvd",
        "pv_swapgs",
    ][: max(spec.num_paravirt_calls, 5)]

    native_entries = []
    for pv in pv_names:
        native = pv.replace("pv_", "native_")
        leaf(module, native, "paravirt", work=2, loads=1, stores=1, params=1)
        native_entries.append(native)
    ops_table(module, "pv_ops", native_entries)

    for pv, native in zip(pv_names, native_entries):
        # The paravirt dispatch is an inline-assembly macro expanded into
        # ordinary (inlinable) wrapper functions: LLVM cannot retpoline the
        # memory-indirect hypercall (Table 11's vulnerable indirect calls),
        # and inlining the wrapper duplicates the vulnerable site — exactly
        # how the paper's count grows with the optimization budget.
        body = define(module, pv, "paravirt", params=1)
        body.work(arith=1, loads=1)
        body.icall({native: 1}, args=1, table="pv_ops", asm=True)
        body.done()

    # Root the wrappers not referenced from hot paths (the real pv_ops
    # structure references every operation).
    ops_table(module, "pv_wrapper_table", pv_names)


# -- opaque assembly trampolines ------------------------------------------------------


def _build_trampolines(module: Module, spec: KernelSpec) -> None:
    names = []
    for i in range(spec.num_asm_ijumps):
        body = define(
            module,
            f"asm_trampoline_{i}",
            "asm",
            params=0,
            attrs=[FunctionAttr.INLINE_ASM, FunctionAttr.NOINLINE],
        )
        body.work(arith=1, loads=1)
        body.b.ijump()  # opaque register jump; never a ret
        # (no .done(): the ijump terminates the function)
        names.append(f"asm_trampoline_{i}")
    # Entry-trampoline vector keeps them in the image (like the IDT/entry
    # stubs referencing the real kernel's asm trampolines).
    ops_table(module, "asm_entry_vector", names)


# -- trivial syscalls -------------------------------------------------------------------


def _build_null_syscalls(module: Module, spec: KernelSpec) -> None:
    body = define(
        module,
        "sys_getppid",
        SUBSYSTEM,
        params=0,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("get_current", args=0)
    body.work(arith=2, loads=2)
    body.done()
    module.register_syscall("getppid", "sys_getppid")


# -- syscall dispatch table ----------------------------------------------------------------


def _build_dispatch(module: Module, spec: KernelSpec) -> None:
    """The syscall-number dispatch switch — the kernel's most prominent
    jump-table candidate. Workloads invoke handlers directly (the dispatch
    cost is folded into the kernel-entry constant), but the switch exists
    in the image and shows up in the vanilla kernel's vulnerable
    indirect-jump census."""
    body = define(
        module,
        "do_syscall_64",
        SUBSYSTEM,
        params=1,
        attrs=[FunctionAttr.SYSCALL_ENTRY, FunctionAttr.NOINLINE],
    )
    body.work(arith=2, loads=1)
    arms = [
        (1.0, lambda b: b.work(arith=2, loads=1))
        for _ in range(spec.syscall_switch_arms)
    ]
    body.switch(arms)
    body.done()
