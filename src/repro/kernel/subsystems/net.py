"""Networking stack: sockets, TCP/UDP/UNIX protocol ops, poll/select.

This subsystem supplies the indirect-branch-dense paths that dominate the
paper's worst microbenchmarks: ``select_tcp`` loops an indirect poll call
over every watched descriptor (567% overhead under unoptimized
all-defenses, Table 5), and TCP transmit descends through protocol and
device op tables.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec
from repro.kernel.subsystems.entry import security_hook_name

SUBSYSTEM = "net"

PROTO_SENDMSG = {"tcp_sendmsg": 55, "udp_sendmsg": 25, "unix_stream_sendmsg": 20}
PROTO_RECVMSG = {"tcp_recvmsg": 55, "udp_recvmsg": 25, "unix_stream_recvmsg": 20}
PROTO_POLL = {"tcp_poll": 70, "udp_poll": 15, "unix_poll": 15}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_skb(module, spec)
    _build_device_layer(module, spec)
    _build_protocols(module, spec)
    _build_socket_layer(module, spec)
    _build_syscalls(module, spec)


# -- socket buffers ------------------------------------------------------------


def _build_skb(module: Module, spec: KernelSpec) -> None:
    body = define(module, "alloc_skb", SUBSYSTEM, params=2, frame=48)
    body.call("kmalloc", args=2)
    body.call("memset_kernel", args=2)
    body.work(arith=3, stores=2)
    body.done()

    body = define(module, "kfree_skb", SUBSYSTEM, params=1, frame=16)
    body.work(arith=2, loads=1)
    body.call("kfree", args=1)
    body.done()

    body = define(module, "skb_copy_datagram_from_user", SUBSYSTEM, params=3, frame=48)
    body.call("copy_from_user", args=3)
    body.work(arith=2, stores=1)
    body.done()

    body = define(module, "skb_copy_datagram_to_user", SUBSYSTEM, params=3, frame=48)
    body.call("copy_to_user", args=3)
    body.work(arith=2, loads=1)
    body.done()


# -- device layer ----------------------------------------------------------------


def _build_device_layer(module: Module, spec: KernelSpec) -> None:
    body = define(module, "loopback_xmit", SUBSYSTEM, params=2, frame=48)
    body.work(arith=4, loads=2, stores=2)
    body.call("netif_rx_internal", args=1)
    body.done()

    leaf(module, "veth_xmit", SUBSYSTEM, work=6, loads=3, stores=3, params=2)
    ops_table(module, "ndo_start_xmit_ops", ["loopback_xmit", "veth_xmit"])

    body = define(module, "netif_rx_internal", SUBSYSTEM, params=1, frame=48)
    body.work(arith=4, loads=2, stores=2)
    body.call("spin_lock", args=1)
    body.work(arith=2, stores=1)
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "dev_queue_xmit", SUBSYSTEM, params=2, frame=64)
    body.work(arith=3, loads=2)
    body.icall({"loopback_xmit": 9, "veth_xmit": 1}, args=2, table="ndo_start_xmit_ops")
    body.done()


# -- protocol implementations --------------------------------------------------------


def _build_protocols(module: Module, spec: KernelSpec) -> None:
    # Routing layer: every emitted packet leaves through dst->output.
    body = define(module, "ip_output", SUBSYSTEM, params=2, frame=48)
    body.work(arith=3, loads=2)
    body.call("dev_queue_xmit", args=2)
    body.done()
    leaf(module, "ip_mc_output", SUBSYSTEM, work=4, loads=2, stores=1, params=2)
    ops_table(module, "dst_output_ops", ["ip_output", "ip_mc_output"])

    # IP layer shared by TCP/UDP.
    body = define(module, "ip_queue_xmit", SUBSYSTEM, params=2, frame=64)
    body.work(arith=5, loads=3, stores=2)
    body.icall(
        {"ip_output": 49, "ip_mc_output": 1}, args=2, table="dst_output_ops"
    )
    body.done()

    # -- TCP --
    body = define(module, "tcp_write_xmit", SUBSYSTEM, params=2, frame=96)
    body.loop(
        spec.tcp_segments,
        lambda b: (
            b.work(arith=5, loads=3, stores=2),
            b.call("ip_queue_xmit", args=2),
        ),
    )
    body.done()

    body = define(module, "tcp_sendmsg", SUBSYSTEM, params=3, frame=96)
    body.call("mutex_lock", args=1)
    body.work(arith=40, loads=14, stores=8)  # segmentation, cong. control
    body.call("alloc_skb", args=2)
    body.call("skb_copy_datagram_from_user", args=3)
    body.call("tcp_write_xmit", args=2)
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "tcp_recvmsg", SUBSYSTEM, params=3, frame=96)
    body.call("mutex_lock", args=1)
    body.work(arith=30, loads=12, stores=6)  # receive-queue walk
    body.call("skb_copy_datagram_to_user", args=3)
    body.call("kfree_skb", args=1)
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "tcp_poll", SUBSYSTEM, params=2, frame=32)
    body.work(arith=4, loads=3)
    body.done()

    body = define(module, "tcp_v4_connect", SUBSYSTEM, params=3, frame=96)
    body.work(arith=45, loads=15, stores=10)  # route lookup, hash insert
    body.call("ip_queue_xmit", args=2)  # SYN
    body.call("mod_timer", args=2)
    body.done()

    body = define(module, "tcp_v4_do_rcv", SUBSYSTEM, params=2, frame=64)
    body.work(arith=6, loads=4, stores=2)
    body.call("wake_up_common", args=2)
    body.done()

    # -- UDP --
    body = define(module, "udp_sendmsg", SUBSYSTEM, params=3, frame=64)
    body.call("alloc_skb", args=2)
    body.call("skb_copy_datagram_from_user", args=3)
    body.call("ip_queue_xmit", args=2)
    body.done()

    body = define(module, "udp_recvmsg", SUBSYSTEM, params=3, frame=64)
    body.work(arith=3, loads=2)
    body.call("skb_copy_datagram_to_user", args=3)
    body.call("kfree_skb", args=1)
    body.done()

    leaf(module, "udp_poll", SUBSYSTEM, work=3, loads=2, params=2)

    # -- AF_UNIX --
    body = define(module, "unix_stream_sendmsg", SUBSYSTEM, params=3, frame=64)
    body.call("mutex_lock", args=1)
    body.call("alloc_skb", args=2)
    body.call("skb_copy_datagram_from_user", args=3)
    body.call("wake_up_common", args=2)
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "unix_stream_recvmsg", SUBSYSTEM, params=3, frame=64)
    body.call("mutex_lock", args=1)
    body.call("skb_copy_datagram_to_user", args=3)
    body.call("kfree_skb", args=1)
    body.call("mutex_unlock", args=1)
    body.done()

    leaf(module, "unix_poll", SUBSYSTEM, work=3, loads=2, params=2)

    ops_table(
        module, "proto_sendmsg_ops", list(PROTO_SENDMSG)
    )
    ops_table(
        module, "proto_recvmsg_ops", list(PROTO_RECVMSG)
    )
    ops_table(module, "proto_poll_ops", list(PROTO_POLL))
    ops_table(
        module,
        "proto_connect_ops",
        ["tcp_v4_connect", "unix_connect_stub"],
    )
    leaf(module, "unix_connect_stub", SUBSYSTEM, work=5, loads=2, stores=2, params=3)


# -- generic socket layer ----------------------------------------------------------


def _build_socket_layer(module: Module, spec: KernelSpec) -> None:
    body = define(module, "sock_sendmsg", SUBSYSTEM, params=3, frame=48)
    body.call(security_hook_name("socket_sendmsg"), args=2)
    body.icall(PROTO_SENDMSG, args=3, table="proto_sendmsg_ops")
    body.done()

    body = define(module, "sock_recvmsg", SUBSYSTEM, params=3, frame=48)
    body.work(arith=2, loads=1)
    body.icall(PROTO_RECVMSG, args=3, table="proto_recvmsg_ops")
    body.done()

    body = define(module, "sock_poll", SUBSYSTEM, params=2, frame=32)
    body.work(arith=1, loads=1)
    body.icall(PROTO_POLL, args=2, table="proto_poll_ops")
    body.done()

    # file_operations glue: sockets read/written through the VFS.
    body = define(module, "sock_read_iter", SUBSYSTEM, params=3, frame=48)
    body.call("sock_recvmsg", args=3)
    body.done()

    body = define(module, "sock_write_iter", SUBSYSTEM, params=3, frame=48)
    body.call("sock_sendmsg", args=3)
    body.done()


# -- syscalls -------------------------------------------------------------------------


def _build_syscalls(module: Module, spec: KernelSpec) -> None:
    for syscall, handler, op in (
        ("sendto", "sys_sendto", "sock_sendmsg"),
        ("recvfrom", "sys_recvfrom", "sock_recvmsg"),
    ):
        body = define(
            module,
            handler,
            SUBSYSTEM,
            params=3,
            attrs=[FunctionAttr.SYSCALL_ENTRY],
        )
        body.call("fdget", args=1)
        body.call(op, args=3)
        body.call("fdput", args=1)
        body.done()
        module.register_syscall(syscall, handler)

    body = define(
        module,
        "sys_connect",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("kmalloc", args=2)  # sockaddr copy buffer
    body.call("copy_from_user", args=3)
    body.icall(
        {"tcp_v4_connect": 9, "unix_connect_stub": 1},
        args=3,
        table="proto_connect_ops",
    )
    body.call("kfree", args=1)
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("connect", "sys_connect")
    # LMBench's tcp_conn bench measures exactly this path.
    module.register_syscall("tcp_conn", "sys_connect")

    # Protocol-family ping-pong fast paths: distinct indirect call sites
    # whose runtime target mix is dominated by one protocol (the socket
    # type the bench uses) with minority traffic from others — yielding
    # the multi-target value profiles of Table 4.
    body = define(
        module,
        "sys_tcp_pingpong",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.icall(
        {"tcp_sendmsg": 94, "unix_stream_sendmsg": 4, "udp_sendmsg": 2},
        args=3,
        table="proto_sendmsg_ops",
    )
    body.call("tcp_v4_do_rcv", args=2)
    body.icall(
        {"tcp_recvmsg": 94, "unix_stream_recvmsg": 4, "udp_recvmsg": 2},
        args=3,
        table="proto_recvmsg_ops",
    )
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("tcp", "sys_tcp_pingpong")

    body = define(
        module,
        "sys_udp_pingpong",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.icall(
        {"udp_sendmsg": 95, "tcp_sendmsg": 3, "unix_stream_sendmsg": 2},
        args=3,
        table="proto_sendmsg_ops",
    )
    body.icall(
        {"udp_recvmsg": 95, "tcp_recvmsg": 3, "unix_stream_recvmsg": 2},
        args=3,
        table="proto_recvmsg_ops",
    )
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("udp", "sys_udp_pingpong")

    # select/poll: the fd-scan loops.
    vfs_poll_dist = {
        "ext4_file_poll": 60,
        "tmpfs_file_poll": 20,
        "pipe_poll": 12,
        "sock_poll": 8,
    }
    body = define(module, "vfs_poll", SUBSYSTEM, params=2, frame=32)
    body.work(arith=1, loads=1)
    body.icall(vfs_poll_dist, args=2, table="file_poll_ops")
    body.done()

    body = define(module, "do_select_files", SUBSYSTEM, params=3, frame=128)
    body.work(arith=4, loads=2, stores=2)
    body.loop(
        spec.select_file_fds,
        lambda b: (b.call("fdget", args=1), b.call("vfs_poll", args=2), b.call("fdput", args=1)),
    )
    body.call("copy_to_user", args=3)
    body.done()

    body = define(
        module,
        "sys_select_file",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("copy_from_user", args=3)
    body.call("do_select_files", args=3)
    body.done()
    module.register_syscall("select_file", "sys_select_file")

    # The select fast path resolves its struct files once up front; the
    # per-fd loop is almost pure indirect dispatch (file->poll ->
    # sock_poll -> proto poll), which is why retpolines more than double
    # this bench in the paper (Table 3: select_tcp +146.5%).
    sock_poll_dist = {"sock_poll": 1}
    body = define(module, "do_select_tcp", SUBSYSTEM, params=3, frame=128)
    body.call("fdget", args=1)
    body.work(arith=4, loads=2, stores=2)
    body.loop(
        spec.select_tcp_fds,
        lambda b: (
            b.work(arith=1, loads=1),
            b.icall(sock_poll_dist, args=2, table="file_poll_ops"),
        ),
    )
    body.call("fdput", args=1)
    body.call("copy_to_user", args=3)
    body.done()

    body = define(
        module,
        "sys_select_tcp",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("copy_from_user", args=3)
    body.call("do_select_tcp", args=3)
    body.done()
    module.register_syscall("select_tcp", "sys_select_tcp")
