"""Pipes and the AF_UNIX rendezvous paths used by the ``pipe`` and
``af_unix`` latency benches: a write into one end, a wake-up through the
wait-queue indirect call, and a read from the other."""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "ipc"


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_pipe(module, spec)
    _build_syscalls(module, spec)


def _build_pipe(module: Module, spec: KernelSpec) -> None:
    body = define(module, "pipe_write", SUBSYSTEM, params=3, frame=64)
    body.call("mutex_lock", args=1)
    body.call("copy_from_user", args=3)
    body.work(arith=3, loads=1, stores=2)
    body.call("wake_up_common", args=2)
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "pipe_read", SUBSYSTEM, params=3, frame=64)
    body.call("mutex_lock", args=1)
    body.work(arith=3, loads=2)
    body.call("copy_to_user", args=3)
    body.call("wake_up_common", args=2)
    body.call("mutex_unlock", args=1)
    body.done()

    leaf(module, "pipe_poll", SUBSYSTEM, work=3, loads=2, params=2)

    body = define(module, "alloc_pipe_info", SUBSYSTEM, params=0, frame=64)
    body.call("kmalloc", args=2)
    body.call("kmalloc", args=2)
    body.call("memset_kernel", args=2)
    body.done()


def _build_syscalls(module: Module, spec: KernelSpec) -> None:
    # One pipe latency operation: write one token, context-switch, read it.
    body = define(
        module,
        "sys_pipe_pingpong",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("pipe_write", args=3)
    body.call("fdput", args=1)
    body.call("__schedule", args=0)
    body.call("fdget", args=1)
    body.call("pipe_read", args=3)
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("pipe", "sys_pipe_pingpong")

    # AF_UNIX round trip: send + wake + schedule + recv, dispatched through
    # a site whose targets are dominated by the unix protocol ops.
    body = define(
        module,
        "sys_af_unix_pingpong",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.icall(
        {"unix_stream_sendmsg": 95, "tcp_sendmsg": 3, "udp_sendmsg": 2},
        args=3,
        table="proto_sendmsg_ops",
    )
    body.call("fdput", args=1)
    body.call("__schedule", args=0)
    body.call("fdget", args=1)
    body.icall(
        {"unix_stream_recvmsg": 95, "tcp_recvmsg": 3, "udp_recvmsg": 2},
        args=3,
        table="proto_recvmsg_ops",
    )
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("af_unix", "sys_af_unix_pingpong")
