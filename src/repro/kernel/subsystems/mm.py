"""Memory management: mmap, page-fault handling, and VMA machinery.

Page faults enter through an exception vector rather than a syscall, but
exercise the same instrumented kernel code (the ``page_fault`` LMBench
latency bench); we register the fault handler as an entry point alongside
the syscalls.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec
from repro.kernel.subsystems.entry import security_hook_name

SUBSYSTEM = "mm"

FAULT_DIST = {"filemap_fault": 55, "shmem_fault": 25, "anon_fault": 20}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_vma(module, spec)
    _build_fault_handlers(module, spec)
    _build_mmap(module, spec)
    _build_page_fault(module, spec)


def _build_vma(module: Module, spec: KernelSpec) -> None:
    body = define(module, "vma_find", SUBSYSTEM, params=2, frame=32)
    body.work(arith=4, loads=4)  # maple-tree walk
    body.done()

    body = define(module, "vma_alloc", SUBSYSTEM, params=1, frame=32)
    body.call("kmalloc", args=2)
    body.call("memset_kernel", args=2)
    body.done()

    body = define(module, "vma_link", SUBSYSTEM, params=2, frame=48)
    body.call("spin_lock", args=1)
    body.work(arith=5, loads=2, stores=3)
    body.call("spin_unlock", args=1)
    body.done()

    leaf(module, "arch_get_unmapped_area", SUBSYSTEM, work=5, loads=2, params=3)
    leaf(module, "shmem_get_unmapped_area", SUBSYSTEM, work=6, loads=2, params=3)
    ops_table(
        module,
        "get_unmapped_area_ops",
        ["arch_get_unmapped_area", "shmem_get_unmapped_area"],
    )


def _build_fault_handlers(module: Module, spec: KernelSpec) -> None:
    body = define(module, "filemap_fault", SUBSYSTEM, params=2, frame=64)
    body.work(arith=4, loads=3)
    body.maybe(0.08, lambda b: b.work(arith=15, loads=8, stores=4))  # readahead
    body.done()

    body = define(module, "shmem_fault", SUBSYSTEM, params=2, frame=64)
    body.work(arith=3, loads=2)
    body.maybe(0.1, lambda b: b.call("kmalloc", args=2))
    body.done()

    body = define(module, "anon_fault", SUBSYSTEM, params=2, frame=48)
    body.call("kmalloc", args=2)
    body.call("memset_kernel", args=2)
    body.done()

    ops_table(module, "vm_fault_ops", list(FAULT_DIST))


def _build_mmap(module: Module, spec: KernelSpec) -> None:
    mmap_file_dist = {"ext4_mmap_prepare": 7, "shmem_mmap_prepare": 3}
    leaf(module, "ext4_mmap_prepare", SUBSYSTEM, work=5, loads=2, stores=1, params=2)
    leaf(module, "shmem_mmap_prepare", SUBSYSTEM, work=5, loads=2, stores=1, params=2)
    ops_table(
        module, "file_mmap_ops", ["ext4_mmap_prepare", "shmem_mmap_prepare"]
    )

    body = define(module, "do_mmap", SUBSYSTEM, params=3, frame=96)
    body.work(arith=30, loads=10, stores=6)  # flags validation, merge scan
    body.call(security_hook_name("mmap_region"), args=2)
    body.icall(
        {"arch_get_unmapped_area": 8, "shmem_get_unmapped_area": 2},
        args=3,
        table="get_unmapped_area_ops",
    )
    body.call("vma_alloc", args=1)
    body.icall(mmap_file_dist, args=2, table="file_mmap_ops")
    body.call("vma_link", args=2)
    body.done()

    body = define(
        module,
        "sys_mmap",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("mutex_lock", args=1)  # mmap_lock
    body.call("do_mmap", args=3)
    body.call("mutex_unlock", args=1)
    body.call("fdput", args=1)
    # Touch the first pages (LMBench's mmap bench walks the mapping).
    body.loop(spec.mmap_pages, lambda b: b.call("handle_mm_fault", args=2))
    body.done()
    module.register_syscall("mmap", "sys_mmap")


def _build_page_fault(module: Module, spec: KernelSpec) -> None:
    body = define(module, "handle_mm_fault", SUBSYSTEM, params=2, frame=96)
    body.call("vma_find", args=2)
    body.work(arith=12, loads=6)  # page-table walk
    body.icall(FAULT_DIST, args=2, table="vm_fault_ops")
    body.work(arith=3, loads=1, stores=2)  # PTE install
    body.done()

    body = define(
        module,
        "do_page_fault",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("pv_read_cr2", args=0)
    body.call("handle_mm_fault", args=2)
    body.done()
    module.register_syscall("page_fault", "do_page_fault")
