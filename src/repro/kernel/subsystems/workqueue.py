"""Workqueues and epoll: deferred-work and event-multiplexing machinery.

Both are indirect-call factories in the real kernel: every queued work
item is a ``work->func`` indirect call, and every epoll-watched file is
polled through ``file->f_op->poll``. The workqueue machinery executes a
little under the timer tick path; epoll contributes mostly static census
mass alongside the select() paths the latency benches use.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.kernel.helpers import define, ops_table
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "workqueue"

WORK_FUNCTIONS = {
    "vmstat_update_work": 4,
    "cache_reap_work": 3,
    "console_flush_work": 2,
    "wb_workfn": 1,
}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_workqueue(module, spec)
    _build_epoll(module, spec)


def _build_workqueue(module: Module, spec: KernelSpec) -> None:
    for name in list(WORK_FUNCTIONS):
        if name in module:
            continue  # wb_workfn comes from the block layer
        body = define(module, name, SUBSYSTEM, params=1, frame=48)
        body.work(arith=8, loads=4, stores=3)
        body.done()
    ops_table(module, "work_fn_ops", list(WORK_FUNCTIONS))

    body = define(module, "queue_work", SUBSYSTEM, params=2, frame=48)
    body.call("spin_lock_irqsave", args=1)
    body.work(arith=3, stores=2)
    body.call("wake_up_common", args=2)
    body.call("spin_unlock_irqrestore", args=1)
    body.done()

    body = define(module, "process_one_work", SUBSYSTEM, params=1, frame=64)
    body.work(arith=3, loads=2)
    body.icall(dict(WORK_FUNCTIONS), args=1, table="work_fn_ops")
    body.done()

    body = define(module, "worker_thread", SUBSYSTEM, params=1, frame=96)
    body.call("process_one_work", args=1)
    body.call("__schedule", args=0)
    body.done()
    ops_table(module, "kthread_ops", ["worker_thread"])


def _build_epoll(module: Module, spec: KernelSpec) -> None:
    body = define(module, "ep_item_poll", SUBSYSTEM, params=2, frame=32)
    body.work(arith=1, loads=1)
    body.icall(
        {
            "sock_poll": 6,
            "pipe_poll": 2,
            "ext4_file_poll": 1,
            "tmpfs_file_poll": 1,
        },
        args=2,
        table="file_poll_ops",
    )
    body.done()

    body = define(module, "ep_poll_callback", SUBSYSTEM, params=2, frame=48)
    body.call("spin_lock_irqsave", args=1)
    body.work(arith=4, stores=2)
    body.call("wake_up_common", args=2)
    body.call("spin_unlock_irqrestore", args=1)
    body.done()
    ops_table(module, "epoll_wait_queue_ops", ["ep_poll_callback"])

    body = define(module, "do_epoll_wait", SUBSYSTEM, params=3, frame=128)
    body.call("spin_lock", args=1)
    body.loop(4, lambda b: b.call("ep_item_poll", args=2))
    body.call("spin_unlock", args=1)
    body.call("copy_to_user", args=3)
    body.done()

    body = define(module, "do_epoll_ctl", SUBSYSTEM, params=3, frame=96)
    body.call("copy_from_user", args=3)
    body.call("kmalloc", args=2)
    body.call("ep_item_poll", args=2)
    body.work(arith=6, loads=3, stores=3)
    body.done()
    ops_table(module, "epoll_entry_ops", ["do_epoll_wait", "do_epoll_ctl"])
