"""Virtual filesystem layer: read/write/open/stat paths and the
``file_operations``-style op tables that generate the kernel's hottest
indirect calls (the paper's motivating example: "most applications will
read/write files", Section 8.4).

Filesystem diversity gives indirect sites their multi-target value
profiles: ``vfs_read``'s dispatch sees every registered implementation,
weighted by how the workload uses fd types (Table 4's target-count
distribution).
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec
from repro.kernel.subsystems.entry import security_hook_name

SUBSYSTEM = "fs"

#: filesystems registered on the VFS (first N per spec.filesystems).
FILESYSTEMS = ("ext4", "tmpfs", "proc", "btrfs", "xfs")

#: Weights of fd types as the workloads exercise them.
READ_DIST = {"ext4": 55, "tmpfs": 18, "proc": 2}
WRITE_DIST = {"ext4": 50, "tmpfs": 22, "proc": 1}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    filesystems = FILESYSTEMS[: max(1, spec.filesystems)]
    _build_dcache(module, spec)
    _build_fs_implementations(module, spec, filesystems)
    _build_tables(module, spec, filesystems)
    _build_read_write(module, spec, filesystems)
    _build_open(module, spec, filesystems)
    _build_stat(module, spec, filesystems)


# -- dentry cache / path walking -------------------------------------------------


def _build_dcache(module: Module, spec: KernelSpec) -> None:
    leaf(module, "d_hash", SUBSYSTEM, work=4, loads=1, stores=0, params=2)
    leaf(module, "dput", SUBSYSTEM, work=2, loads=1, stores=1, params=1)
    leaf(module, "path_put", SUBSYSTEM, work=2, loads=1, stores=1, params=1)

    body = define(module, "d_lookup_fast", SUBSYSTEM, params=2, frame=32)
    body.call("rcu_read_lock", args=0)
    body.call("d_hash", args=2)
    body.work(arith=3, loads=3)
    body.call("rcu_read_unlock", args=0)
    body.done()

    body = define(module, "d_lookup_slow", SUBSYSTEM, params=2, frame=64)
    body.call("spin_lock", args=1)
    body.call("d_hash", args=2)
    body.work(arith=8, loads=4, stores=2)
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "getname", SUBSYSTEM, params=1, frame=32)
    body.call("kmalloc", args=2)
    body.call("strncpy_from_user", args=3)
    body.done()

    body = define(module, "putname", SUBSYSTEM, params=1, frame=16)
    body.call("kfree", args=1)
    body.done()


# -- per-filesystem implementations -----------------------------------------------


def _build_fs_implementations(
    module: Module, spec: KernelSpec, filesystems
) -> None:
    for fs in filesystems:
        # read_iter: page-cache fetch + copy to userspace.
        body = define(module, f"{fs}_file_read_iter", SUBSYSTEM, params=3, frame=64)
        body.work(arith=14, loads=6, stores=2)
        body.call(f"{fs}_get_folio", args=2)
        body.call("copy_to_user", args=3)
        body.work(arith=2, loads=1, stores=1)
        body.done()

        body = define(module, f"{fs}_get_folio", SUBSYSTEM, params=2, frame=48)
        body.work(arith=4, loads=3)
        body.maybe(0.04, lambda b: b.work(arith=12, loads=6, stores=2))  # miss
        body.done()

        body = define(module, f"{fs}_file_write_iter", SUBSYSTEM, params=3, frame=64)
        body.work(arith=14, loads=5, stores=4)
        body.call("copy_from_user", args=3)
        body.call(f"{fs}_get_folio", args=2)
        body.work(arith=3, loads=1, stores=3)
        body.maybe(0.05, lambda b: b.call(f"{fs}_balance_dirty", args=1))
        body.done()

        body = define(module, f"{fs}_balance_dirty", SUBSYSTEM, params=1, frame=32)
        body.work(arith=6, loads=3, stores=2)
        # past the dirty threshold, kick the writeback workqueue
        body.maybe(0.2, lambda b: b.call("queue_work", args=2))
        body.done()

        body = define(module, f"{fs}_lookup", SUBSYSTEM, params=2, frame=48)
        body.work(arith=5, loads=3)
        body.call("d_hash", args=2)
        body.done()

        body = define(module, f"{fs}_file_open", SUBSYSTEM, params=2, frame=48)
        body.work(arith=4, loads=2, stores=2)
        body.call("kmalloc", args=2)
        body.done()

        body = define(module, f"{fs}_getattr", SUBSYSTEM, params=2, frame=32)
        body.work(arith=4, loads=3)
        body.done()

        leaf(module, f"{fs}_file_poll", SUBSYSTEM, work=3, loads=2, params=2)
        leaf(module, f"{fs}_release", SUBSYSTEM, work=3, loads=1, stores=1, params=1)


def _build_tables(module: Module, spec: KernelSpec, filesystems) -> None:
    ops_table(
        module,
        "file_read_ops",
        [f"{fs}_file_read_iter" for fs in filesystems]
        + ["pipe_read", "sock_read_iter"],
    )
    ops_table(
        module,
        "file_write_ops",
        [f"{fs}_file_write_iter" for fs in filesystems]
        + ["pipe_write", "sock_write_iter"],
    )
    ops_table(
        module, "inode_lookup_ops", [f"{fs}_lookup" for fs in filesystems]
    )
    ops_table(
        module, "file_open_ops", [f"{fs}_file_open" for fs in filesystems]
    )
    ops_table(
        module, "inode_getattr_ops", [f"{fs}_getattr" for fs in filesystems]
    )
    ops_table(
        module,
        "file_poll_ops",
        [f"{fs}_file_poll" for fs in filesystems]
        + ["pipe_poll", "sock_poll"],
    )


# -- read / write syscalls -------------------------------------------------------------


def _build_read_write(module: Module, spec: KernelSpec, filesystems) -> None:
    active = [fs for fs in filesystems if fs in READ_DIST]

    read_dist = {
        f"{fs}_file_read_iter": READ_DIST[fs] for fs in active
    }
    read_dist["pipe_read"] = 9
    read_dist["sock_read_iter"] = 7

    leaf(module, "rw_verify_area", SUBSYSTEM, work=3, loads=2, params=3)
    leaf(module, "file_pos_read", SUBSYSTEM, work=2, loads=2, params=1)
    leaf(module, "file_pos_write", SUBSYSTEM, work=2, loads=1, stores=1, params=2)

    body = define(module, "vfs_read", SUBSYSTEM, params=3, frame=48)
    body.call("rw_verify_area", args=3)
    body.call(security_hook_name("file_permission"), args=2)
    body.call("file_pos_read", args=1)
    body.work(arith=2, loads=2)
    body.icall(read_dist, args=3, table="file_read_ops")
    body.call("file_pos_write", args=2)
    body.work(arith=1, stores=1)
    body.done()

    body = define(
        module,
        "sys_read",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("vfs_read", args=3)
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("read", "sys_read")

    write_dist = {
        f"{fs}_file_write_iter": WRITE_DIST[fs]
        for fs in filesystems
        if fs in WRITE_DIST
    }
    write_dist["pipe_write"] = 9
    write_dist["sock_write_iter"] = 7

    body = define(module, "vfs_write", SUBSYSTEM, params=3, frame=48)
    body.call("rw_verify_area", args=3)
    body.call(security_hook_name("file_permission"), args=2)
    body.call("file_pos_read", args=1)
    body.work(arith=2, loads=2)
    body.icall(write_dist, args=3, table="file_write_ops")
    body.call("file_pos_write", args=2)
    body.work(arith=1, stores=1)
    body.done()

    body = define(
        module,
        "sys_write",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("vfs_write", args=3)
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("write", "sys_write")


# -- open ------------------------------------------------------------------------------


def _build_open(module: Module, spec: KernelSpec, filesystems) -> None:
    lookup_dist = {f"{fs}_lookup": w for fs, w in
                   zip(filesystems, (70, 20, 6, 3, 1))}
    open_dist = {f"{fs}_file_open": w for fs, w in
                 zip(filesystems, (70, 20, 6, 3, 1))}

    body = define(module, "walk_component", SUBSYSTEM, params=2, frame=48)
    body.call("d_lookup_fast", args=2)
    body.maybe(
        0.15,
        lambda b: (
            b.call("d_lookup_slow", args=2),
            b.icall(lookup_dist, args=2, table="inode_lookup_ops"),
        ),
    )
    body.work(arith=2, loads=1)
    body.done()

    body = define(module, "link_path_walk", SUBSYSTEM, params=2, frame=96)
    body.work(arith=3, loads=2)
    body.loop(
        spec.path_walk_components,
        lambda b: b.call("walk_component", args=2),
    )
    body.done()

    body = define(module, "do_filp_open", SUBSYSTEM, params=2, frame=96)
    body.work(arith=18, loads=6, stores=3)  # nameidata setup, O_* flags
    body.call("link_path_walk", args=2)
    body.call(security_hook_name("file_open"), args=2)
    body.icall(open_dist, args=2, table="file_open_ops")
    body.work(arith=3, loads=2, stores=2)
    body.done()

    body = define(module, "fd_install", SUBSYSTEM, params=2, frame=16)
    body.call("spin_lock", args=1)
    body.work(arith=2, stores=2)
    body.call("spin_unlock", args=1)
    body.done()

    body = define(
        module,
        "sys_openat",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("getname", args=1)
    body.call("do_filp_open", args=2)
    body.call("fd_install", args=2)
    body.call("putname", args=1)
    body.done()
    module.register_syscall("open", "sys_openat")


# -- stat / fstat -----------------------------------------------------------------------


def _build_stat(module: Module, spec: KernelSpec, filesystems) -> None:
    getattr_dist = {f"{fs}_getattr": w for fs, w in
                    zip(filesystems, (70, 20, 6, 3, 1))}

    body = define(module, "vfs_getattr", SUBSYSTEM, params=2, frame=48)
    body.work(arith=2, loads=2)
    body.icall(getattr_dist, args=2, table="inode_getattr_ops")
    body.done()

    body = define(module, "cp_new_stat", SUBSYSTEM, params=2, frame=64)
    body.work(arith=4, loads=2, stores=2)
    body.call("copy_to_user", args=3)
    body.done()

    body = define(
        module,
        "sys_stat",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("getname", args=1)
    body.call("link_path_walk", args=2)
    body.call("vfs_getattr", args=2)
    body.call("cp_new_stat", args=2)
    body.call("putname", args=1)
    body.done()
    module.register_syscall("stat", "sys_stat")

    body = define(
        module,
        "sys_fstat",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("fdget", args=1)
    body.call("vfs_getattr", args=2)
    body.call("cp_new_stat", args=2)
    body.call("fdput", args=1)
    body.done()
    module.register_syscall("fstat", "sys_fstat")
