"""Scheduler and process lifecycle: fork/exec/exit, context switch.

The ``fork/*`` LMBench benches are the deep-call-chain stressors: process
duplication walks file tables and VMA lists, exercises the scheduler-class
op tables, and (in the exec/shell variants) loads a new image. These
chains are deep enough to overflow a 16-entry RSB, reproducing the
return-misprediction behaviour the backward-edge analysis cares about.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec
from repro.kernel.subsystems.entry import security_hook_name

SUBSYSTEM = "sched"

PICK_NEXT_DIST = {"pick_next_task_fair": 85, "pick_next_task_rt": 5, "pick_next_task_idle": 10}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_sched_classes(module, spec)
    _build_context_switch(module, spec)
    _build_fork(module, spec)
    _build_exec(module, spec)
    _build_exit(module, spec)
    _build_composite_syscalls(module, spec)


def _build_sched_classes(module: Module, spec: KernelSpec) -> None:
    for cls in ("fair", "rt", "idle"):
        leaf(module, f"pick_next_task_{cls}", SUBSYSTEM, work=6, loads=4, params=1)
        leaf(module, f"enqueue_task_{cls}", SUBSYSTEM, work=5, loads=2, stores=3, params=2)
        leaf(module, f"dequeue_task_{cls}", SUBSYSTEM, work=5, loads=2, stores=3, params=2)
    ops_table(
        module, "sched_pick_next_ops", [f"pick_next_task_{c}" for c in ("fair", "rt", "idle")]
    )
    ops_table(
        module, "sched_enqueue_ops", [f"enqueue_task_{c}" for c in ("fair", "rt", "idle")]
    )
    ops_table(
        module, "sched_dequeue_ops", [f"dequeue_task_{c}" for c in ("fair", "rt", "idle")]
    )


def _build_context_switch(module: Module, spec: KernelSpec) -> None:
    body = define(module, "switch_mm", SUBSYSTEM, params=2, frame=48)
    body.call("pv_flush_tlb", args=0)
    body.work(arith=4, loads=2, stores=2)
    body.done()

    body = define(module, "switch_to", SUBSYSTEM, params=2, frame=64)
    body.call("pv_load_tls", args=1)
    body.work(arith=6, loads=3, stores=3)
    body.done()

    body = define(
        module,
        "__schedule",
        SUBSYSTEM,
        params=0,
        frame=128,
        attrs=[FunctionAttr.NOINLINE],  # like the real __schedule (notrace)
    )
    body.call("spin_lock", args=1)  # rq lock
    body.work(arith=30, loads=10, stores=6)  # rq bookkeeping, clock update
    body.icall(PICK_NEXT_DIST, args=1, table="sched_pick_next_ops")
    body.call("switch_mm", args=2)
    body.call("switch_to", args=2)
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "wake_up_new_task", SUBSYSTEM, params=1, frame=64)
    body.call("spin_lock", args=1)
    body.icall(
        {"enqueue_task_fair": 9, "enqueue_task_rt": 1},
        args=2,
        table="sched_enqueue_ops",
    )
    body.call("spin_unlock", args=1)
    body.done()


def _build_fork(module: Module, spec: KernelSpec) -> None:
    body = define(module, "dup_task_struct", SUBSYSTEM, params=1, frame=96)
    body.call("kmalloc", args=2)
    body.call("memcpy_kernel", args=3)
    body.work(arith=4, stores=2)
    body.done()

    body = define(module, "copy_files", SUBSYSTEM, params=2, frame=96)
    body.call("kmalloc", args=2)
    body.call("spin_lock", args=1)
    body.loop(spec.fork_files, lambda b: b.work(arith=3, loads=2, stores=2))
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "copy_one_vma", SUBSYSTEM, params=2, frame=64)
    body.call("vma_alloc", args=1)
    body.call("memcpy_kernel", args=3)
    body.call("vma_link", args=2)
    body.done()

    body = define(module, "dup_mmap", SUBSYSTEM, params=2, frame=128)
    body.call("mutex_lock", args=1)
    body.loop(spec.fork_vmas, lambda b: b.call("copy_one_vma", args=2))
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "sched_fork", SUBSYSTEM, params=1, frame=48)
    body.work(arith=5, loads=2, stores=3)
    body.done()

    body = define(module, "copy_process", SUBSYSTEM, params=2, frame=160)
    body.work(arith=45, loads=15, stores=12)  # task_struct setup
    body.call(security_hook_name("task_create"), args=2)
    body.call("dup_task_struct", args=1)
    body.call("copy_files", args=2)
    body.call("dup_mmap", args=2)
    body.call("sched_fork", args=1)
    body.work(arith=6, loads=3, stores=3)
    body.done()

    body = define(module, "kernel_clone", SUBSYSTEM, params=2, frame=96)
    body.call("copy_process", args=2)
    body.call("wake_up_new_task", args=1)
    body.done()


def _build_exec(module: Module, spec: KernelSpec) -> None:
    body = define(module, "flush_old_exec", SUBSYSTEM, params=1, frame=64)
    body.call("mutex_lock", args=1)
    body.work(arith=5, loads=2, stores=3)
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "load_elf_binary", SUBSYSTEM, params=2, frame=160)
    body.call("flush_old_exec", args=1)
    body.work(arith=90, loads=25, stores=15)  # ELF header/phdr parsing
    body.loop(
        spec.exec_pages,
        lambda b: (b.call("do_mmap", args=3), b.call("handle_mm_fault", args=2)),
    )
    body.work(arith=8, loads=4, stores=3)
    body.done()

    leaf(module, "load_script_stub", SUBSYSTEM, work=6, loads=3, params=2)
    ops_table(module, "binfmt_ops", ["load_elf_binary", "load_script_stub"])

    body = define(module, "bprm_execve", SUBSYSTEM, params=2, frame=128)
    body.call("getname", args=1)
    body.call("do_filp_open", args=2)
    body.icall({"load_elf_binary": 9, "load_script_stub": 1}, args=2, table="binfmt_ops")
    body.call("putname", args=1)
    body.done()


def _build_exit(module: Module, spec: KernelSpec) -> None:
    body = define(module, "exit_files", SUBSYSTEM, params=1, frame=64)
    body.call("spin_lock", args=1)
    body.loop(spec.fork_files, lambda b: b.work(arith=2, loads=2, stores=1))
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "exit_mm", SUBSYSTEM, params=1, frame=64)
    body.call("mutex_lock", args=1)
    body.loop(spec.fork_vmas, lambda b: b.call("kfree", args=1))
    body.call("mutex_unlock", args=1)
    body.done()

    body = define(module, "do_exit", SUBSYSTEM, params=1, frame=96)
    body.call("exit_files", args=1)
    body.call("exit_mm", args=1)
    body.icall(
        {"dequeue_task_fair": 9, "dequeue_task_rt": 1},
        args=2,
        table="sched_dequeue_ops",
    )
    body.call("kfree", args=1)
    body.done()

    body = define(module, "do_wait", SUBSYSTEM, params=2, frame=96)
    body.work(arith=4, loads=3)
    body.call("__schedule", args=0)
    body.work(arith=3, loads=2, stores=1)
    body.done()


def _build_composite_syscalls(module: Module, spec: KernelSpec) -> None:
    """LMBench's fork benches measure a whole create/run/reap cycle."""
    body = define(
        module,
        "sys_fork_exit",
        SUBSYSTEM,
        params=0,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("kernel_clone", args=2)
    body.call("__schedule", args=0)
    body.call("do_exit", args=1)
    body.call("do_wait", args=2)
    body.done()
    module.register_syscall("fork_exit", "sys_fork_exit")

    body = define(
        module,
        "sys_fork_exec",
        SUBSYSTEM,
        params=0,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("kernel_clone", args=2)
    body.call("__schedule", args=0)
    body.call("bprm_execve", args=2)
    body.call("do_exit", args=1)
    body.call("do_wait", args=2)
    body.done()
    module.register_syscall("fork_exec", "sys_fork_exec")

    body = define(
        module,
        "sys_fork_shell",
        SUBSYSTEM,
        params=0,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    # /bin/sh -c: two fork/exec cycles plus shell startup file activity.
    body.call("kernel_clone", args=2)
    body.call("__schedule", args=0)
    body.call("bprm_execve", args=2)
    body.call("kernel_clone", args=2)
    body.call("bprm_execve", args=2)
    body.loop(3, lambda b: (b.call("fdget", args=1), b.call("vfs_read", args=3), b.call("fdput", args=1)))
    body.call("do_exit", args=1)
    body.call("do_wait", args=2)
    body.done()
    module.register_syscall("fork_shell", "sys_fork_shell")
