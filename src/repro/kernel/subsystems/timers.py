"""Timer wheel and softirq machinery: timer callbacks are classic
indirect calls (``timer->function``), exercised by TCP connection setup
and periodically by the tick."""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "time"

TIMER_DIST = {"tcp_write_timer": 4, "tcp_delack_timer": 4, "process_timeout": 2}


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    leaf(module, "tcp_write_timer", SUBSYSTEM, work=5, loads=3, stores=2, params=1)
    leaf(module, "tcp_delack_timer", SUBSYSTEM, work=5, loads=3, stores=2, params=1)
    body = define(module, "process_timeout", SUBSYSTEM, params=1, frame=32)
    body.call("wake_up_common", args=2)
    body.done()
    ops_table(module, "timer_fn_ops", list(TIMER_DIST))

    body = define(module, "mod_timer", SUBSYSTEM, params=2, frame=48)
    body.call("spin_lock_irqsave", args=1)
    body.work(arith=4, loads=2, stores=2)
    body.call("spin_unlock_irqrestore", args=1)
    body.done()

    body = define(module, "expire_timers", SUBSYSTEM, params=1, frame=64)
    body.work(arith=3, loads=2)
    body.icall(TIMER_DIST, args=1, table="timer_fn_ops")
    body.done()

    body = define(module, "run_timer_softirq", SUBSYSTEM, params=0, frame=64)
    body.call("spin_lock_irqsave", args=1)
    body.maybe(0.3, lambda b: b.call("expire_timers", args=1))
    body.call("spin_unlock_irqrestore", args=1)
    body.done()

    # The softirq vector roots the timer machinery in the image even though
    # the latency workloads rarely take the tick path.
    ops_table(module, "softirq_vec", ["run_timer_softirq"])
