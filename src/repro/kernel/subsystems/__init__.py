"""Synthetic kernel subsystem builders."""

from repro.kernel.subsystems import (  # noqa: F401
    block,
    boot,
    drivers,
    entry,
    ipc,
    mm,
    net,
    sched,
    signal,
    timers,
    vfs,
    workqueue,
)
