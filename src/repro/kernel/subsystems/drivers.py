"""Cold driver bulk.

The Linux kernel's static indirect-branch census is dominated by code the
workload never executes — drivers, unused filesystems, protocol modules.
This builder generates that bulk: per-driver op tables (probe/ioctl/etc.),
internal helper calls, indirect completion callbacks, and ioctl switch
statements (the jump-table candidates behind the vanilla kernel's ~1400
vulnerable indirect jumps). None of it runs under the evaluation
workloads, which is exactly the point: Table 10's "candidates vs total
indirect branches" contrast and Table 11's census need the denominator.
"""

from __future__ import annotations

import random
from typing import List

from repro.ir.module import Module
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "drivers"

_HELPERS = ("kmalloc", "kfree", "memcpy_kernel", "memset_kernel",
            "spin_lock", "spin_unlock", "mutex_lock", "mutex_unlock")


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    irq_entries: List[str] = []
    for d in range(spec.num_drivers):
        names = _build_driver(module, spec, rng, d)
        irq_entries.extend(names)
    # A shared interrupt line dispatches indirectly to a few handlers.
    if irq_entries:
        handlers = irq_entries[: spec.irq_handlers]
        ops_table(module, "irq_handler_ops", handlers)
        body = define(module, "handle_irq_event", SUBSYSTEM, params=1, frame=48)
        body.work(arith=3, loads=2)
        body.icall({h: 1 for h in handlers}, args=1, table="irq_handler_ops")
        body.done()
        ops_table(module, "irq_chip_ops", ["handle_irq_event"])


def _build_driver(
    module: Module, spec: KernelSpec, rng: random.Random, index: int
) -> List[str]:
    """Emit one driver module; returns its exported irq handler names."""
    prefix = f"drv{index}"
    count = max(4, int(rng.gauss(spec.driver_functions_mean, 4)))

    # Completion callbacks invoked indirectly throughout the driver.
    callback = f"{prefix}_complete"
    leaf(module, callback, SUBSYSTEM, work=4, loads=2, stores=2, params=1)
    callback_err = f"{prefix}_complete_err"
    leaf(module, callback_err, SUBSYSTEM, work=3, loads=1, stores=2, params=1)
    ops_table(module, f"{prefix}_callback_ops", [callback, callback_err])

    # Internal helpers the ops functions call.
    internals: List[str] = []
    for i in range(max(2, count - spec.driver_ops_entries - 2)):
        name = f"{prefix}_helper_{i}"
        body = define(module, name, SUBSYSTEM, params=rng.randint(1, 3),
                      frame=16 + 16 * rng.randint(0, 3))
        body.work(
            arith=rng.randint(2, 10),
            loads=rng.randint(1, 4),
            stores=rng.randint(0, 3),
        )
        if internals and rng.random() < 0.5:
            body.call(rng.choice(internals), args=rng.randint(1, 3))
        if rng.random() < 0.3:
            body.call(rng.choice(_HELPERS), args=2)
        if rng.random() < spec.driver_icall_fraction:
            body.icall(
                {callback: 3, callback_err: 1},
                args=1,
                table=f"{prefix}_callback_ops",
            )
        body.done()
        internals.append(name)

    # Exported ops: probe / remove / ioctl / irq handler.
    ops: List[str] = []
    probe = f"{prefix}_probe"
    body = define(module, probe, SUBSYSTEM, params=2, frame=96)
    body.call("kmalloc", args=2)
    for _ in range(rng.randint(1, 3)):
        if internals:
            body.call(rng.choice(internals), args=2)
    body.work(arith=5, loads=2, stores=3)
    body.done()
    ops.append(probe)

    remove = f"{prefix}_remove"
    body = define(module, remove, SUBSYSTEM, params=1, frame=48)
    if internals:
        body.call(rng.choice(internals), args=1)
    body.call("kfree", args=1)
    body.done()
    ops.append(remove)

    ioctl = f"{prefix}_ioctl"
    body = define(module, ioctl, SUBSYSTEM, params=3, frame=64)
    body.work(arith=2, loads=1)
    if spec.driver_switch_fraction > 0 and rng.random() < min(
        1.0, spec.driver_switch_fraction * 6
    ):
        arms = [
            (1.0, _make_arm(internals, rng))
            for _ in range(rng.randint(4, 9))
        ]
        body.switch(arms)
    body.done()
    ops.append(ioctl)

    irq = f"{prefix}_irq_handler"
    body = define(module, irq, SUBSYSTEM, params=1, frame=48)
    body.work(arith=4, loads=3, stores=1)
    if rng.random() < spec.driver_icall_fraction * 4:
        body.icall({callback: 1}, args=1, table=f"{prefix}_callback_ops")
    body.done()
    ops.append(irq)

    ops_table(module, f"{prefix}_ops", ops[: spec.driver_ops_entries])
    return [irq]


def _make_arm(internals: List[str], rng: random.Random):
    if internals and rng.random() < 0.6:
        target = rng.choice(internals)
        return lambda b: b.call(target, args=2)
    n = rng.randint(1, 4)
    return lambda b: b.work(arith=n, loads=1)
