"""Signal delivery: ``sigaction`` installation and dispatch-to-handler
(the ``sig_install`` / ``sig_dispatch`` latency benches)."""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf
from repro.kernel.spec import KernelSpec
from repro.kernel.subsystems.entry import security_hook_name

SUBSYSTEM = "signal"


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    body = define(module, "sigaction_copy", SUBSYSTEM, params=2, frame=48)
    body.call("copy_from_user", args=3)
    body.work(arith=2, stores=2)
    body.done()

    body = define(
        module,
        "sys_sigaction",
        SUBSYSTEM,
        params=3,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("sigaction_copy", args=2)
    body.call("spin_lock", args=1)  # sighand lock
    body.work(arith=3, loads=2, stores=2)
    body.call("spin_unlock", args=1)
    body.done()
    module.register_syscall("sig_install", "sys_sigaction")

    leaf(module, "recalc_sigpending", SUBSYSTEM, work=3, loads=2, stores=1, params=1)

    body = define(module, "send_signal_locked", SUBSYSTEM, params=2, frame=64)
    body.call("kmalloc", args=2)  # sigqueue entry
    body.work(arith=4, loads=2, stores=3)
    body.call("recalc_sigpending", args=1)
    body.call("wake_up_common", args=2)
    body.done()

    body = define(module, "get_signal", SUBSYSTEM, params=1, frame=96)
    body.call("spin_lock", args=1)
    body.work(arith=20, loads=8, stores=3)  # pending-set scan
    body.call("kfree", args=1)  # dequeued sigqueue entry
    body.call("spin_unlock", args=1)
    body.done()

    body = define(module, "setup_rt_frame", SUBSYSTEM, params=2, frame=96)
    body.call(security_hook_name("signal_deliver"), args=2)
    body.call("copy_to_user", args=3)  # signal frame
    body.work(arith=4, stores=3)
    body.done()

    # One sig_dispatch operation: kill(self) + deliver + sigreturn.
    body = define(
        module,
        "sys_sig_dispatch",
        SUBSYSTEM,
        params=2,
        attrs=[FunctionAttr.SYSCALL_ENTRY],
    )
    body.call("spin_lock", args=1)
    body.call("send_signal_locked", args=2)
    body.call("spin_unlock", args=1)
    body.call("get_signal", args=1)
    body.call("setup_rt_frame", args=2)
    body.call("copy_from_user", args=3)  # sigreturn restores context
    body.done()
    module.register_syscall("sig_dispatch", "sys_sig_dispatch")
