"""Block layer: bio submission, I/O schedulers, completion callbacks.

The LMBench latency workloads run on cached/tmpfs paths, so this layer is
mostly *cold* at runtime — but it is a major contributor to the kernel's
static indirect-branch census (request-queue ops, elevator ops, per-bio
completion callbacks), exactly the population Tables 10–12 count. The
writeback path is reachable from the filesystems' dirty-balancing slow
path, so a sliver of it warms up under write-heavy workloads.
"""

from __future__ import annotations

import random

from repro.ir.module import Module
from repro.kernel.helpers import define, leaf, ops_table
from repro.kernel.spec import KernelSpec

SUBSYSTEM = "block"

ELEVATORS = ("mq_deadline", "kyber", "bfq")


def build(module: Module, spec: KernelSpec, rng: random.Random) -> None:
    _build_bio(module, spec)
    _build_elevators(module, spec)
    _build_request_queue(module, spec)
    _build_writeback(module, spec)


def _build_bio(module: Module, spec: KernelSpec) -> None:
    body = define(module, "bio_alloc", SUBSYSTEM, params=2, frame=48)
    body.call("kmalloc", args=2)
    body.work(arith=4, stores=3)
    body.done()

    body = define(module, "bio_put", SUBSYSTEM, params=1, frame=16)
    body.work(arith=2, loads=1)
    body.call("kfree", args=1)
    body.done()

    # Per-bio completion callbacks: classic indirect calls.
    for name in ("end_bio_write", "end_bio_read", "end_bio_sync"):
        body = define(module, name, SUBSYSTEM, params=1, frame=32)
        body.work(arith=4, loads=2, stores=2)
        body.call("wake_up_common", args=2)
        body.done()
    ops_table(
        module,
        "bio_end_io_ops",
        ["end_bio_write", "end_bio_read", "end_bio_sync"],
    )

    body = define(module, "bio_endio", SUBSYSTEM, params=1, frame=32)
    body.work(arith=2, loads=2)
    body.icall(
        {"end_bio_write": 5, "end_bio_read": 4, "end_bio_sync": 1},
        args=1,
        table="bio_end_io_ops",
    )
    body.call("bio_put", args=1)
    body.done()


def _build_elevators(module: Module, spec: KernelSpec) -> None:
    for elevator in ELEVATORS:
        body = define(
            module, f"{elevator}_insert_request", SUBSYSTEM, params=2, frame=64
        )
        body.call("spin_lock_irqsave", args=1)
        body.work(arith=8, loads=4, stores=3)
        body.call("spin_unlock_irqrestore", args=1)
        body.done()

        body = define(
            module, f"{elevator}_dispatch", SUBSYSTEM, params=1, frame=64
        )
        body.work(arith=10, loads=5, stores=2)
        body.done()

    ops_table(
        module,
        "elevator_insert_ops",
        [f"{e}_insert_request" for e in ELEVATORS],
    )
    ops_table(
        module, "elevator_dispatch_ops", [f"{e}_dispatch" for e in ELEVATORS]
    )


def _build_request_queue(module: Module, spec: KernelSpec) -> None:
    leaf(module, "nvme_queue_rq", SUBSYSTEM, work=12, loads=5, stores=5, params=2)
    leaf(module, "scsi_queue_rq", SUBSYSTEM, work=15, loads=6, stores=5, params=2)
    ops_table(module, "blk_mq_queue_rq_ops", ["nvme_queue_rq", "scsi_queue_rq"])

    body = define(module, "blk_mq_submit_bio", SUBSYSTEM, params=1, frame=96)
    body.call("bio_alloc", args=2)
    body.icall(
        {
            "mq_deadline_insert_request": 7,
            "kyber_insert_request": 2,
            "bfq_insert_request": 1,
        },
        args=2,
        table="elevator_insert_ops",
    )
    body.icall(
        {"nvme_queue_rq": 9, "scsi_queue_rq": 1},
        args=2,
        table="blk_mq_queue_rq_ops",
    )
    body.done()

    body = define(module, "blk_mq_complete_request", SUBSYSTEM, params=1, frame=48)
    body.work(arith=4, loads=3)
    body.call("bio_endio", args=1)
    body.done()


def _build_writeback(module: Module, spec: KernelSpec) -> None:
    body = define(module, "write_cache_pages", SUBSYSTEM, params=2, frame=96)
    body.loop(
        3,
        lambda b: (
            b.work(arith=6, loads=3, stores=2),
            b.call("blk_mq_submit_bio", args=1),
        ),
    )
    body.done()

    body = define(module, "wb_workfn", SUBSYSTEM, params=1, frame=96)
    body.call("write_cache_pages", args=2)
    body.call("blk_mq_complete_request", args=1)
    body.done()
    # Rooted via the writeback work item table (queued by dirty balancing).
    ops_table(module, "wb_work_ops", ["wb_workfn"])
