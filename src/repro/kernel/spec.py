"""Kernel-generation parameters.

All knobs for the synthetic kernel live here so the statistical shape of
the generated call graph (hot-path depth, indirect-call fan-out, cold code
bulk) can be tuned in one place. Defaults are calibrated so the evaluation
reproduces the paper's ordering and rough magnitudes: per-op syscall paths
with tens of dynamic calls, a handful of indirect calls, heavy-tailed
indirect-branch weights, and a large body of cold driver code that inflates
the static branch census without ever executing (Tables 10–12).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelSpec:
    """Size/shape parameters for :func:`repro.kernel.generator.build_kernel`."""

    #: RNG seed — two builds with the same spec are identical.
    seed: int = 2021

    # -- cold code bulk (drivers, unused filesystems, protocols) -----------
    #: number of cold driver "modules"
    num_drivers: int = 110
    #: functions per driver (mean; actual count varies per driver)
    driver_functions_mean: int = 26
    #: fraction of driver functions containing an indirect call
    driver_icall_fraction: float = 0.35
    #: fraction of driver functions containing a switch statement
    driver_switch_fraction: float = 0.12
    #: ops-table entries exported per driver
    driver_ops_entries: int = 4

    # -- paravirt / inline assembly (Table 11's vulnerable residue) ---------
    #: hypercall wrappers implemented as inline assembly (not hardenable)
    num_paravirt_calls: int = 12
    #: opaque inline-assembly indirect jumps
    num_asm_ijumps: int = 5

    # -- boot-only code ------------------------------------------------------
    num_boot_functions: int = 36

    # -- hot-path shape -------------------------------------------------------
    #: path components walked by open/stat (link_path_walk loop)
    path_walk_components: int = 3
    #: file descriptors scanned per select() call
    select_file_fds: int = 16
    select_tcp_fds: int = 48
    #: pages touched per mmap call
    mmap_pages: int = 4
    #: copy loop iterations inside copy_to/from_user per op
    copy_user_chunks: int = 2
    #: descriptor-table entries duplicated by fork
    fork_files: int = 6
    #: VMAs duplicated by fork
    fork_vmas: int = 5
    #: argv pages processed by exec
    exec_pages: int = 4
    #: TCP segments emitted per send
    tcp_segments: int = 2

    # -- misc structure ---------------------------------------------------------
    #: entries in the syscall dispatch switch (jump-table candidate)
    syscall_switch_arms: int = 12
    #: LSM modules stacked on each security hook
    lsm_modules: int = 2
    #: filesystems registered on the VFS tables
    filesystems: int = 4
    #: IRQ handler slots on the shared interrupt line
    irq_handlers: int = 4


#: Default specification used by the evaluation.
DEFAULT_SPEC = KernelSpec()


@dataclass(frozen=True)
class ScaledSpec(KernelSpec):
    """A ~10× kernel (by function count) for engine-throughput work.

    The default spec builds ~3k functions; this one builds ~31k — about
    the function count of a distro kernel image — by multiplying the
    cold driver bulk and boot code while keeping the hot-path shape
    identical, so per-op dynamic behaviour matches the default kernel
    and only the static scale (and the engine's working set) grows.
    ``benchmarks/bench_engine.py`` runs its ≥10× speedup budget here.
    """

    num_drivers: int = 1200
    num_boot_functions: int = 380
    num_paravirt_calls: int = 36
    num_asm_ijumps: int = 15


#: The ~10×-scale specification used by the engine benchmarks.
SCALED_SPEC = ScaledSpec()


@dataclass(frozen=True)
class SmallSpec(KernelSpec):
    """A reduced kernel for fast unit tests."""

    num_drivers: int = 8
    driver_functions_mean: int = 10
    num_boot_functions: int = 6
    num_paravirt_calls: int = 4
    num_asm_ijumps: int = 2
    select_file_fds: int = 4
    select_tcp_fds: int = 6
