"""Body-construction helpers shared by the subsystem builders.

A thin structured layer over :class:`~repro.ir.builder.IRBuilder` adding
the patterns kernel code is made of: work/memory mixes, bounded loops,
conditional slow paths, and indirect calls through op tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import FunctionAttr


class Body:
    """Structured function-body writer."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.b = IRBuilder(func)

    # -- primitive mixes ------------------------------------------------------

    def work(self, arith: int = 2, loads: int = 1, stores: int = 0) -> "Body":
        self.b.arith(arith)
        if loads:
            self.b.load(loads)
        if stores:
            self.b.store(stores)
        return self

    def call(self, callee: str, args: int = 1) -> "Body":
        self.b.call(callee, num_args=args)
        return self

    def icall(
        self,
        dist: Dict[str, int],
        args: int = 1,
        table: Optional[str] = None,
        vcall: bool = False,
        asm: bool = False,
    ) -> "Body":
        self.b.icall(dist, num_args=args, fptr_table=table, vcall=vcall, asm=asm)
        return self

    def fence(self) -> "Body":
        self.b.fence()
        return self

    # -- control structure -------------------------------------------------------

    def loop(self, trips: int, body: Callable[["Body"], None]) -> "Body":
        """Execute ``body`` exactly ``trips`` times (``trips >= 1``)."""
        if trips < 1:
            raise ValueError("loop trips must be >= 1")
        head = self.b.new_block("loop")
        after = self.b.new_block("after")
        self.b.jmp(head.label)
        self.b.set_block(head)
        body(self)
        # First entry runs the body once; trips-1 back edges re-run it.
        self.b.br(head.label, after.label, trip=trips - 1)
        self.b.set_block(after)
        return self

    def maybe(
        self,
        probability: float,
        then: Callable[["Body"], None],
        otherwise: Optional[Callable[["Body"], None]] = None,
    ) -> "Body":
        """Conditionally execute ``then`` with the given probability
        (kernel slow paths: lock contention, cache-cold lookups...)."""
        then_block = self.b.new_block("then")
        else_block = self.b.new_block("else")
        join = self.b.new_block("join")
        self.b.cmp()
        self.b.br(then_block.label, else_block.label, p_taken=probability)
        self.b.set_block(then_block)
        then(self)
        self.b.jmp(join.label)
        self.b.set_block(else_block)
        if otherwise is not None:
            otherwise(self)
        self.b.jmp(join.label)
        self.b.set_block(join)
        return self

    def switch(
        self,
        arms: Sequence[Tuple[float, Callable[["Body"], None]]],
    ) -> "Body":
        """Multiway dispatch: each arm is (weight, body). Lowered later to a
        jump table or cmp chain by :class:`LowerSwitches`."""
        if not arms:
            raise ValueError("switch needs at least one arm")
        join = self.b.new_block("join")
        case_blocks = [self.b.new_block(f"case{i}") for i in range(len(arms))]
        self.b.switch(
            [blk.label for blk in case_blocks],
            weights=[w for w, _ in arms],
        )
        for blk, (_, body) in zip(case_blocks, arms):
            self.b.set_block(blk)
            body(self)
            self.b.jmp(join.label)
        self.b.set_block(join)
        return self

    def done(self) -> Function:
        self.b.ret()
        return self.func


def define(
    module: Module,
    name: str,
    subsystem: str,
    params: int = 1,
    frame: int = 32,
    attrs: Optional[Sequence[FunctionAttr]] = None,
) -> Body:
    """Create and register a function, returning its body writer."""
    func = Function(
        name,
        num_params=params,
        attrs=set(attrs) if attrs else None,
        stack_frame_size=frame,
        subsystem=subsystem,
    )
    module.add_function(func)
    return Body(func)


def leaf(
    module: Module,
    name: str,
    subsystem: str,
    work: int = 4,
    loads: int = 1,
    stores: int = 1,
    params: int = 1,
    attrs: Optional[Sequence[FunctionAttr]] = None,
) -> Function:
    """A simple compute-and-return helper."""
    body = define(module, name, subsystem, params=params, attrs=attrs)
    body.work(arith=work, loads=loads, stores=stores)
    return body.done()


def ops_table(
    module: Module, name: str, entries: Sequence[str]
) -> FunctionPointerTable:
    """Register a function-pointer op table (``file_operations`` style)."""
    table = FunctionPointerTable(name, list(entries))
    module.add_fptr_table(table)
    return table


def table_dist(
    module: Module, table_name: str, weights: Dict[str, int]
) -> Dict[str, int]:
    """Validate that a target distribution only names table entries."""
    table = module.fptr_tables[table_name]
    for target in weights:
        if target not in table:
            raise KeyError(
                f"{target!r} is not an entry of op table {table_name!r}"
            )
    return dict(weights)
