"""Profiling trace sink: turns execution events into an EdgeProfile.

Mirrors the paper's profiling binary: every call edge is tagged with the
unique id of its IR call site, records flow through an LBR-style buffer,
and the aggregate is an :class:`~repro.profiling.profile_data.EdgeProfile`
that the lifting step maps back onto the IR (Section 7).
"""

from __future__ import annotations

from typing import List

from repro.engine.trace import TraceSink
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.profiling.lbr import BranchRecord, LBRBuffer
from repro.profiling.profile_data import EdgeProfile


class KernelProfiler(TraceSink):
    """Collects an edge profile from interpreter events.

    Parameters
    ----------
    workload:
        Name recorded on the resulting profile.
    lbr_capacity:
        Ring size of the modelled LBR buffer.
    """

    def __init__(self, workload: str = "", lbr_capacity: int = 32) -> None:
        self.profile = EdgeProfile(workload=workload)
        self.lbr = LBRBuffer(capacity=lbr_capacity, on_drain=self._aggregate)

    # -- trace sink interface ------------------------------------------------

    def on_enter(self, func: Function) -> None:
        self.profile.record_invocation(func.name)

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        assert inst.site_id is not None
        self.lbr.push(BranchRecord(inst.site_id, callee.name, indirect=False))

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        assert inst.site_id is not None
        self.lbr.push(BranchRecord(inst.site_id, callee.name, indirect=True))

    def on_run_end(self, entry: str) -> None:
        self.lbr.drain()

    # -- aggregation ---------------------------------------------------------

    def _aggregate(self, batch: List[BranchRecord]) -> None:
        profile = self.profile
        for record in batch:
            if record.indirect:
                profile.record_indirect(record.site_id, record.target)
            else:
                profile.record_direct(record.site_id)

    def finish(self) -> EdgeProfile:
        """Flush any buffered records and return the completed profile.

        Marks the end of one profiling iteration (the paper aggregates 11)."""
        self.lbr.drain()
        self.profile.runs += 1
        return self.profile
