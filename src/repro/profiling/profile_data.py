"""Edge-profile data model.

An :class:`EdgeProfile` is what PIBE's profiling phase produces: execution
counts for every direct call-graph edge, value profiles (per-target counts)
for every indirect call site, and per-function invocation counts. Profiles
are mergeable (the paper aggregates 11 LMBench iterations) and serializable
to plain dictionaries for storage.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Tuple


class EdgeProfile:
    """Aggregated call-edge execution counts from one or more profiling runs."""

    def __init__(self, workload: str = "") -> None:
        self.workload = workload
        self.runs = 0
        #: direct call site id -> execution count
        self.direct: Dict[int, int] = defaultdict(int)
        #: indirect call site id -> {target function name -> count}
        self.indirect: Dict[int, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        #: function name -> invocation count
        self.invocations: Dict[str, int] = defaultdict(int)
        #: memoized content hash; recording/merging resets it
        self._digest: str | None = None

    # -- recording ---------------------------------------------------------

    def record_direct(self, site_id: int, count: int = 1) -> None:
        self.direct[site_id] += count
        self._digest = None

    def record_indirect(self, site_id: int, target: str, count: int = 1) -> None:
        self.indirect[site_id][target] += count
        self._digest = None

    def record_invocation(self, func_name: str, count: int = 1) -> None:
        self.invocations[func_name] += count
        self._digest = None

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "EdgeProfile") -> "EdgeProfile":
        """Accumulate ``other``'s counts into this profile (in place)."""
        for site, count in other.direct.items():
            self.direct[site] += count
        for site, targets in other.indirect.items():
            mine = self.indirect[site]
            for target, count in targets.items():
                mine[target] += count
        for name, count in other.invocations.items():
            self.invocations[name] += count
        self.runs += max(other.runs, 1)
        self._digest = None
        return self

    # -- queries ------------------------------------------------------------

    def direct_weight(self, site_id: int) -> int:
        return self.direct.get(site_id, 0)

    def indirect_site_weight(self, site_id: int) -> int:
        return sum(self.indirect.get(site_id, {}).values())

    def value_profile(self, site_id: int) -> List[Tuple[str, int]]:
        """(target, count) tuples for a site, hottest first (Section 7)."""
        targets = self.indirect.get(site_id, {})
        return sorted(targets.items(), key=lambda kv: (-kv[1], kv[0]))

    def total_direct_weight(self) -> int:
        return sum(self.direct.values())

    def total_indirect_weight(self) -> int:
        return sum(
            count
            for targets in self.indirect.values()
            for count in targets.values()
        )

    def total_weight(self) -> int:
        return self.total_direct_weight() + self.total_indirect_weight()

    def hottest_direct(self) -> List[Tuple[int, int]]:
        """Direct sites as (site_id, count), hottest first."""
        return sorted(self.direct.items(), key=lambda kv: (-kv[1], kv[0]))

    def hottest_indirect(self) -> List[Tuple[int, int]]:
        """Indirect sites as (site_id, total count), hottest first."""
        weights = {
            site: sum(targets.values())
            for site, targets in self.indirect.items()
        }
        return sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "runs": self.runs,
            "direct": {str(k): v for k, v in self.direct.items()},
            "indirect": {
                str(site): dict(targets)
                for site, targets in self.indirect.items()
            },
            "invocations": dict(self.invocations),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EdgeProfile":
        profile = cls(workload=data.get("workload", ""))
        profile.runs = int(data.get("runs", 0))
        for site, count in data.get("direct", {}).items():
            profile.direct[int(site)] = int(count)
        for site, targets in data.get("indirect", {}).items():
            for target, count in targets.items():
                profile.indirect[int(site)][target] = int(count)
        for name, count in data.get("invocations", {}).items():
            profile.invocations[name] = int(count)
        return profile

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def digest(self) -> str:
        """Stable content hash of this profile.

        Cache keys (the staged build engine's optimized-prefix entries)
        use the digest as the profile's identity: two profiles with the
        same counts hash identically regardless of collection order.
        Memoized; the recording/merge methods reset the memo. Direct
        mutation of the count dicts bypasses the reset — use the record
        methods when a digest may already have been taken.
        """
        if self._digest is None:
            import hashlib

            self._digest = hashlib.sha256(
                self.to_json().encode("utf-8")
            ).hexdigest()
        return self._digest

    @classmethod
    def from_json(cls, text: str) -> "EdgeProfile":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"<EdgeProfile {self.workload!r} runs={self.runs} "
            f"direct_sites={len(self.direct)} "
            f"indirect_sites={len(self.indirect)}>"
        )
