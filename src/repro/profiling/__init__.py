"""Profiling phase: LBR-style edge collection and profile lifting."""

from repro.profiling.lbr import BranchRecord, LBRBuffer
from repro.profiling.lifting import (
    LiftReport,
    clear_profile_metadata,
    lift_profile,
    provenance_chain,
)
from repro.profiling.profile_data import EdgeProfile
from repro.profiling.profiler import KernelProfiler
from repro.profiling.sampling import SamplingProfiler

__all__ = [
    "BranchRecord",
    "EdgeProfile",
    "KernelProfiler",
    "LBRBuffer",
    "LiftReport",
    "SamplingProfiler",
    "clear_profile_metadata",
    "lift_profile",
    "provenance_chain",
]
