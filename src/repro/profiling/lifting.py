"""Profile lifting: map binary-level edge counts back onto IR call sites.

The paper's instrumentation assigns each call-graph edge a unique identifier
that survives code motion, then "lifts" the binary profile to LLVM-IR
metadata: direct sites receive an execution count, indirect sites receive
value-profile metadata — a list of ``(target name, count)`` tuples
(Section 7). We reproduce exactly that: after lifting, every profiled call
instruction carries ``!count`` / ``!vp`` attributes that the optimization
passes consume.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_CLONED_FROM,
    ATTR_EDGE_COUNT,
    ATTR_VALUE_PROFILE,
    Opcode,
)
from repro.profiling.profile_data import EdgeProfile


class LiftReport(NamedTuple):
    """Summary of one lifting pass."""

    direct_annotated: int
    indirect_annotated: int
    stale_direct: int
    stale_indirect: int


def lift_profile(module: Module, profile: EdgeProfile) -> LiftReport:
    """Attach profile metadata to the module's call sites.

    Sites present in the profile but absent from the module (stale ids, e.g.
    from code removed between profiling and optimization) are counted and
    skipped — the tolerance to code change the paper's identifier scheme
    provides.
    """
    direct_annotated = 0
    indirect_annotated = 0
    for name in list(module.functions):
        func = module.functions[name]
        if module.is_cow_shared(name) and not any(
            (inst.opcode == Opcode.CALL and inst.site_id in profile.direct)
            or (
                inst.opcode == Opcode.ICALL
                and inst.site_id in profile.indirect
            )
            for inst in func.call_sites()
        ):
            continue  # cold function: stays shared with the COW source
        func = module.mutable(name)
        for inst in func.call_sites():
            assert inst.site_id is not None
            if inst.opcode == Opcode.CALL and inst.site_id in profile.direct:
                inst.attrs[ATTR_EDGE_COUNT] = profile.direct[inst.site_id]
                direct_annotated += 1
            elif (
                inst.opcode == Opcode.ICALL
                and inst.site_id in profile.indirect
            ):
                inst.attrs[ATTR_VALUE_PROFILE] = profile.value_profile(
                    inst.site_id
                )
                indirect_annotated += 1

    stale_direct = len(profile.direct) - direct_annotated
    stale_indirect = len(profile.indirect) - indirect_annotated
    return LiftReport(
        direct_annotated, indirect_annotated, stale_direct, stale_indirect
    )


def clear_profile_metadata(module: Module) -> int:
    """Strip lifted metadata (used when re-profiling); returns sites touched."""
    touched = 0
    for name in list(module.functions):
        func = module.functions[name]
        if module.is_cow_shared(name) and not any(
            ATTR_EDGE_COUNT in inst.attrs or ATTR_VALUE_PROFILE in inst.attrs
            for inst in func.instructions()
        ):
            continue
        func = module.mutable(name)
        for inst in func.instructions():
            removed = False
            for key in (ATTR_EDGE_COUNT, ATTR_VALUE_PROFILE):
                if key in inst.attrs:
                    del inst.attrs[key]
                    removed = True
            if removed:
                touched += 1
    return touched


def provenance_chain(inst: Instruction) -> List[int]:
    """Site-id provenance of a (possibly repeatedly cloned) instruction."""
    chain: List[int] = []
    if inst.site_id is not None:
        chain.append(inst.site_id)
    origin = inst.attrs.get(ATTR_CLONED_FROM)
    if origin is not None:
        chain.append(origin)
    return chain
