"""Last Branch Record (LBR) buffer model.

The paper's profiler uses the CPU's LBR feature: a small ring of recent
branch records drained by the monitoring instrumentation (Section 7). We
model the same structure — a bounded ring of ``BranchRecord`` entries with a
drain callback — so the profiler aggregates through the identical
batch-drain path the real instrumentation uses, including record loss when
draining is disabled (useful for testing robustness to partial profiles).
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional


class BranchRecord(NamedTuple):
    """One retired-branch record: which site, what it targeted, how."""

    site_id: int
    target: str
    indirect: bool


class LBRBuffer:
    """Bounded ring of branch records with batch drain.

    Parameters
    ----------
    capacity:
        Ring size; Intel LBR is 16 or 32 entries depending on generation.
    on_drain:
        Callback receiving the batch whenever the ring fills (or on an
        explicit :meth:`drain`).
    drop_on_overflow:
        If ``True`` and no drain callback is installed, old records are
        overwritten silently (hardware behaviour without a PMI handler).
    """

    def __init__(
        self,
        capacity: int = 32,
        on_drain: Optional[Callable[[List[BranchRecord]], None]] = None,
        drop_on_overflow: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ValueError("LBR capacity must be positive")
        self.capacity = capacity
        self.on_drain = on_drain
        self.drop_on_overflow = drop_on_overflow
        self._ring: List[BranchRecord] = []
        self.records_seen = 0
        self.records_dropped = 0

    def push(self, record: BranchRecord) -> None:
        self.records_seen += 1
        self._ring.append(record)
        if self.on_drain is not None:
            if len(self._ring) >= self.capacity:
                self.drain()
        elif self.drop_on_overflow:
            if len(self._ring) > self.capacity:
                self._ring.pop(0)
                self.records_dropped += 1
        # otherwise keep growing; an explicit drain() will flush

    def drain(self) -> List[BranchRecord]:
        """Flush and return all buffered records (delivering to callback)."""
        batch, self._ring = self._ring, []
        if self.on_drain is not None and batch:
            self.on_drain(batch)
        return batch

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<LBRBuffer {len(self._ring)}/{self.capacity} "
            f"seen={self.records_seen} dropped={self.records_dropped}>"
        )
