"""Sampling profiler — the AutoFDO-style alternative to exact counting.

The paper's motivation cites Google maintaining representative profiling
workloads for production kernels via AutoFDO-like flows [26], which sample
LBR records instead of counting every edge. This profiler records every
``rate``-th branch event and scales counts back up, trading profile
fidelity for (real-world) collection overhead.

PIBE's algorithms only need *relative* weights of hot sites, so sampled
profiles steer them almost as well as exact ones — there is a test
asserting exactly that (hot-candidate overlap between exact and sampled
profiles stays high).
"""

from __future__ import annotations

from repro.engine.trace import TraceSink
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.profiling.profile_data import EdgeProfile


class SamplingProfiler(TraceSink):
    """Records every ``rate``-th call edge, scaling counts by ``rate``.

    Parameters
    ----------
    rate:
        Sampling period (1 = exact profiling). AutoFDO-style deployments
        use periods in the thousands; the synthetic workloads are small,
        so defaults stay modest.
    workload:
        Name recorded on the resulting profile.
    """

    def __init__(
        self, rate: int = 16, workload: str = "", seed: int = 0
    ) -> None:
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.rate = rate
        self.profile = EdgeProfile(workload=workload)
        # Bernoulli sampling: a fixed period would alias against periodic
        # event patterns (hardware samplers randomize periods for the
        # same reason).
        import random

        self._rng = random.Random(seed)
        self.events_seen = 0
        self.events_sampled = 0

    def _sample(self) -> bool:
        self.events_seen += 1
        if self.rate == 1 or self._rng.random() < 1.0 / self.rate:
            self.events_sampled += 1
            return True
        return False

    def on_enter(self, func: Function) -> None:
        # invocation counts are cheap to keep exact (function entry
        # counters, not LBR records)
        self.profile.record_invocation(func.name)

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        if self._sample():
            assert inst.site_id is not None
            self.profile.record_direct(inst.site_id, self.rate)

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        if self._sample():
            assert inst.site_id is not None
            self.profile.record_indirect(inst.site_id, callee.name, self.rate)

    def finish(self) -> EdgeProfile:
        self.profile.runs += 1
        return self.profile

    @property
    def sampling_fraction(self) -> float:
        if not self.events_seen:
            return 0.0
        return self.events_sampled / self.events_seen
