"""Defense lowerings and the hardening pass (paper Sections 4, 6)."""

from repro.hardening.custom import (
    CustomDefense,
    CustomHardeningPass,
    clear_registry,
    custom_defense_cost,
    register_defense,
    registered_defense,
)
from repro.hardening.defenses import (
    Defense,
    DefenseConfig,
    LVI_SAFE,
    NonTransientDefense,
    RSB_SAFE,
    SPECTRE_V2_SAFE,
)
from repro.hardening.harden import (
    HardenReport,
    HardeningPass,
    METADATA_KEY,
    applied_config,
)
from repro.hardening.lowering import (
    SITE_EXPANSION_UNITS,
    SITE_SEQUENCES,
    THUNK_BODIES,
    THUNK_UNITS,
    lower_branch,
    required_thunks,
    site_expansion_units,
)

__all__ = [
    "CustomDefense",
    "CustomHardeningPass",
    "Defense",
    "DefenseConfig",
    "HardenReport",
    "HardeningPass",
    "LVI_SAFE",
    "METADATA_KEY",
    "NonTransientDefense",
    "RSB_SAFE",
    "SITE_EXPANSION_UNITS",
    "SITE_SEQUENCES",
    "SPECTRE_V2_SAFE",
    "THUNK_BODIES",
    "THUNK_UNITS",
    "applied_config",
    "clear_registry",
    "custom_defense_cost",
    "lower_branch",
    "register_defense",
    "registered_defense",
    "required_thunks",
    "site_expansion_units",
]
